//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of `parking_lot` it actually uses: a
//! `Mutex` whose `lock()` returns a guard directly (no `Result`) and which
//! ignores poisoning, matching `parking_lot` semantics closely enough for
//! the live-cluster plumbing and tests.

use std::fmt;
use std::sync::MutexGuard;

/// A mutex with `parking_lot`'s panic-tolerant, non-`Result` `lock()`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, recovering from poisoning (parking_lot has no
    /// poisoning concept at all).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RwLock with the same no-poisoning surface (provided for completeness).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> RwLock<T> {
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
