//! Offline drop-in subset of `crossbeam::channel`, backed by
//! `std::sync::mpsc`.
//!
//! The workspace only uses unbounded MPSC channels with `send` / `recv` /
//! `recv_timeout` / `try_recv`, which `std::sync::mpsc` covers directly;
//! the wrapper exists so call sites keep the `crossbeam` spelling and error
//! types until a real registry is reachable.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }

        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn timeout_when_empty() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
