//! Offline drop-in subset of the `rand` API used by this workspace.
//!
//! No crates registry is reachable from the build environment, so the
//! workspace vendors the few entry points it actually calls:
//! `SmallRng::seed_from_u64`, `random_bool`, and `random_range` over
//! integer and float ranges. The generator is SplitMix64 — statistically
//! fine for synthetic database/workload generation, deterministic per
//! seed, and nothing here is security-sensitive.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding entry point (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling methods, auto-implemented for every [`RngCore`].
pub trait RngExt: RngCore + Sized {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive int ranges,
    /// half-open float ranges).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + Sized> RngExt for R {}

/// A range that can be sampled from; mirrors `rand::distr::uniform`'s role.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo bias is negligible for the small spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    return (rng.next_u64() as u128) as $t;
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(0usize..3);
            assert!(x < 3);
            let y = rng.random_range(1..=8);
            assert!((1..=8).contains(&y));
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
