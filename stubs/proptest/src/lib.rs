//! Offline drop-in subset of the `proptest` property-testing API.
//!
//! No crates registry is reachable from the build environment, so the
//! workspace vendors the slice of `proptest` its tests use: the
//! `proptest!` / `prop_oneof!` / `prop_assert!` macros, `Strategy` with
//! `prop_map` / `prop_recursive`, `Just`, `any`, integer-range and
//! regex-pattern string strategies, `collection::vec`, and `option::of`.
//!
//! Two deliberate simplifications versus real proptest:
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (which is what the repo's deterministic-seed debugging workflow uses)
//!   but does not minimize them.
//! * **Regex strategies** support the subset the tests use: literal chars,
//!   `.`, character classes with ranges/escapes, and `{m,n}`/`*`/`+`/`?`
//!   quantifiers — not full regex syntax.
//!
//! Case counts honor `ProptestConfig::with_cases` and the
//! `PROPTEST_CASES` environment variable (for the default config); the RNG
//! is seeded per process from `PROPTEST_RNG_SEED` when set, otherwise from
//! OS entropy, and every failure message includes the generated values.

pub mod test_runner {
    use std::fmt;
    use std::hash::{BuildHasher, Hasher};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Per-test configuration; only `cases` is meaningful in the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a single test case failed (the stub has no rejection/shrinking).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    static SEQ: AtomicU64 = AtomicU64::new(0);

    fn process_seed() -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(n) = s.parse() {
                return n;
            }
        }
        // RandomState is seeded from OS entropy once per process.
        std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish()
    }

    /// SplitMix64 stream; each `from_entropy` gets a distinct substream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_entropy() -> TestRng {
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            TestRng {
                state: process_seed() ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Prints the generated inputs if the test body panics (`mem::forget`
    /// it on the success path).
    pub struct PanicReporter {
        case: u32,
        inputs: String,
    }

    impl PanicReporter {
        pub fn new(case: u32, inputs: String) -> PanicReporter {
            PanicReporter { case, inputs }
        }
    }

    impl Drop for PanicReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: panic in case {} with inputs:\n{}",
                    self.case, self.inputs
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of `T` values: the universal strategy representation all
    /// combinators lower into.
    pub struct Strat<T> {
        f: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for Strat<T> {
        fn clone(&self) -> Self {
            Strat { f: self.f.clone() }
        }
    }

    impl<T: 'static> Strat<T> {
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Strat<T> {
            Strat { f: Rc::new(f) }
        }
    }

    impl<T> Strat<T> {
        pub fn call(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// The strategy interface: anything that can lower into a [`Strat`].
    pub trait Strategy {
        type Value;

        fn into_strat(self) -> Strat<Self::Value>;

        fn prop_map<U: 'static, F>(self, f: F) -> Strat<U>
        where
            Self: Sized,
            Self::Value: 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let s = self.into_strat();
            Strat::new(move |rng| f(s.call(rng)))
        }

        /// Bounded recursion: applies `f` up to `depth` times over the base
        /// strategy, choosing the shallower alternative ~25% of the time at
        /// each level so generated sizes vary.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            mut f: F,
        ) -> Strat<Self::Value>
        where
            Self: Sized,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value>,
            F: FnMut(Strat<Self::Value>) -> S2,
        {
            let base = self.into_strat();
            let mut cur = base.clone();
            for _ in 0..depth {
                let deeper = f(cur).into_strat();
                let shallow = base.clone();
                cur = Strat::new(move |rng| {
                    if rng.below(4) == 0 {
                        shallow.call(rng)
                    } else {
                        deeper.call(rng)
                    }
                });
            }
            cur
        }
    }

    impl<T> Strategy for Strat<T> {
        type Value = T;

        fn into_strat(self) -> Strat<T> {
            self
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;

        fn into_strat(self) -> Strat<T> {
            Strat::new(move |_| self.0.clone())
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn into_strat(self) -> Strat<$t> {
                    assert!(self.start < self.end, "empty range strategy");
                    Strat::new(move |rng| {
                        let span = (self.end as i128 - self.start as i128) as u64;
                        self.start.wrapping_add(rng.below(span) as $t)
                    })
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn into_strat(self) -> Strat<$t> {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    Strat::new(move |rng| {
                        let span = (hi as i128 - lo as i128 + 1) as u64;
                        lo.wrapping_add(rng.below(span) as $t)
                    })
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $v:ident),+))*) => {$(
            impl<$($s),+> Strategy for ($($s,)+)
            where
                $($s: Strategy, $s::Value: 'static,)+
            {
                type Value = ($($s::Value,)+);
                fn into_strat(self) -> Strat<Self::Value> {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    $(
                        #[allow(non_snake_case)]
                        let $v = $v.into_strat();
                    )+
                    Strat::new(move |rng| ($($v.call(rng),)+))
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A a)
        (A a, B b)
        (A a, B b, C c)
        (A a, B b, C c, D d)
        (A a, B b, C c, D d, E e)
        (A a, B b, C c, D d, E e, F f)
    }

    /// Uniform choice between lowered alternatives (`prop_oneof!`).
    pub fn union<T: 'static>(arms: Vec<Strat<T>>) -> Strat<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Strat::new(move |rng| arms[rng.below(arms.len() as u64) as usize].call(rng))
    }

    /// Weighted choice between lowered alternatives.
    pub fn union_weighted<T: 'static>(arms: Vec<(u32, Strat<T>)>) -> Strat<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights must sum to > 0");
        Strat::new(move |rng| {
            let mut pick = rng.below(total);
            for (w, s) in &arms {
                if pick < u64::from(*w) {
                    return s.call(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weight bookkeeping")
        })
    }

    // ---- regex-subset string strategies (`"[a-z]{0,10}"` etc.) ----

    #[derive(Debug, Clone)]
    enum Atom {
        Any,
        Lit(char),
        Class(Vec<(char, char)>),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse_pattern(pat: &str) -> Vec<Piece> {
        let mut chars = pat.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => Atom::Class(parse_class(&mut chars, pat)),
                '\\' => Atom::Lit(chars.next().unwrap_or_else(|| {
                    panic!("dangling escape in pattern {pat:?}")
                })),
                _ => Atom::Lit(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().unwrap_or(0),
                            n.trim().parse().unwrap_or(8),
                        ),
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    fn parse_class(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        pat: &str,
    ) -> Vec<(char, char)> {
        // Tokenize up to the closing bracket, resolving escapes, then fold
        // `a-z` triples into ranges. A `-` first, last, or escaped is literal.
        #[derive(PartialEq)]
        enum Tok {
            Ch(char),
            Dash,
        }
        let mut toks = Vec::new();
        loop {
            match chars.next() {
                None => panic!("unterminated character class in pattern {pat:?}"),
                Some(']') => break,
                Some('\\') => toks.push(Tok::Ch(chars.next().unwrap_or_else(|| {
                    panic!("dangling escape in pattern {pat:?}")
                }))),
                Some('-') => toks.push(Tok::Dash),
                Some(c) => toks.push(Tok::Ch(c)),
            }
        }
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            match (&toks[i], toks.get(i + 1), toks.get(i + 2)) {
                (Tok::Ch(a), Some(Tok::Dash), Some(Tok::Ch(b))) => {
                    out.push((*a, *b));
                    i += 3;
                }
                (Tok::Ch(a), ..) => {
                    out.push((*a, *a));
                    i += 1;
                }
                (Tok::Dash, ..) => {
                    out.push(('-', '-'));
                    i += 1;
                }
            }
        }
        out
    }

    fn sample_pattern(pieces: &[Piece], rng: &mut TestRng) -> String {
        let mut out = String::new();
        for p in pieces {
            let span = u64::from(p.max - p.min + 1);
            let n = p.min + rng.below(span) as u32;
            for _ in 0..n {
                match &p.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Any => out.push((0x20 + rng.below(0x5F) as u8) as char),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                        let span = hi as u32 - lo as u32 + 1;
                        let code = lo as u32 + rng.below(u64::from(span)) as u32;
                        out.push(char::from_u32(code).unwrap_or(lo));
                    }
                }
            }
        }
        out
    }

    impl Strategy for &'static str {
        type Value = String;

        fn into_strat(self) -> Strat<String> {
            let pieces = parse_pattern(self);
            Strat::new(move |rng| sample_pattern(&pieces, rng))
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strat;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn strat() -> Strat<Self>;
    }

    pub fn any<A: Arbitrary>() -> Strat<A> {
        A::strat()
    }

    impl Arbitrary for bool {
        fn strat() -> Strat<bool> {
            Strat::new(|rng: &mut TestRng| rng.next_u64() & 1 == 1)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn strat() -> Strat<$t> {
                    Strat::new(|rng: &mut TestRng| rng.next_u64() as $t)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for char {
        fn strat() -> Strat<char> {
            Strat::new(|rng: &mut TestRng| {
                char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
            })
        }
    }
}

pub mod collection {
    use crate::strategy::{Strat, Strategy};
    use std::ops::{Range, RangeInclusive};

    /// Sizes accepted by [`vec`]: a fixed count or a (half-open/inclusive)
    /// range of counts.
    pub trait SizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// `Vec<T>` strategy with a length drawn from `size`.
    pub fn vec<S>(element: S, size: impl SizeRange) -> Strat<Vec<S::Value>>
    where
        S: Strategy,
        S::Value: 'static,
    {
        let (lo, hi) = size.bounds();
        let element = element.into_strat();
        Strat::new(move |rng| {
            let n = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..n).map(|_| element.call(rng)).collect()
        })
    }
}

pub mod option {
    use crate::strategy::{Strat, Strategy};

    /// `Option<T>` strategy: `None` about a quarter of the time.
    pub fn of<S>(inner: S) -> Strat<Option<S::Value>>
    where
        S: Strategy,
        S::Value: 'static,
    {
        let inner = inner.into_strat();
        Strat::new(move |rng| {
            if rng.below(4) == 0 {
                None
            } else {
                Some(inner.call(rng))
            }
        })
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strat, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests. Each function runs `config.cases` times with
/// freshly generated inputs; failures report the generated values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::from_entropy();
                $(
                    let $arg =
                        $crate::strategy::Strategy::into_strat($strat).call(&mut __rng);
                )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __guard =
                    $crate::test_runner::PanicReporter::new(__case, __inputs.clone());
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                ::std::mem::forget(__guard);
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest: case {} failed: {}\ninputs:\n{}",
                        __case, e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Uniform (or `weight => strategy` weighted) choice between strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $s:expr),+ $(,)?) => {
        $crate::strategy::union_weighted(vec![
            $(($weight, $crate::strategy::Strategy::into_strat($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::into_strat($s)),+
        ])
    };
}

/// Fails the current case (with formatted context) if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} == {:?}", __l, __r
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {:?} == {:?}: {}", __l, __r, format!($($fmt)*)
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__l, __r) = (&$a, &$b);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {:?} != {:?}", __l, __r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(usize),
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(prop_oneof![
                (0usize..5).prop_map(Op::A),
                any::<bool>().prop_map(Op::B),
            ], 1..20),
            o in crate::option::of(0i64..3),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            if let Some(n) = o {
                prop_assert!((0..3).contains(&n));
            }
        }

        #[test]
        fn string_patterns_match_shape(
            s in "[a-c]{2,4}",
            t in ".{0,5}",
            u in "[<>/=a-z'\" &;!?\\[\\]-]{0,15}",
        ) {
            prop_assert!((2..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(t.chars().count() <= 5);
            prop_assert!(u.chars().all(|c| "<>/=\'\" &;!?[]-".contains(c)
                || c.is_ascii_lowercase()));
        }

        #[test]
        fn recursion_terminates(depth_str in recursive_strat()) {
            prop_assert!(depth_str.len() < 10_000);
        }
    }

    fn recursive_strat() -> impl Strategy<Value = String> {
        Just("x".to_string()).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}{b})"))
        })
    }

    #[test]
    fn early_return_ok_supported() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(dead_code)]
            fn inner(x in 0usize..2) {
                if x == 0 {
                    return Ok(());
                }
                prop_assert_eq!(x, 1);
            }
        }
        inner();
    }
}
