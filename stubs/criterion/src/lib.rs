//! Offline drop-in subset of the `criterion` bench harness.
//!
//! The build environment has no crates registry, so the workspace vendors a
//! minimal harness with the same macro/API shape the benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter` / `iter_batched`, and `BatchSize`. Measurement is a
//! simple calibrate-then-run mean (no outlier analysis or HTML reports);
//! results print to stdout and, when `CRITERION_JSONL` is set, append as
//! JSON lines `{"name": ..., "mean_ns": ...}` for scripts to collect.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batches are sized in `iter_batched`; the stub times the routine per
/// batch element regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Per-benchmark measurement state handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Target wall-clock budget for the measured phase.
    budget: Duration,
    /// Filled in by `iter`/`iter_batched`: (total measured ns, iterations).
    measured: Option<(u128, u64)>,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher { budget, measured: None }
    }

    /// Calibrates an iteration count against the budget, then measures.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up + calibration: run until ~10% of budget is spent.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < self.budget / 10 || calib_iters < 3 {
            black_box(f());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_nanos() / u128::from(calib_iters.max(1));
        let n = (self.budget.as_nanos() / per_iter.max(1)).clamp(3, 10_000_000) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.measured = Some((start.elapsed().as_nanos(), n));
    }

    /// Like `iter`, but excludes `setup` time from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        let mut measured_calib: u128 = 0;
        while calib_start.elapsed() < self.budget / 5 || calib_iters < 3 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured_calib += t.elapsed().as_nanos();
            calib_iters += 1;
            if calib_iters >= 100_000 {
                break;
            }
        }
        let per_iter = measured_calib / u128::from(calib_iters.max(1));
        let n = (self.budget.as_nanos() / per_iter.max(1)).clamp(3, 1_000_000) as u64;
        let mut total: u128 = 0;
        for _ in 0..n {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed().as_nanos();
        }
        self.measured = Some((total, n));
    }
}

/// The bench harness: runs named benchmarks and records their mean times.
pub struct Criterion {
    filters: Vec<String>,
    budget: Duration,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filters: Vec::new(),
            budget: Duration::from_millis(
                std::env::var("CRITERION_BUDGET_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(300),
            ),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Builds a harness from CLI args: non-flag args are substring filters
    /// (`cargo bench -- fragment` runs only benches containing "fragment").
    pub fn from_args() -> Criterion {
        Criterion {
            filters: std::env::args()
                .skip(1)
                .filter(|a| !a.starts_with('-'))
                .collect(),
            ..Criterion::default()
        }
    }

    pub fn configure_from_args(self) -> Criterion {
        let mut c = self;
        c.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        c
    }

    pub fn bench_function(
        &mut self,
        name: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p.as_str())) {
            return self;
        }
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        match b.measured {
            Some((total_ns, iters)) if iters > 0 => {
                let mean = total_ns as f64 / iters as f64;
                println!("{name:<44} time: {:>12} ({iters} iters)", fmt_ns(mean));
                self.results.push((name.to_string(), mean));
            }
            _ => println!("{name:<44} time: <not measured>"),
        }
        self
    }

    /// Writes collected results as JSON lines when `CRITERION_JSONL` names a
    /// file. Called by `criterion_main!`; harmless to call twice.
    pub fn finish(&mut self) {
        let Ok(path) = std::env::var("CRITERION_JSONL") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        use std::io::Write;
        let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path)
        else {
            eprintln!("criterion stub: cannot open {path}");
            return;
        };
        for (name, mean) in self.results.drain(..) {
            let _ = writeln!(f, "{{\"name\": \"{name}\", \"mean_ns\": {mean:.1}}}");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.finish();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            ..Criterion::default()
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].1 > 0.0);
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            filters: vec!["yes".into()],
            ..Criterion::default()
        };
        c.bench_function("no/match", |b| b.iter(|| 1));
        c.bench_function("yes/match", |b| b.iter(|| 1));
        assert_eq!(c.results.len(), 1);
        assert_eq!(c.results[0].0, "yes/match");
    }
}
