//! The authoritative name store: a label trie with per-name records.

use std::collections::HashMap;

use crate::name::DnsName;

/// Address of a physical site (the simulated analogue of an IP address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteAddr(pub u32);

#[derive(Debug, Default)]
struct ZoneNode {
    record: Option<SiteAddr>,
    /// The previous address plus the time until which it is still served
    /// (staleness-window emulation; see
    /// [`AuthoritativeDns::set_staleness_window`]).
    prev: Option<(SiteAddr, f64)>,
    children: HashMap<String, ZoneNode>,
}

/// The authoritative DNS: a trie over labels (apex at the trie root).
///
/// Ownership migration updates the record in place (§4 step 4); lookup
/// reports the number of *delegation hops* walked (labels descended past
/// the apex), which the simulator charges as network round trips on a cold
/// lookup.
#[derive(Debug, Default)]
pub struct AuthoritativeDns {
    root: ZoneNode,
    records: usize,
    /// Seconds a re-registered record keeps answering with its *old*
    /// address (0 = updates are visible immediately, the default). Models
    /// real-DNS propagation lag, which the migration protocol must
    /// tolerate via the old owner's forwarding (§4).
    staleness_window: f64,
}

/// A successful authoritative lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthAnswer {
    pub addr: SiteAddr,
    /// Delegation hops walked to find the record.
    pub hops: u32,
    /// True if this was an exact match rather than the longest registered
    /// ancestor.
    pub exact: bool,
}

impl AuthoritativeDns {
    /// Creates an empty name store.
    pub fn new() -> Self {
        AuthoritativeDns::default()
    }

    /// Sets the staleness window applied by timed registrations
    /// ([`AuthoritativeDns::register_at`]): for `secs` after an update the
    /// old address keeps being served by timed lookups.
    pub fn set_staleness_window(&mut self, secs: f64) {
        self.staleness_window = secs;
    }

    /// Registers (or updates) `name → addr` with immediate visibility.
    /// Returns the previous address if the record existed.
    pub fn register(&mut self, name: &DnsName, addr: SiteAddr) -> Option<SiteAddr> {
        self.register_at(name, addr, f64::NEG_INFINITY)
    }

    /// Registers (or updates) `name → addr` at time `now`. If a staleness
    /// window is configured and the record changes address, lookups via
    /// [`AuthoritativeDns::lookup_at`] keep answering the old address until
    /// `now + window`.
    pub fn register_at(&mut self, name: &DnsName, addr: SiteAddr, now: f64) -> Option<SiteAddr> {
        let window = self.staleness_window;
        let mut node = &mut self.root;
        for label in name.labels().iter().rev() {
            node = node.children.entry(label.clone()).or_default();
        }
        let old = node.record.replace(addr);
        match old {
            Some(prev_addr) if prev_addr != addr && window > 0.0 => {
                node.prev = Some((prev_addr, now + window));
            }
            _ => node.prev = None,
        }
        if old.is_none() {
            self.records += 1;
        }
        old
    }

    /// Removes a record; returns its address if present.
    pub fn remove(&mut self, name: &DnsName) -> Option<SiteAddr> {
        fn walk(node: &mut ZoneNode, labels: &[String]) -> Option<SiteAddr> {
            match labels.split_last() {
                None => node.record.take(),
                Some((last, rest)) => {
                    let child = node.children.get_mut(last)?;
                    walk(child, rest)
                }
            }
        }
        let removed = walk(&mut self.root, name.labels());
        if removed.is_some() {
            self.records -= 1;
        }
        removed
    }

    /// Exact-or-longest-ancestor lookup (the paper notes DNS's longest
    /// prefix match as the reason it suits the hierarchical data). Returns
    /// `None` only if no ancestor of the name is registered either.
    /// Ignores staleness windows (equivalent to looking up infinitely far
    /// in the future).
    pub fn lookup(&self, name: &DnsName) -> Option<AuthAnswer> {
        self.lookup_at(name, f64::INFINITY)
    }

    /// [`AuthoritativeDns::lookup`] at time `now`: if the best record was
    /// re-registered within the staleness window, the *old* address is
    /// returned — the propagation lag clients actually observe.
    pub fn lookup_at(&self, name: &DnsName, now: f64) -> Option<AuthAnswer> {
        let mut node = &self.root;
        let mut best: Option<(SiteAddr, u32)> = None;
        let mut depth = 0u32;
        let serve = |n: &ZoneNode| -> Option<SiteAddr> {
            match (n.record, n.prev) {
                (Some(_), Some((prev, until))) if now < until => Some(prev),
                (r, _) => r,
            }
        };
        if let Some(r) = serve(node) {
            best = Some((r, depth));
        }
        let labels = name.labels();
        let mut matched = 0usize;
        for label in labels.iter().rev() {
            match node.children.get(label) {
                Some(child) => {
                    node = child;
                    depth += 1;
                    matched += 1;
                    if let Some(r) = serve(node) {
                        best = Some((r, depth));
                    }
                }
                None => break,
            }
        }
        best.map(|(addr, hops)| AuthAnswer {
            addr,
            hops,
            exact: matched == labels.len() && serve(node).map(|r| r == addr).unwrap_or(false)
                && hops as usize == labels.len(),
        })
    }

    /// Removes the record for `name` and every record strictly below it —
    /// used when an IDable subtree is deleted from the service (§4 schema
    /// changes). Returns the number of records removed.
    pub fn remove_subtree(&mut self, name: &DnsName) -> usize {
        fn count_records(node: &ZoneNode) -> usize {
            usize::from(node.record.is_some())
                + node.children.values().map(count_records).sum::<usize>()
        }
        fn walk(node: &mut ZoneNode, labels: &[String]) -> usize {
            match labels.split_last() {
                None => {
                    let removed = count_records(node);
                    node.record = None;
                    node.children.clear();
                    removed
                }
                Some((last, rest)) => match node.children.get_mut(last) {
                    Some(child) => walk(child, rest),
                    None => 0,
                },
            }
        }
        let removed = walk(&mut self.root, name.labels());
        self.records -= removed;
        removed
    }

    /// Iterates over all `(name, addr)` records (arbitrary order).
    pub fn records(&self) -> Vec<(DnsName, SiteAddr)> {
        fn walk(node: &ZoneNode, path: &mut Vec<String>, out: &mut Vec<(DnsName, SiteAddr)>) {
            if let Some(addr) = node.record {
                let mut labels = path.clone();
                labels.reverse();
                out.push((DnsName::parse(&labels.join(".")), addr));
            }
            for (label, child) in &node.children {
                path.push(label.clone());
                walk(child, path, out);
                path.pop();
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &mut Vec::new(), &mut out);
        out
    }

    /// Number of registered records.
    pub fn len(&self) -> usize {
        self.records
    }

    /// True if no records are registered.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(s: &str) -> DnsName {
        DnsName::parse(s)
    }

    #[test]
    fn register_lookup_exact() {
        let mut dns = AuthoritativeDns::new();
        dns.register(&n("pittsburgh.allegheny.pa.ne.net"), SiteAddr(7));
        let a = dns.lookup(&n("pittsburgh.allegheny.pa.ne.net")).unwrap();
        assert_eq!(a.addr, SiteAddr(7));
        assert_eq!(a.hops, 5);
        assert!(a.exact);
    }

    #[test]
    fn update_replaces_record() {
        let mut dns = AuthoritativeDns::new();
        assert_eq!(dns.register(&n("a.net"), SiteAddr(1)), None);
        assert_eq!(dns.register(&n("a.net"), SiteAddr(2)), Some(SiteAddr(1)));
        assert_eq!(dns.lookup(&n("a.net")).unwrap().addr, SiteAddr(2));
        assert_eq!(dns.len(), 1);
    }

    #[test]
    fn longest_prefix_fallback() {
        let mut dns = AuthoritativeDns::new();
        dns.register(&n("pittsburgh.pa.net"), SiteAddr(3));
        dns.register(&n("pa.net"), SiteAddr(1));
        // Unregistered deeper name falls back to the deepest ancestor.
        let a = dns.lookup(&n("block1.oakland.pittsburgh.pa.net")).unwrap();
        assert_eq!(a.addr, SiteAddr(3));
        assert!(!a.exact);
        // Sibling city falls back to the state record.
        let b = dns.lookup(&n("etna.pa.net")).unwrap();
        assert_eq!(b.addr, SiteAddr(1));
        assert!(!b.exact);
        // Unrelated apex misses entirely.
        assert!(dns.lookup(&n("x.org")).is_none());
    }

    #[test]
    fn remove_records() {
        let mut dns = AuthoritativeDns::new();
        dns.register(&n("a.b.net"), SiteAddr(1));
        dns.register(&n("b.net"), SiteAddr(2));
        assert_eq!(dns.remove(&n("a.b.net")), Some(SiteAddr(1)));
        assert_eq!(dns.remove(&n("a.b.net")), None);
        assert_eq!(dns.len(), 1);
        // Ancestor still resolves.
        assert_eq!(dns.lookup(&n("a.b.net")).unwrap().addr, SiteAddr(2));
    }

    #[test]
    fn remove_subtree_prunes_descendants() {
        let mut dns = AuthoritativeDns::new();
        dns.register(&n("pgh.pa.net"), SiteAddr(1));
        dns.register(&n("oakland.pgh.pa.net"), SiteAddr(2));
        dns.register(&n("b1.oakland.pgh.pa.net"), SiteAddr(3));
        dns.register(&n("phila.pa.net"), SiteAddr(4));
        assert_eq!(dns.remove_subtree(&n("pgh.pa.net")), 3);
        assert_eq!(dns.len(), 1);
        // Descendants are gone; longest-prefix now misses pgh entirely.
        assert!(dns.lookup(&n("b1.oakland.pgh.pa.net")).is_none());
        assert_eq!(dns.lookup(&n("phila.pa.net")).unwrap().addr, SiteAddr(4));
        // Removing a missing subtree is a no-op.
        assert_eq!(dns.remove_subtree(&n("nowhere.org")), 0);
    }

    #[test]
    fn records_enumerates_everything() {
        let mut dns = AuthoritativeDns::new();
        dns.register(&n("a.net"), SiteAddr(1));
        dns.register(&n("b.a.net"), SiteAddr(2));
        let mut recs = dns.records();
        recs.sort_by_key(|(name, _)| name.to_string());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].0.to_string(), "a.net");
        assert_eq!(recs[1].0.to_string(), "b.a.net");
    }

    #[test]
    fn staleness_window_serves_old_address() {
        let mut dns = AuthoritativeDns::new();
        dns.set_staleness_window(30.0);
        dns.register_at(&n("a.net"), SiteAddr(1), 0.0);
        // First registration: no previous address, visible immediately.
        assert_eq!(dns.lookup_at(&n("a.net"), 0.0).unwrap().addr, SiteAddr(1));
        // Re-registration at t=100: old address served until t=130.
        dns.register_at(&n("a.net"), SiteAddr(2), 100.0);
        assert_eq!(dns.lookup_at(&n("a.net"), 100.0).unwrap().addr, SiteAddr(1));
        assert_eq!(dns.lookup_at(&n("a.net"), 129.9).unwrap().addr, SiteAddr(1));
        assert_eq!(dns.lookup_at(&n("a.net"), 130.0).unwrap().addr, SiteAddr(2));
        // Untimed lookup ignores staleness entirely.
        assert_eq!(dns.lookup(&n("a.net")).unwrap().addr, SiteAddr(2));
        // Same-address re-registration clears any pending staleness.
        dns.register_at(&n("a.net"), SiteAddr(2), 101.0);
        assert_eq!(dns.lookup_at(&n("a.net"), 102.0).unwrap().addr, SiteAddr(2));
        // Untimed register() is never stale even with a window configured.
        dns.register(&n("a.net"), SiteAddr(3));
        assert_eq!(dns.lookup_at(&n("a.net"), 0.0).unwrap().addr, SiteAddr(3));
    }

    #[test]
    fn hops_count_depth() {
        let mut dns = AuthoritativeDns::new();
        dns.register(&n("net"), SiteAddr(0));
        dns.register(&n("deep.very.pa.net"), SiteAddr(9));
        assert_eq!(dns.lookup(&n("net")).unwrap().hops, 1);
        assert_eq!(dns.lookup(&n("deep.very.pa.net")).unwrap().hops, 4);
    }
}
