//! DNS-style names built from document id paths.

use std::fmt;

/// A DNS-style name: lowercase labels, least-significant (deepest) first,
/// e.g. `pittsburgh.allegheny.pa.ne.parking.intel-iris.net`.
///
/// Built from a root-to-node id path plus a service suffix; per the paper,
/// the name is derived *from the query text alone* — no schema or global
/// state involved.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnsName {
    labels: Vec<String>,
}

impl DnsName {
    /// Builds a name from a root-to-node id path (`["NE", "PA", "Allegheny",
    /// "Pittsburgh"]`) and a dot-separated service suffix
    /// (`"parking.intel-iris.net"`). Ids are lowercased and internal spaces
    /// become hyphens (`New York` → `new-york`).
    pub fn from_id_path<S: AsRef<str>>(ids: &[S], service_suffix: &str) -> DnsName {
        let mut labels: Vec<String> =
            ids.iter().rev().map(|s| Self::mangle(s.as_ref())).collect();
        labels.extend(service_suffix.split('.').map(|l| l.to_ascii_lowercase()));
        DnsName { labels }
    }

    /// Parses a dotted name.
    pub fn parse(name: &str) -> DnsName {
        DnsName {
            labels: name.split('.').map(|l| l.to_ascii_lowercase()).collect(),
        }
    }

    fn mangle(id: &str) -> String {
        id.trim()
            .chars()
            .map(|c| {
                if c.is_whitespace() {
                    '-'
                } else {
                    c.to_ascii_lowercase()
                }
            })
            .collect()
    }

    /// The labels, deepest first.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of labels.
    pub fn depth(&self) -> usize {
        self.labels.len()
    }

    /// The name with the first (deepest) label removed; `None` at the apex.
    pub fn parent(&self) -> Option<DnsName> {
        if self.labels.len() <= 1 {
            None
        } else {
            Some(DnsName { labels: self.labels[1..].to_vec() })
        }
    }

    /// True if `self` equals `other` or is a descendant of it
    /// (`a.b.c` is within `b.c`).
    pub fn is_within(&self, other: &DnsName) -> bool {
        self.labels.len() >= other.labels.len()
            && self.labels[self.labels.len() - other.labels.len()..] == other.labels[..]
    }
}

impl fmt::Display for DnsName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.labels.join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_name() {
        let n = DnsName::from_id_path(
            &["NE", "PA", "Allegheny", "Pittsburgh"],
            "parking.intel-iris.net",
        );
        assert_eq!(n.to_string(), "pittsburgh.allegheny.pa.ne.parking.intel-iris.net");
    }

    #[test]
    fn spaces_become_hyphens() {
        let n = DnsName::from_id_path(&["NE", "NY", "New York"], "parking.intel-iris.net");
        assert_eq!(n.to_string(), "new-york.ny.ne.parking.intel-iris.net");
    }

    #[test]
    fn parse_display_roundtrip() {
        let n = DnsName::parse("A.b.C");
        assert_eq!(n.to_string(), "a.b.c");
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn parent_chain() {
        let n = DnsName::parse("a.b.c");
        let p = n.parent().unwrap();
        assert_eq!(p.to_string(), "b.c");
        assert_eq!(p.parent().unwrap().to_string(), "c");
        assert!(p.parent().unwrap().parent().is_none());
    }

    #[test]
    fn is_within_prefix_semantics() {
        let deep = DnsName::parse("block1.oakland.pittsburgh.net");
        let mid = DnsName::parse("pittsburgh.net");
        assert!(deep.is_within(&mid));
        assert!(deep.is_within(&deep));
        assert!(!mid.is_within(&deep));
        assert!(!DnsName::parse("oakland.etna.net").is_within(&DnsName::parse("oakland.net")));
    }
}
