//! # irisdns
//!
//! A simulated hierarchical DNS, sufficient for IrisNet's *self-starting
//! distributed queries* (paper §3.4):
//!
//! * every IDable node that can own data gets a DNS-style name built from
//!   the ids on its root path (`pittsburgh.allegheny.pa.ne.parking.intel-iris.net`);
//! * an [`AuthoritativeDns`] maps names to site addresses and is updated
//!   when ownership migrates (§4);
//! * each client uses a [`CachingResolver`] with per-entry TTLs — cached
//!   entries answer "nearby" (zero extra hops), misses walk the zone
//!   hierarchy; after a migration, caches may serve **stale** addresses,
//!   which the query layer tolerates because the old owner forwards.
//!
//! Time is always passed in explicitly (seconds as `f64`), so the module is
//! deterministic and works under both the live cluster and the
//! discrete-event simulator.

pub mod name;
pub mod resolver;
pub mod server;

pub use name::DnsName;
pub use resolver::{CachingResolver, ResolveOutcome};
pub use server::{AuthoritativeDns, SiteAddr};
