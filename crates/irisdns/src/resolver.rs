//! Per-client caching resolver with TTLs.

use std::collections::HashMap;

use crate::name::DnsName;
use crate::server::{AuthoritativeDns, SiteAddr};

/// Outcome of a resolution, with enough accounting for the simulator to
/// charge realistic costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolveOutcome {
    pub addr: SiteAddr,
    /// True if answered from the local cache (no network traffic).
    pub cache_hit: bool,
    /// Delegation hops charged for a cold lookup (0 on a hit).
    pub hops: u32,
    /// True if the record came from an exact name match.
    pub exact: bool,
}

#[derive(Debug, Clone, Copy)]
enum CacheEntry {
    Positive { addr: SiteAddr, expires_at: f64, exact: bool },
    /// NXDOMAIN caching: remembering that a name did not resolve avoids
    /// hammering the authoritative store with hopeless lookups.
    Negative { expires_at: f64 },
}

/// A caching stub resolver, one per client/site ("this entry is cached in a
/// DNS server near to the query", §3.4). Entries live for `ttl` seconds;
/// after an ownership migration a cached entry may be stale — the query
/// layer tolerates that because the previous owner forwards (§4).
#[derive(Debug)]
pub struct CachingResolver {
    ttl: f64,
    cache: HashMap<DnsName, CacheEntry>,
    /// Counters: (lookups, cache hits, authoritative queries).
    lookups: u64,
    hits: u64,
    authoritative_queries: u64,
}

impl CachingResolver {
    /// Creates a resolver whose entries live `ttl_seconds`.
    pub fn new(ttl_seconds: f64) -> Self {
        CachingResolver {
            ttl: ttl_seconds,
            cache: HashMap::new(),
            lookups: 0,
            hits: 0,
            authoritative_queries: 0,
        }
    }

    /// Resolves `name` at time `now` against `auth`, consulting the cache
    /// first. Returns `None` if the authoritative store has no record for
    /// the name or any ancestor.
    pub fn resolve(
        &mut self,
        name: &DnsName,
        auth: &AuthoritativeDns,
        now: f64,
    ) -> Option<ResolveOutcome> {
        self.lookups += 1;
        match self.cache.get(name) {
            Some(CacheEntry::Positive { addr, expires_at, exact }) if *expires_at > now => {
                self.hits += 1;
                return Some(ResolveOutcome {
                    addr: *addr,
                    cache_hit: true,
                    hops: 0,
                    exact: *exact,
                });
            }
            Some(CacheEntry::Negative { expires_at }) if *expires_at > now => {
                self.hits += 1;
                return None;
            }
            _ => {}
        }
        self.authoritative_queries += 1;
        match auth.lookup_at(name, now) {
            Some(ans) => {
                self.cache.insert(
                    name.clone(),
                    CacheEntry::Positive {
                        addr: ans.addr,
                        expires_at: now + self.ttl,
                        exact: ans.exact,
                    },
                );
                Some(ResolveOutcome {
                    addr: ans.addr,
                    cache_hit: false,
                    hops: ans.hops,
                    exact: ans.exact,
                })
            }
            None => {
                self.cache
                    .insert(name.clone(), CacheEntry::Negative { expires_at: now + self.ttl });
                None
            }
        }
    }

    /// Drops the cached entry for `name` (e.g. after being told an address
    /// was stale).
    pub fn invalidate(&mut self, name: &DnsName) {
        self.cache.remove(name);
    }

    /// Bypasses the local cache: invalidates any entry for `name` and goes
    /// straight to the authoritative store. Used by the retry path when an
    /// owner looks unreachable — a migration may have moved it and the
    /// cached address is the whole problem.
    pub fn resolve_fresh(
        &mut self,
        name: &DnsName,
        auth: &AuthoritativeDns,
        now: f64,
    ) -> Option<ResolveOutcome> {
        self.invalidate(name);
        self.resolve(name, auth, now)
    }

    /// Drops every expired entry.
    pub fn purge_expired(&mut self, now: f64) {
        self.cache.retain(|_, e| match e {
            CacheEntry::Positive { expires_at, .. } | CacheEntry::Negative { expires_at } => {
                *expires_at > now
            }
        });
    }

    /// `(lookups, cache_hits, authoritative_queries)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.lookups, self.hits, self.authoritative_queries)
    }

    /// Number of live cache entries.
    pub fn cached_len(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AuthoritativeDns, CachingResolver) {
        let mut auth = AuthoritativeDns::new();
        auth.register(&DnsName::parse("oakland.pgh.net"), SiteAddr(5));
        (auth, CachingResolver::new(30.0))
    }

    #[test]
    fn miss_then_hit() {
        let (auth, mut r) = setup();
        let name = DnsName::parse("oakland.pgh.net");
        let first = r.resolve(&name, &auth, 0.0).unwrap();
        assert!(!first.cache_hit);
        assert_eq!(first.hops, 3);
        let second = r.resolve(&name, &auth, 1.0).unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.hops, 0);
        assert_eq!(r.stats(), (2, 1, 1));
    }

    #[test]
    fn ttl_expiry_forces_refetch() {
        let (auth, mut r) = setup();
        let name = DnsName::parse("oakland.pgh.net");
        r.resolve(&name, &auth, 0.0).unwrap();
        let later = r.resolve(&name, &auth, 31.0).unwrap();
        assert!(!later.cache_hit);
        assert_eq!(r.stats(), (2, 0, 2));
    }

    #[test]
    fn stale_cache_after_migration() {
        let (mut auth, mut r) = setup();
        let name = DnsName::parse("oakland.pgh.net");
        assert_eq!(r.resolve(&name, &auth, 0.0).unwrap().addr, SiteAddr(5));
        // Ownership migrates; the cached entry keeps answering the old
        // address until TTL or invalidation.
        auth.register(&name, SiteAddr(9));
        assert_eq!(r.resolve(&name, &auth, 5.0).unwrap().addr, SiteAddr(5));
        r.invalidate(&name);
        assert_eq!(r.resolve(&name, &auth, 6.0).unwrap().addr, SiteAddr(9));
    }

    #[test]
    fn missing_name_resolves_to_ancestor_or_none() {
        let (auth, mut r) = setup();
        let deep = DnsName::parse("block1.oakland.pgh.net");
        let out = r.resolve(&deep, &auth, 0.0).unwrap();
        assert_eq!(out.addr, SiteAddr(5));
        assert!(!out.exact);
        assert!(r.resolve(&DnsName::parse("nowhere.org"), &auth, 0.0).is_none());
    }

    #[test]
    fn negative_answers_are_cached() {
        let (auth, mut r) = setup();
        let missing = DnsName::parse("nowhere.org");
        assert!(r.resolve(&missing, &auth, 0.0).is_none());
        assert!(r.resolve(&missing, &auth, 1.0).is_none());
        // Only one authoritative query despite two lookups.
        assert_eq!(r.stats(), (2, 1, 1));
        // After TTL the negative entry expires and is retried.
        assert!(r.resolve(&missing, &auth, 31.0).is_none());
        assert_eq!(r.stats().2, 2);
    }

    #[test]
    fn registration_after_negative_cache_needs_expiry_or_invalidation() {
        let (mut auth, mut r) = setup();
        let name = DnsName::parse("newcomer.org");
        assert!(r.resolve(&name, &auth, 0.0).is_none());
        auth.register(&name, SiteAddr(9));
        // Still negative-cached...
        assert!(r.resolve(&name, &auth, 1.0).is_none());
        // ...until invalidated.
        r.invalidate(&name);
        assert_eq!(r.resolve(&name, &auth, 2.0).unwrap().addr, SiteAddr(9));
    }

    #[test]
    fn resolve_fresh_bypasses_cache() {
        let (mut auth, mut r) = setup();
        let name = DnsName::parse("oakland.pgh.net");
        assert_eq!(r.resolve(&name, &auth, 0.0).unwrap().addr, SiteAddr(5));
        auth.register(&name, SiteAddr(9));
        // Cached answer is stale; a fresh resolve sees the new owner.
        assert_eq!(r.resolve(&name, &auth, 1.0).unwrap().addr, SiteAddr(5));
        let fresh = r.resolve_fresh(&name, &auth, 2.0).unwrap();
        assert_eq!(fresh.addr, SiteAddr(9));
        assert!(!fresh.cache_hit);
        // And the fresh answer re-primes the cache.
        assert!(r.resolve(&name, &auth, 3.0).unwrap().cache_hit);
    }

    #[test]
    fn purge_expired_shrinks_cache() {
        let (auth, mut r) = setup();
        r.resolve(&DnsName::parse("oakland.pgh.net"), &auth, 0.0).unwrap();
        assert_eq!(r.cached_len(), 1);
        r.purge_expired(100.0);
        assert_eq!(r.cached_len(), 0);
    }
}
