//! irisobs — the observability plane for the irisnet workspace.
//!
//! One crate, four concerns, zero dependencies:
//!
//! - [`span`] / [`recorder`]: causally-linked distributed query traces
//!   behind a [`Recorder`] trait whose no-op default costs one branch per
//!   message. The same span shapes are recorded by the discrete-event
//!   simulator (virtual time) and the live cluster (wall time), so the DES
//!   remains the oracle for trace *structure*.
//! - [`metrics`]: per-site named series — lock-free counters and
//!   log2-bucket histograms — that absorb component-local atomics via
//!   [`Registry::adopt_counter`] (shared storage, no double counting).
//! - [`explain`]: trace assembly, structural invariants (single root per
//!   query, parent precedes child, no orphans), the `query explain`
//!   report, and the timing-free structure digest used for DES-vs-live
//!   equivalence checks.
//! - [`export`] / [`quantile`]: flat JSONL dump/parse and exact
//!   linear-interpolation percentiles.
//! - [`telemetry`]: the *continuous* plane — windowed rate/percentile
//!   series with order-insensitive mergeable deltas, per-fragment decayed
//!   heat series, a tail-sampled flight recorder of complete span trees,
//!   and the per-site health state machine; all of it scrapeable over the
//!   wire via `Message::TelemetryRequest/TelemetryReply`.

pub mod explain;
pub mod export;
pub mod metrics;
pub mod quantile;
pub mod recorder;
pub mod span;
pub mod telemetry;

pub use explain::{
    assemble, check_well_formed, explain_tree, render_explain, structure_digest, CacheCounts,
    ExplainReport, Forest, TraceNode, TraceTree,
};
pub use export::{dump_jsonl, metrics_to_jsonl, parse_spans, span_from_jsonl, span_to_jsonl};
pub use metrics::{
    Counter, CounterSnapshot, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use quantile::{latency_percentiles, quantile_sorted, Percentiles};
pub use recorder::{MemRecorder, NoopRecorder, Recorder};
pub use span::{CacheOutcome, Link, Phases, SpanKind, SpanRecord};
pub use telemetry::{
    disabled_payload, parse_payload, FlightRing, FlightTrace, HealthState, ParsedPayload,
    ParsedTrace, TelemetryConfig, TelemetryPlane, TelemetryRecorder, WindowDelta, WHAT_ALL,
    WHAT_FLIGHT, WHAT_HEALTH, WHAT_METRICS,
};
