//! Lock-free named metric series: counters and log2-bucket histograms.
//!
//! The hot path never takes a lock: callers hold `Arc<Counter>` /
//! `Arc<Histogram>` handles resolved once at registration time, and every
//! update is a single relaxed atomic op. The [`Registry`] map itself is
//! behind an `RwLock`, but it is only touched at registration and snapshot
//! time, never per-message.
//!
//! Histograms bucket a nanosecond-resolution fixed point (`value × 1e9`)
//! by its top two mantissa bits past the leading one: four linear
//! sub-buckets per power of two, 252 buckets spanning sub-nanosecond to
//! centuries — the classic HDR-lite trade: ≤ 1.25× relative error per
//! bucket, zero allocation, zero contention beyond the bucket increment
//! itself. (Pure log2 bucketing collapsed all sub-millisecond latencies
//! of one octave into a single bucket, biasing p50 on fast paths by up
//! to 2×.) The same shape serves durations (seconds in, seconds out) and
//! small dimensionless gauges like queue depth.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value. For counters that mirror an externally-owned
    /// tally published at snapshot time (not for hot-path increments).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Number of buckets: four exact buckets for fixed-point values 0–3,
/// then four linear sub-buckets per power of two up to `2^64`. Bucket
/// `4(m-1)+s` (for `m ≥ 2`, `s ∈ 0..4`) covers fixed-point values in
/// `[2^(m-2)·(4+s), 2^(m-2)·(5+s))`.
pub const HIST_BUCKETS: usize = 252;

/// A lock-free log2-bucket histogram over non-negative `f64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    /// Sum of fixed-point (×1e9) sample values, for exact means.
    sum_fp: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_fp: AtomicU64::new(0),
        }
    }
}

/// Fixed-point encode: nanosecond resolution for second-denominated values.
fn to_fp(v: f64) -> u64 {
    (v.max(0.0) * 1e9) as u64
}

/// Bucket index of a fixed-point sample: the octave (position of the
/// leading one bit) refined by the next two bits, so each power of two
/// splits into four linear sub-buckets.
pub fn bucket_of(fp: u64) -> usize {
    if fp < 4 {
        return fp as usize; // exact buckets for 0..4
    }
    let m = 63 - fp.leading_zeros() as usize; // 2^m <= fp < 2^(m+1), m >= 2
    let sub = ((fp >> (m - 2)) & 3) as usize; // next two bits: 0..4
    4 * (m - 1) + sub
}

/// Upper edge of bucket `i`, decoded back to the sample domain. The edge
/// is exclusive: every sample in bucket `i` is strictly below it, and at
/// most 1.25× below it.
pub fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else if i < 4 {
        (i + 1) as f64 / 1e9 // buckets 1..4 each hold one exact value
    } else {
        let m = i / 4 + 1;
        let s = i % 4;
        // (5+s)·2^(m-2); u128 because m=63, s=3 reaches 2^64.
        (((5 + s) as u128) << (m - 2)) as f64 / 1e9
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    #[inline]
    pub fn observe(&self, v: f64) {
        let fp = to_fp(v);
        self.buckets[bucket_of(fp)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_fp.fetch_add(fp, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact mean of observed samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_fp.load(Ordering::Relaxed) as f64 / 1e9 / n as f64
        }
    }

    /// Approximate `q`-quantile: the upper edge of the bucket containing
    /// the q-th sample (≤ 1.25× relative error by construction).
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// Non-empty buckets as `(bucket index, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect()
    }
}

/// Point-in-time value of one counter series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub site: u32,
    pub name: String,
    pub value: u64,
}

/// Point-in-time value of one histogram series.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub site: u32,
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p99: f64,
    pub buckets: Vec<(usize, u64)>,
}

/// All series at one instant, sorted by `(site, name)`.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of counter `name` at `site`, 0 if absent.
    pub fn counter(&self, site: u32, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.site == site && c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Sum of counter `name` across all sites.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.name == name).map(|c| c.value).sum()
    }

    /// The histogram series `name` at `site`, if it was ever observed.
    pub fn histogram(&self, site: u32, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.site == site && h.name == name)
    }

    /// All histogram series at `site` whose name starts with `prefix`, as
    /// `(full name, snapshot)` pairs — the per-shard runtime series
    /// (`runtime.shard<i>.*`) are enumerated this way without knowing the
    /// shard count up front, and the returned name says which shard each
    /// snapshot belongs to (callers used to have to re-infer that from
    /// position).
    pub fn histograms_with_prefix(
        &self,
        site: u32,
        prefix: &str,
    ) -> Vec<(&str, &HistogramSnapshot)> {
        self.histograms
            .iter()
            .filter(|h| h.site == site && h.name.starts_with(prefix))
            .map(|h| (h.name.as_str(), h))
            .collect()
    }
}

/// A per-site registry of named series. Site 0 is reserved for
/// cluster-global series (client hub, substrate internals).
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<(u32, String), Arc<Counter>>>,
    histograms: RwLock<BTreeMap<(u32, String), Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create the counter `(site, name)`, returning a hot-path
    /// handle. Call once at setup; update through the handle.
    pub fn counter(&self, site: u32, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(&(site, name.to_string())) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write().unwrap();
        Arc::clone(
            w.entry((site, name.to_string()))
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Register *existing* counter storage under a series name. This is how
    /// pre-existing one-off atomics (e.g. the QEG factory's hit/miss/
    /// eviction counters) join the plane without double-counting: the same
    /// `Arc<Counter>` is both the component's working counter and the
    /// registry's series.
    pub fn adopt_counter(&self, site: u32, name: &str, counter: Arc<Counter>) {
        self.counters
            .write()
            .unwrap()
            .insert((site, name.to_string()), counter);
    }

    /// Get-or-create the histogram `(site, name)`.
    pub fn histogram(&self, site: u32, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(&(site, name.to_string())) {
            return Arc::clone(h);
        }
        let mut w = self.histograms.write().unwrap();
        Arc::clone(
            w.entry((site, name.to_string()))
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// The series of a single site, sorted by name. O(series at that
    /// site) via the BTreeMap key order — this is what the telemetry
    /// plane samples per quiescent point, so it must not scan the whole
    /// cluster's registry.
    pub fn snapshot_site(&self, site: u32) -> MetricsSnapshot {
        let from = (site, String::new());
        let counters = self
            .counters
            .read()
            .unwrap()
            .range(from.clone()..)
            .take_while(|((s, _), _)| *s == site)
            .map(|((site, name), c)| CounterSnapshot {
                site: *site,
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .range(from..)
            .take_while(|((s, _), _)| *s == site)
            .map(|((site, name), h)| HistogramSnapshot {
                site: *site,
                name: name.clone(),
                count: h.count(),
                mean: h.mean(),
                p50: h.quantile(0.5),
                p99: h.quantile(0.99),
                buckets: h.nonzero_buckets(),
            })
            .collect();
        MetricsSnapshot { counters, histograms }
    }

    /// All series, sorted by `(site, name)` for deterministic export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|((site, name), c)| CounterSnapshot {
                site: *site,
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|((site, name), h)| HistogramSnapshot {
                site: *site,
                name: name.clone(),
                count: h.count(),
                mean: h.mean(),
                p50: h.quantile(0.5),
                p99: h.quantile(0.99),
                buckets: h.nonzero_buckets(),
            })
            .collect();
        MetricsSnapshot { counters, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_are_log2_with_linear_subscale() {
        // Exact buckets below 4, then four sub-buckets per octave.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 3);
        assert_eq!(bucket_of(4), 4);
        assert_eq!(bucket_of(7), 7);
        assert_eq!(bucket_of(8), 8);
        assert_eq!(bucket_of(9), 8);
        assert_eq!(bucket_of(10), 9);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Upper edges decode back into the sample domain.
        assert_eq!(bucket_upper(0), 0.0);
        assert_eq!(bucket_upper(1), 2e-9);
        assert_eq!(bucket_upper(4), 5e-9);
        assert_eq!(bucket_upper(8), 1e-8);
        // bucket_of and bucket_upper agree: each sample sits strictly
        // below its bucket's upper edge and at/above the previous one's.
        // (u64::MAX itself is excluded: it rounds to exactly 2^64 in f64
        // and so ties, rather than undercuts, the top bucket's edge.)
        for fp in [1u64, 5, 100, 12_345, 1 << 40, (1 << 63) + 12_345] {
            let i = bucket_of(fp);
            assert!((fp as f64 / 1e9) < bucket_upper(i), "fp={fp}");
            if i > 0 {
                assert!((fp as f64 / 1e9) >= bucket_upper(i - 1) - 1e-18, "fp={fp}");
            }
        }
    }

    #[test]
    fn sub_millisecond_latencies_stay_distinguishable() {
        // 300µs and 400µs share an octave (2^18 ≤ fp < 2^19): pure log2
        // bucketing collapsed them, the sub-scale keeps them apart.
        let (a, b) = (to_fp(3e-4), to_fp(4e-4));
        assert_eq!(63 - a.leading_zeros(), 63 - b.leading_zeros(), "same octave");
        assert_ne!(bucket_of(a), bucket_of(b), "distinct sub-buckets");
    }

    #[test]
    fn histogram_quantile_error_is_within_a_quarter() {
        // The estimate always bounds the true value from above, by ≤ 1.25×.
        for v in [2.5e-7, 3e-4, 0.123, 0.9, 17.0] {
            let h = Histogram::new();
            for _ in 0..100 {
                h.observe(v);
            }
            let est = h.quantile(0.5);
            assert!(est > v, "estimate {est} not above true {v}");
            assert!(est <= v * 1.250_001, "estimate {est} > 1.25× true {v}");
        }
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-3); // 1ms .. 1s
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.5005).abs() < 1e-6);
        let p50 = h.quantile(0.5);
        // Bucket upper edge: true p50 is 0.5s, the estimate must be within
        // [0.5, 1.0) (≤2× error, never below the true quantile).
        assert!((0.5..1.0).contains(&p50), "p50 estimate {p50}");
        let p99 = h.quantile(0.99);
        assert!((0.99..2.0).contains(&p99), "p99 estimate {p99}");
        assert!(h.quantile(1.0) >= 1.0);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.observe(0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1)]);
    }

    #[test]
    fn registry_shares_storage() {
        let r = Registry::new();
        let a = r.counter(1, "asks");
        let b = r.counter(1, "asks");
        a.add(3);
        assert_eq!(b.get(), 3);
        assert_eq!(r.snapshot().counter(1, "asks"), 3);
        assert_eq!(r.snapshot().counter(2, "asks"), 0);
    }

    #[test]
    fn adopted_counters_are_the_same_storage() {
        let r = Registry::new();
        let working = Arc::new(Counter::new());
        working.add(7);
        r.adopt_counter(3, "qeg.skeleton_hits", Arc::clone(&working));
        assert_eq!(r.snapshot().counter(3, "qeg.skeleton_hits"), 7);
        working.inc();
        assert_eq!(r.snapshot().counter(3, "qeg.skeleton_hits"), 8);
        // get-or-create after adoption resolves to the adopted storage.
        assert_eq!(r.counter(3, "qeg.skeleton_hits").get(), 8);
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::new();
        r.counter(2, "b");
        r.counter(1, "z");
        r.counter(1, "a");
        let keys: Vec<(u32, String)> =
            r.snapshot().counters.into_iter().map(|c| (c.site, c.name)).collect();
        assert_eq!(
            keys,
            vec![(1, "a".into()), (1, "z".into()), (2, "b".into())]
        );
    }

    #[test]
    fn snapshot_site_is_exactly_that_sites_series() {
        let r = Registry::new();
        r.counter(1, "a").add(1);
        r.counter(2, "a").add(2);
        r.counter(2, "b").add(3);
        r.counter(3, "a").add(4);
        r.histogram(2, "lat").observe(0.1);
        r.histogram(3, "lat").observe(0.2);
        let s = r.snapshot_site(2);
        assert_eq!(
            s.counters.iter().map(|c| (c.name.as_str(), c.value)).collect::<Vec<_>>(),
            vec![("a", 2), ("b", 3)]
        );
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].count, 1);
        assert!(r.snapshot_site(9).counters.is_empty());
    }

    #[test]
    fn histograms_with_prefix_names_the_match() {
        let r = Registry::new();
        r.histogram(0, "runtime.shard0.mailbox_wait").observe(0.1);
        r.histogram(0, "runtime.shard1.mailbox_wait").observe(0.2);
        r.histogram(0, "other").observe(0.3);
        let s = r.snapshot();
        let got = s.histograms_with_prefix(0, "runtime.shard");
        let names: Vec<&str> = got.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec!["runtime.shard0.mailbox_wait", "runtime.shard1.mailbox_wait"]
        );
        for (name, h) in got {
            assert_eq!(name, h.name, "pair name matches the snapshot it labels");
            assert_eq!(h.count, 1);
        }
    }

    #[test]
    fn counter_total_sums_sites() {
        let r = Registry::new();
        r.counter(1, "retries").add(2);
        r.counter(2, "retries").add(3);
        assert_eq!(r.snapshot().counter_total("retries"), 5);
    }
}
