//! Lock-free named metric series: counters and log2-bucket histograms.
//!
//! The hot path never takes a lock: callers hold `Arc<Counter>` /
//! `Arc<Histogram>` handles resolved once at registration time, and every
//! update is a single relaxed atomic op. The [`Registry`] map itself is
//! behind an `RwLock`, but it is only touched at registration and snapshot
//! time, never per-message.
//!
//! Histograms bucket by powers of two of a nanosecond-resolution fixed
//! point (`value × 1e9`), giving ~64 buckets spanning sub-nanosecond to
//! centuries — the classic HDR-lite trade: ≤ 2× relative error per bucket,
//! zero allocation, zero contention beyond the bucket increment itself.
//! The same shape serves durations (seconds in, seconds out) and small
//! dimensionless gauges like queue depth (where ≤ 2× error is plenty to
//! spot saturation).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value. For counters that mirror an externally-owned
    /// tally published at snapshot time (not for hot-path increments).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
}

/// Number of log2 buckets; bucket `i` covers fixed-point values in
/// `[2^(i-1), 2^i)` (bucket 0 holds the value 0).
pub const HIST_BUCKETS: usize = 64;

/// A lock-free log2-bucket histogram over non-negative `f64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    /// Sum of fixed-point (×1e9) sample values, for exact means.
    sum_fp: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_fp: AtomicU64::new(0),
        }
    }
}

/// Fixed-point encode: nanosecond resolution for second-denominated values.
fn to_fp(v: f64) -> u64 {
    (v.max(0.0) * 1e9) as u64
}

fn bucket_of(fp: u64) -> usize {
    if fp == 0 {
        0
    } else {
        (64 - fp.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Upper edge of bucket `i`, decoded back to the sample domain.
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (1u64 << i.min(63)) as f64 / 1e9
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram::default()
    }

    #[inline]
    pub fn observe(&self, v: f64) {
        let fp = to_fp(v);
        self.buckets[bucket_of(fp)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_fp.fetch_add(fp, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact mean of observed samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_fp.load(Ordering::Relaxed) as f64 / 1e9 / n as f64
        }
    }

    /// Approximate `q`-quantile: the upper edge of the bucket containing
    /// the q-th sample (≤ 2× relative error by construction).
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// Non-empty buckets as `(bucket index, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then_some((i, c))
            })
            .collect()
    }
}

/// Point-in-time value of one counter series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub site: u32,
    pub name: String,
    pub value: u64,
}

/// Point-in-time value of one histogram series.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub site: u32,
    pub name: String,
    pub count: u64,
    pub mean: f64,
    pub p50: f64,
    pub p99: f64,
    pub buckets: Vec<(usize, u64)>,
}

/// All series at one instant, sorted by `(site, name)`.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of counter `name` at `site`, 0 if absent.
    pub fn counter(&self, site: u32, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.site == site && c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Sum of counter `name` across all sites.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.name == name).map(|c| c.value).sum()
    }

    /// The histogram series `name` at `site`, if it was ever observed.
    pub fn histogram(&self, site: u32, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.site == site && h.name == name)
    }

    /// All histogram series at `site` whose name starts with `prefix` —
    /// the per-shard runtime series (`runtime.shard<i>.*`) are enumerated
    /// this way without knowing the shard count up front.
    pub fn histograms_with_prefix(&self, site: u32, prefix: &str) -> Vec<&HistogramSnapshot> {
        self.histograms
            .iter()
            .filter(|h| h.site == site && h.name.starts_with(prefix))
            .collect()
    }
}

/// A per-site registry of named series. Site 0 is reserved for
/// cluster-global series (client hub, substrate internals).
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<(u32, String), Arc<Counter>>>,
    histograms: RwLock<BTreeMap<(u32, String), Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-create the counter `(site, name)`, returning a hot-path
    /// handle. Call once at setup; update through the handle.
    pub fn counter(&self, site: u32, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(&(site, name.to_string())) {
            return Arc::clone(c);
        }
        let mut w = self.counters.write().unwrap();
        Arc::clone(
            w.entry((site, name.to_string()))
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Register *existing* counter storage under a series name. This is how
    /// pre-existing one-off atomics (e.g. the QEG factory's hit/miss/
    /// eviction counters) join the plane without double-counting: the same
    /// `Arc<Counter>` is both the component's working counter and the
    /// registry's series.
    pub fn adopt_counter(&self, site: u32, name: &str, counter: Arc<Counter>) {
        self.counters
            .write()
            .unwrap()
            .insert((site, name.to_string()), counter);
    }

    /// Get-or-create the histogram `(site, name)`.
    pub fn histogram(&self, site: u32, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(&(site, name.to_string())) {
            return Arc::clone(h);
        }
        let mut w = self.histograms.write().unwrap();
        Arc::clone(
            w.entry((site, name.to_string()))
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// All series, sorted by `(site, name)` for deterministic export.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|((site, name), c)| CounterSnapshot {
                site: *site,
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|((site, name), h)| HistogramSnapshot {
                site: *site,
                name: name.clone(),
                count: h.count(),
                mean: h.mean(),
                p50: h.quantile(0.5),
                p99: h.quantile(0.99),
                buckets: h.nonzero_buckets(),
            })
            .collect();
        MetricsSnapshot { counters, histograms }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Upper edges decode back into the sample domain.
        assert_eq!(bucket_upper(0), 0.0);
        assert_eq!(bucket_upper(1), 2e-9);
    }

    #[test]
    fn histogram_quantiles_bound_samples() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-3); // 1ms .. 1s
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.5005).abs() < 1e-6);
        let p50 = h.quantile(0.5);
        // Bucket upper edge: true p50 is 0.5s, the estimate must be within
        // [0.5, 1.0) (≤2× error, never below the true quantile).
        assert!((0.5..1.0).contains(&p50), "p50 estimate {p50}");
        let p99 = h.quantile(0.99);
        assert!((0.99..2.0).contains(&p99), "p99 estimate {p99}");
        assert!(h.quantile(1.0) >= 1.0);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.observe(0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1)]);
    }

    #[test]
    fn registry_shares_storage() {
        let r = Registry::new();
        let a = r.counter(1, "asks");
        let b = r.counter(1, "asks");
        a.add(3);
        assert_eq!(b.get(), 3);
        assert_eq!(r.snapshot().counter(1, "asks"), 3);
        assert_eq!(r.snapshot().counter(2, "asks"), 0);
    }

    #[test]
    fn adopted_counters_are_the_same_storage() {
        let r = Registry::new();
        let working = Arc::new(Counter::new());
        working.add(7);
        r.adopt_counter(3, "qeg.skeleton_hits", Arc::clone(&working));
        assert_eq!(r.snapshot().counter(3, "qeg.skeleton_hits"), 7);
        working.inc();
        assert_eq!(r.snapshot().counter(3, "qeg.skeleton_hits"), 8);
        // get-or-create after adoption resolves to the adopted storage.
        assert_eq!(r.counter(3, "qeg.skeleton_hits").get(), 8);
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = Registry::new();
        r.counter(2, "b");
        r.counter(1, "z");
        r.counter(1, "a");
        let keys: Vec<(u32, String)> =
            r.snapshot().counters.into_iter().map(|c| (c.site, c.name)).collect();
        assert_eq!(
            keys,
            vec![(1, "a".into()), (1, "z".into()), (2, "b".into())]
        );
    }

    #[test]
    fn counter_total_sums_sites() {
        let r = Registry::new();
        r.counter(1, "retries").add(2);
        r.counter(2, "retries").add(3);
        assert_eq!(r.snapshot().counter_total("retries"), 5);
    }
}
