//! The `Recorder` trait: how instrumented code hands spans and metrics to
//! the observability plane.
//!
//! Instrumentation sites cache `enabled()` once (the agent keeps an `on:
//! bool` next to its recorder handle), so with the default
//! [`NoopRecorder`] the entire plane costs one predictable branch per
//! message — the overhead budget the release guard in
//! `scripts/obs_smoke.sh` enforces (< 2 % vs. the PR 2 hot-site baseline).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::Registry;
use crate::span::SpanRecord;
use crate::telemetry::TelemetryPlane;

/// A sink for spans and a home for metric series. Implementations must be
/// cheap to call from every site thread concurrently.
pub trait Recorder: std::fmt::Debug + Send + Sync {
    /// Whether spans should be recorded at all. Callers may cache this for
    /// the lifetime of the recorder (it must not change after setup).
    fn enabled(&self) -> bool;

    /// A fresh recorder-unique span id (never 0).
    fn next_span_id(&self) -> u64;

    /// Accept one finished span.
    fn record_span(&self, span: SpanRecord);

    /// The metrics registry, if this recorder keeps one. Metric series are
    /// registered through here at setup; `None` means callers should keep
    /// their plain internal counters and register nothing.
    fn registry(&self) -> Option<&Registry>;

    /// The continuous telemetry plane, if this recorder carries one.
    /// `None` (the default) means no windowed series, no flight recorder:
    /// scrape requests answer with a minimal `enabled:false` payload and
    /// the agent's quiescent-point sampling hook is a no-op.
    fn telemetry(&self) -> Option<&TelemetryPlane> {
        None
    }
}

/// The zero-cost default: drops everything, owns nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn next_span_id(&self) -> u64 {
        0
    }

    #[inline]
    fn record_span(&self, _span: SpanRecord) {}

    #[inline]
    fn registry(&self) -> Option<&Registry> {
        None
    }
}

/// An in-memory recorder: spans in a mutex-guarded vector (amortized one
/// push per span), metrics in a [`Registry`]. Shared across sites via
/// `Arc`, drained once at the end of a run.
#[derive(Debug, Default)]
pub struct MemRecorder {
    next_id: AtomicU64,
    spans: Mutex<Vec<SpanRecord>>,
    registry: Registry,
}

impl MemRecorder {
    pub fn new() -> Arc<MemRecorder> {
        Arc::new(MemRecorder::default())
    }

    /// A copy of all spans recorded so far, in record order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().unwrap().clone()
    }

    /// Drains recorded spans, leaving the recorder empty.
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.spans.lock().unwrap())
    }

    pub fn metrics(&self) -> &Registry {
        &self.registry
    }
}

impl Recorder for MemRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn record_span(&self, span: SpanRecord) {
        self.spans.lock().unwrap().push(span);
    }

    fn registry(&self) -> Option<&Registry> {
        Some(&self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Link, SpanKind};

    #[test]
    fn noop_is_disabled_and_idless() {
        let r = NoopRecorder;
        assert!(!r.enabled());
        assert_eq!(r.next_span_id(), 0);
        assert!(r.registry().is_none());
    }

    #[test]
    fn mem_recorder_assigns_unique_nonzero_ids() {
        let r = MemRecorder::new();
        let a = r.next_span_id();
        let b = r.next_span_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn mem_recorder_stores_and_drains() {
        let r = MemRecorder::new();
        let id = r.next_span_id();
        r.record_span(SpanRecord::new(
            id,
            Link::Root { endpoint: 1, qid: 1 },
            1,
            SpanKind::UserQuery,
            0.0,
        ));
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.take_spans().len(), 1);
        assert!(r.spans().is_empty());
    }

    #[test]
    fn mem_recorder_is_shareable_across_threads() {
        let r = MemRecorder::new();
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let rc = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    let id = rc.next_span_id();
                    rc.record_span(SpanRecord::new(
                        id,
                        Link::Root { endpoint: t as u64, qid: id },
                        t,
                        SpanKind::UserQuery,
                        0.0,
                    ));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let spans = r.spans();
        assert_eq!(spans.len(), 400);
        let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400, "span ids must be unique");
    }
}
