//! The span model: one causally-linked record per unit of query work.
//!
//! A *span* is the atom of a distributed query trace. Every site-side
//! action taken on behalf of a user query — arrival, QEG execution pass,
//! outbound ask, retry, sub-answer merge, finalize, ownership-migration
//! hop — records exactly one span. Spans are causally parented through
//! [`Link`]: the resulting forest has one tree per user query (plus one
//! per ownership transfer), assembled by [`crate::explain`].
//!
//! The same shapes are recorded by the discrete-event simulator (virtual
//! time) and the live cluster (wall time); only the clock differs. That is
//! the point: the DES stays the *oracle for trace structure*, so a live
//! trace can be validated against a DES trace of the same workload by
//! comparing structure digests (see [`crate::explain::structure_digest`]).

/// What kind of work a span covers. Ordered so canonical child sorting is
/// stable and meaningful (arrival → execution → asks → answers → finalize).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// A user query arriving at a site (client → site hop).
    UserQuery,
    /// A user query forwarded to the owning site after a migration.
    Forward,
    /// A sub-query arriving at a remote site (site → site hop).
    SubQuery,
    /// One QEG pass: compile/execute/gather phases, cache outcome.
    Execute,
    /// An outbound ask to a remote owner (one logical sub-query sent).
    Ask,
    /// A timed-out ask being resent.
    Retry,
    /// A sub-answer arriving back at the asking site (merge into QEG).
    SubAnswer,
    /// Final answer assembly and reply (to the user or the asking site).
    Finalize,
    /// Ownership migration: the delegating site handing a subtree off.
    MigrateOut,
    /// Ownership migration: the receiving site absorbing the subtree.
    MigrateIn,
    /// Ownership migration: the delegator demoting itself on ack.
    MigrateAck,
}

impl SpanKind {
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::UserQuery => "user-query",
            SpanKind::Forward => "forward",
            SpanKind::SubQuery => "sub-query",
            SpanKind::Execute => "execute",
            SpanKind::Ask => "ask",
            SpanKind::Retry => "retry",
            SpanKind::SubAnswer => "sub-answer",
            SpanKind::Finalize => "finalize",
            SpanKind::MigrateOut => "migrate-out",
            SpanKind::MigrateIn => "migrate-in",
            SpanKind::MigrateAck => "migrate-ack",
        }
    }

    pub fn parse(s: &str) -> Option<SpanKind> {
        Some(match s {
            "user-query" => SpanKind::UserQuery,
            "forward" => SpanKind::Forward,
            "sub-query" => SpanKind::SubQuery,
            "execute" => SpanKind::Execute,
            "ask" => SpanKind::Ask,
            "retry" => SpanKind::Retry,
            "sub-answer" => SpanKind::SubAnswer,
            "finalize" => SpanKind::Finalize,
            "migrate-out" => SpanKind::MigrateOut,
            "migrate-in" => SpanKind::MigrateIn,
            "migrate-ack" => SpanKind::MigrateAck,
            _ => return None,
        })
    }
}

/// How a query's cached view answered one QEG pass (paper §3.2).
///
/// Derived from the *first* execution pass of a query at a site: no fresh
/// asks means the cache covered the whole query (`Hit`); an ask at or above
/// the query's LCA means the cache contributed nothing (`Miss`); asks
/// strictly below the LCA mean the cached skeleton answered part of the
/// query and only sub-regions were fetched (`PartialMatch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheOutcome {
    Hit,
    PartialMatch,
    Miss,
}

impl CacheOutcome {
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::PartialMatch => "partial-match",
            CacheOutcome::Miss => "miss",
        }
    }

    pub fn parse(s: &str) -> Option<CacheOutcome> {
        Some(match s {
            "hit" => CacheOutcome::Hit,
            "partial-match" => CacheOutcome::PartialMatch,
            "miss" => CacheOutcome::Miss,
            _ => return None,
        })
    }
}

/// Causal parentage. Cross-site edges carry no new wire fields: the asking
/// site's sub-query id already travels inside `SubQuery`/`SubAnswer`
/// messages, so a remote span links back via `(asker, sub_qid)` and the
/// assembler stitches the edge at explain time.
#[derive(Debug, Clone, PartialEq)]
pub enum Link {
    /// A trace root: the arrival of user query `qid` from `endpoint`.
    /// If several spans claim the same root key (a forwarded query, or a
    /// fault-duplicated delivery), the earliest is the root and later ones
    /// chain beneath it.
    Root { endpoint: u64, qid: u64 },
    /// Same-site parent, by span id.
    ChildOf { parent: u64 },
    /// Cross-site parent: the `Ask` span at site `asker` whose correlation
    /// id is `sub_qid`.
    Ask { asker: u32, sub_qid: u64 },
    /// An ownership-transfer trace, keyed by the migrating subtree's path.
    /// The `MigrateOut` span roots it; `MigrateIn`/`MigrateAck` chain on.
    Transfer { path: String },
}

/// QEG phase timings for one span, in seconds of the recording substrate's
/// clock. Zero when a phase did not run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Phases {
    /// Query-evaluation-graph construction (plan compile / skeleton fetch).
    pub compile: f64,
    /// XPath execution against the site database.
    pub execute: f64,
    /// Fragment extraction and answer serialization.
    pub gather: f64,
    /// Merging a remote fragment into the waiting QEG.
    pub merge: f64,
}

impl Phases {
    pub fn is_zero(&self) -> bool {
        self.compile == 0.0 && self.execute == 0.0 && self.gather == 0.0 && self.merge == 0.0
    }

    pub fn total(&self) -> f64 {
        self.compile + self.execute + self.gather + self.merge
    }

    pub fn add(&mut self, other: &Phases) {
        self.compile += other.compile;
        self.execute += other.execute;
        self.gather += other.gather;
        self.merge += other.merge;
    }
}

/// One recorded span. Identical shape in both substrates; `t0`/`dur`/
/// `queue_wait` are virtual seconds under the DES and wall seconds live.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Recorder-unique id (never 0; 0 is the "no parent" sentinel).
    pub id: u64,
    pub link: Link,
    /// Site that recorded the span.
    pub site: u32,
    pub kind: SpanKind,
    /// Start time (seconds on the recording substrate's clock).
    pub t0: f64,
    /// Duration of the work the span covers (seconds; 0 for point events).
    pub dur: f64,
    /// Time the triggering message spent queued before service began.
    pub queue_wait: f64,
    /// Correlation id: on `Ask`/`Retry` spans, the sub-query id the remote
    /// site will echo back; on `Finalize` spans, the number of partial
    /// stubs patched into the answer. 0 otherwise.
    pub corr: u64,
    /// Destination site for `Ask`/`Retry`/`Forward`/`MigrateOut` (0 = none).
    pub target: u32,
    /// Cache outcome, set on the first `Execute` span of a query at a site.
    pub cache: Option<CacheOutcome>,
    /// True when the span's answer was degraded (partial stub present).
    pub partial: bool,
    pub phases: Phases,
    /// Human-oriented context: query text class, ask path + kind, iteration
    /// number. Stable across substrates (no clocks, no ids).
    pub detail: String,
}

impl SpanRecord {
    /// A span with all optional fields zeroed; callers fill what applies.
    pub fn new(id: u64, link: Link, site: u32, kind: SpanKind, t0: f64) -> SpanRecord {
        SpanRecord {
            id,
            link,
            site,
            kind,
            t0,
            dur: 0.0,
            queue_wait: 0.0,
            corr: 0,
            target: 0,
            cache: None,
            partial: false,
            phases: Phases::default(),
            detail: String::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip() {
        for k in [
            SpanKind::UserQuery,
            SpanKind::Forward,
            SpanKind::SubQuery,
            SpanKind::Execute,
            SpanKind::Ask,
            SpanKind::Retry,
            SpanKind::SubAnswer,
            SpanKind::Finalize,
            SpanKind::MigrateOut,
            SpanKind::MigrateIn,
            SpanKind::MigrateAck,
        ] {
            assert_eq!(SpanKind::parse(k.label()), Some(k));
        }
        assert_eq!(SpanKind::parse("nope"), None);
    }

    #[test]
    fn cache_labels_round_trip() {
        for c in [CacheOutcome::Hit, CacheOutcome::PartialMatch, CacheOutcome::Miss] {
            assert_eq!(CacheOutcome::parse(c.label()), Some(c));
        }
    }

    #[test]
    fn phases_arithmetic() {
        let mut a = Phases { compile: 1.0, execute: 2.0, gather: 3.0, merge: 0.5 };
        assert!(!a.is_zero());
        assert_eq!(a.total(), 6.5);
        a.add(&Phases { compile: 0.5, ..Phases::default() });
        assert_eq!(a.compile, 1.5);
        assert!(Phases::default().is_zero());
    }
}
