//! Exact sample quantiles by linear interpolation.
//!
//! This is the R-7 / NumPy-default estimator: rank `(n-1)·q` interpolated
//! between the two bracketing order statistics. The previous nearest-rank
//! `round()` variant had two visible biases for the sample sizes our
//! experiments produce: p99 collapsed onto the max for anything under ~50
//! samples (rank rounds up to n-1), and p50 of an even-count sample picked
//! one of the two middle elements instead of their midpoint.

/// Latency percentile summary of one arm of an experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub mean: f64,
    pub count: usize,
}

/// The `q`-quantile (`0.0..=1.0`) of an ascending-sorted slice, linearly
/// interpolated between bracketing order statistics. 0 for an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let rank = (n - 1) as f64 * q.clamp(0.0, 1.0);
            let lo = rank.floor() as usize;
            let frac = rank - lo as f64;
            if frac == 0.0 || lo + 1 >= n {
                sorted[lo]
            } else {
                sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
            }
        }
    }
}

/// Sorts a copy of `samples` and summarizes p50/p90/p99/mean.
pub fn latency_percentiles(samples: &[f64]) -> Percentiles {
    if samples.is_empty() {
        return Percentiles { p50: 0.0, p90: 0.0, p99: 0.0, mean: 0.0, count: 0 };
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Percentiles {
        p50: quantile_sorted(&sorted, 0.50),
        p90: quantile_sorted(&sorted, 0.90),
        p99: quantile_sorted(&sorted, 0.99),
        mean: samples.iter().sum::<f64>() / samples.len() as f64,
        count: samples.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quantiles_of_a_ramp() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = latency_percentiles(&v);
        assert_eq!(p.count, 100);
        assert!((p.p50 - 50.5).abs() < 1e-12, "p50 {}", p.p50);
        assert!((p.p90 - 90.1).abs() < 1e-12, "p90 {}", p.p90);
        assert!((p.p99 - 99.01).abs() < 1e-12, "p99 {}", p.p99);
        assert!((p.mean - 50.5).abs() < 1e-12);
    }

    #[test]
    fn even_count_median_is_the_midpoint() {
        // The old nearest-rank estimator returned 3.0 here.
        assert_eq!(latency_percentiles(&[1.0, 2.0, 3.0, 4.0]).p50, 2.5);
        assert_eq!(latency_percentiles(&[1.0, 2.0]).p50, 1.5);
    }

    #[test]
    fn p99_does_not_collapse_onto_max_for_small_samples() {
        // 10 samples: nearest-rank rounds rank 8.91 up to 9 (= max, 10.0);
        // interpolation gives 9 + 0.91 = 9.91.
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let p99 = latency_percentiles(&v).p99;
        assert!((p99 - 9.91).abs() < 1e-12, "p99 {p99}");
        assert!(p99 < 10.0);
    }

    #[test]
    fn odd_count_median_is_exact() {
        assert_eq!(latency_percentiles(&[3.0, 1.0, 2.0]).p50, 2.0);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = latency_percentiles(&[]);
        assert_eq!((empty.p50, empty.p99, empty.mean, empty.count), (0.0, 0.0, 0.0, 0));
        let one = latency_percentiles(&[7.5]);
        assert_eq!((one.p50, one.p90, one.p99, one.count), (7.5, 7.5, 7.5, 1));
    }

    #[test]
    fn r7_interpolation_matches_hand_computed_values() {
        // Irregularly spaced samples, exact R-7 values worked by hand:
        // h = (n-1)·q, result = x[⌊h⌋] + (h-⌊h⌋)·(x[⌊h⌋+1]-x[⌊h⌋]).
        let v = [0.1, 0.2, 0.4, 0.8, 1.6];
        // q=0.25: h=1.0 exactly → x[1] = 0.2
        assert_eq!(quantile_sorted(&v, 0.25), 0.2);
        // q=0.30: h=1.2 → 0.2 + 0.2·(0.4-0.2) = 0.24
        assert!((quantile_sorted(&v, 0.30) - 0.24).abs() < 1e-12);
        // q=0.625: h=2.5 → 0.4 + 0.5·(0.8-0.4) = 0.6
        assert!((quantile_sorted(&v, 0.625) - 0.6).abs() < 1e-12);
        // q=0.9: h=3.6 → 0.8 + 0.6·(1.6-0.8) = 1.28
        assert!((quantile_sorted(&v, 0.9) - 1.28).abs() < 1e-12);
        // Sub-millisecond magnitudes interpolate just as exactly — this is
        // the reference the histogram's 1.25×-bounded estimate is judged
        // against on fast paths.
        let fast = [1e-4, 2e-4, 3e-4, 4e-4];
        // q=0.5: h=1.5 → 2e-4 + 0.5·1e-4 = 2.5e-4
        assert!((quantile_sorted(&fast, 0.5) - 2.5e-4).abs() < 1e-18);
        let h = crate::metrics::Histogram::new();
        for s in fast {
            h.observe(s);
        }
        // The histogram estimator is nearest-rank (the ⌈q·n⌉-th sample,
        // here 2e-4) bounded above by its bucket edge; the sub-bucket
        // scheme keeps that bound within 1.25× even at these magnitudes.
        let est = h.quantile(0.5);
        assert!(est > 2e-4 && est <= 2e-4 * 1.25, "hist p50 {est}");
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let v: Vec<f64> = (0..37).map(|i| (i as f64 * 17.0) % 37.0).collect();
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for i in 0..=100 {
            let q = quantile_sorted(&sorted, i as f64 / 100.0);
            assert!(q >= last, "quantile not monotone at {i}");
            last = q;
        }
        assert_eq!(quantile_sorted(&sorted, 0.0), sorted[0]);
        assert_eq!(quantile_sorted(&sorted, 1.0), *sorted.last().unwrap());
    }
}
