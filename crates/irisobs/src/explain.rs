//! Trace assembly, structural invariants, and the `query explain` report.
//!
//! Spans arrive as a flat stream (possibly from a JSONL dump); this module
//! stitches them into per-query trees, checks the well-formedness
//! invariants the proptest suite enforces across chaos seeds, and renders
//! two views: a human-oriented explain report (sites touched, hops, cache
//! outcomes per §3.2, consistency rejections per §3.3, retries, partial
//! stubs, QEG phase timings) and a *structure digest* — a timing- and
//! id-free canonical rendering that must be byte-identical between a DES
//! run and a live run of the same workload.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;

use crate::span::{CacheOutcome, Link, Phases, SpanKind, SpanRecord};

/// Clock slack for the parent-precedes-child check: live timestamps are
/// captured outside any lock, so an exactly-equal or epsilon-reversed pair
/// on one site is legal; a *materially* earlier child is not.
const CAUSAL_EPS: f64 = 1e-9;

#[derive(Debug, Clone)]
pub struct TraceNode {
    pub span: SpanRecord,
    /// Child indices into the owning tree's `nodes`, in record order.
    pub children: Vec<usize>,
}

/// One assembled trace tree; the root is `nodes[0]`.
#[derive(Debug, Clone)]
pub struct TraceTree {
    pub nodes: Vec<TraceNode>,
}

impl TraceTree {
    pub fn root(&self) -> &TraceNode {
        &self.nodes[0]
    }

    /// The `(endpoint, qid)` key if this is a query tree.
    pub fn query_key(&self) -> Option<(u64, u64)> {
        match self.root().span.link {
            Link::Root { endpoint, qid } => Some((endpoint, qid)),
            _ => None,
        }
    }
}

/// All trees assembled from a span stream: one per user query, one per
/// ownership transfer.
#[derive(Debug, Clone, Default)]
pub struct Forest {
    pub queries: Vec<TraceTree>,
    pub transfers: Vec<TraceTree>,
}

/// Stitches a flat span stream into trees.
///
/// Spans are consumed in *record order*: the recorder serializes appends,
/// and every causal edge is recorded cause-first (the ask span before the
/// remote sub-query span it triggers), so a parent that hasn't appeared by
/// the time its child does is a genuine orphan, not an ordering artifact.
/// Timestamps are checked separately by [`check_well_formed`].
///
/// Parent resolution:
/// - `Root{ep,qid}`: the first span for a key roots a query tree; later
///   spans claiming the same key (forward hop, fault-duplicated delivery)
///   chain beneath the previous claimant.
/// - `ChildOf{parent}`: same-site edge by span id.
/// - `Ask{asker, sub_qid}`: cross-site edge to the `Ask`-kind span at
///   `asker` whose correlation id is `sub_qid`.
/// - `Transfer{path}`: a `MigrateOut` roots a transfer tree; subsequent
///   spans for the path chain beneath the latest span on that path.
///
/// Errors on any span whose parent cannot be resolved (an orphan) and on
/// duplicate span ids — these are the invariants; [`check_well_formed`]
/// adds the ordering checks on top.
pub fn assemble(spans: &[SpanRecord]) -> Result<Forest, String> {
    let mut id_map: HashMap<u64, usize> = HashMap::with_capacity(spans.len());
    let mut ask_map: HashMap<(u32, u64), usize> = HashMap::new();
    let mut root_last: HashMap<(u64, u64), usize> = HashMap::new();
    let mut xfer_last: HashMap<&str, usize> = HashMap::new();
    // parent[i] = global index of parent, or usize::MAX for a root.
    let mut parent = vec![usize::MAX; spans.len()];
    let mut roots: Vec<usize> = Vec::new();

    for (i, s) in spans.iter().enumerate() {
        if s.id == 0 || id_map.insert(s.id, i).is_some() {
            return Err(format!("duplicate or zero span id {}", s.id));
        }
        match &s.link {
            Link::Root { endpoint, qid } => match root_last.get(&(*endpoint, *qid)) {
                Some(&prev) => {
                    parent[i] = prev;
                    root_last.insert((*endpoint, *qid), i);
                }
                None => {
                    roots.push(i);
                    root_last.insert((*endpoint, *qid), i);
                }
            },
            Link::ChildOf { parent: pid } => match id_map.get(pid) {
                Some(&p) => parent[i] = p,
                None => {
                    return Err(format!(
                        "orphan span {}: ChildOf({pid}) not yet recorded",
                        s.id
                    ))
                }
            },
            Link::Ask { asker, sub_qid } => match ask_map.get(&(*asker, *sub_qid)) {
                Some(&p) => parent[i] = p,
                None => {
                    return Err(format!(
                        "orphan span {}: no Ask span at site {asker} with sub_qid {sub_qid}",
                        s.id
                    ))
                }
            },
            Link::Transfer { path } => match xfer_last.get(path.as_str()) {
                Some(&prev) => {
                    parent[i] = prev;
                    xfer_last.insert(path, i);
                }
                None if s.kind == SpanKind::MigrateOut => {
                    roots.push(i);
                    xfer_last.insert(path, i);
                }
                None => {
                    return Err(format!(
                        "orphan span {}: transfer {path:?} has no MigrateOut root",
                        s.id
                    ))
                }
            },
        }
        if s.kind == SpanKind::Ask && s.corr != 0 {
            ask_map.insert((s.site, s.corr), i);
        }
    }

    // Children in record order.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    for (i, &p) in parent.iter().enumerate() {
        if p != usize::MAX {
            children[p].push(i);
        }
    }

    let mut forest = Forest::default();
    for &r in &roots {
        let mut tree = TraceTree { nodes: Vec::new() };
        copy_subtree(spans, &children, r, &mut tree);
        match tree.root().span.link {
            Link::Root { .. } => forest.queries.push(tree),
            _ => forest.transfers.push(tree),
        }
    }
    Ok(forest)
}

fn copy_subtree(
    spans: &[SpanRecord],
    children: &[Vec<usize>],
    global: usize,
    tree: &mut TraceTree,
) -> usize {
    let local = tree.nodes.len();
    tree.nodes.push(TraceNode { span: spans[global].clone(), children: Vec::new() });
    for &c in &children[global] {
        let cl = copy_subtree(spans, children, c, tree);
        tree.nodes[local].children.push(cl);
    }
    local
}

/// Assembles and enforces the structural invariants on a span stream:
/// unique ids, no orphans, exactly one tree per `(endpoint, qid)`, every
/// query root is an arrival span, and every parent causally precedes its
/// children (within clock slack). Returns the forest on success.
pub fn check_well_formed(spans: &[SpanRecord]) -> Result<Forest, String> {
    let forest = assemble(spans)?;
    let mut seen_keys: BTreeSet<(u64, u64)> = BTreeSet::new();
    for tree in &forest.queries {
        let key = tree.query_key().expect("query tree roots have Root links");
        if !seen_keys.insert(key) {
            return Err(format!("query {key:?} has more than one root tree"));
        }
        let root_kind = tree.root().span.kind;
        if !matches!(root_kind, SpanKind::UserQuery | SpanKind::Forward) {
            return Err(format!(
                "query {key:?} root is a {} span, not an arrival",
                root_kind.label()
            ));
        }
    }
    for tree in forest.queries.iter().chain(forest.transfers.iter()) {
        for node in &tree.nodes {
            for &c in &node.children {
                let child = &tree.nodes[c].span;
                if child.t0 + CAUSAL_EPS < node.span.t0 {
                    return Err(format!(
                        "span {} (t0={}) precedes its parent {} (t0={})",
                        child.id, child.t0, node.span.id, node.span.t0
                    ));
                }
            }
        }
    }
    Ok(forest)
}

/// Per-site cache outcome tallies for one query (paper §3.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    pub hits: u64,
    pub partial_matches: u64,
    pub misses: u64,
}

/// The `query explain` summary of one assembled query tree.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    pub endpoint: u64,
    pub qid: u64,
    /// Every site that recorded work for this query.
    pub sites: BTreeSet<u32>,
    /// Message deliveries recorded in the trace (user query arrival,
    /// forwards, sub-query and sub-answer deliveries). Fault-free this is
    /// the paper's messages-per-query, minus the final user reply.
    pub hops: u64,
    /// Span tallies by kind.
    pub span_counts: BTreeMap<SpanKind, u64>,
    /// First-pass cache outcome tallies per site.
    pub cache: BTreeMap<u32, CacheCounts>,
    /// Stale-skeleton re-asks (§3.3 consistency rejections).
    pub consistency_rejections: u64,
    pub retries: u64,
    /// Unreachable-owner stubs patched into the final answer.
    pub partial_stubs: u64,
    /// Summed QEG phase timings per site.
    pub phases: BTreeMap<u32, Phases>,
}

/// Summarizes one query tree.
pub fn explain_tree(tree: &TraceTree) -> ExplainReport {
    let (endpoint, qid) = tree.query_key().unwrap_or((0, 0));
    let mut r = ExplainReport {
        endpoint,
        qid,
        sites: BTreeSet::new(),
        hops: 0,
        span_counts: BTreeMap::new(),
        cache: BTreeMap::new(),
        consistency_rejections: 0,
        retries: 0,
        partial_stubs: 0,
        phases: BTreeMap::new(),
    };
    for node in &tree.nodes {
        let s = &node.span;
        r.sites.insert(s.site);
        *r.span_counts.entry(s.kind).or_insert(0) += 1;
        if matches!(
            s.kind,
            SpanKind::UserQuery | SpanKind::Forward | SpanKind::SubQuery | SpanKind::SubAnswer
        ) {
            r.hops += 1;
        }
        if let Some(outcome) = s.cache {
            let c = r.cache.entry(s.site).or_default();
            match outcome {
                CacheOutcome::Hit => c.hits += 1,
                CacheOutcome::PartialMatch => c.partial_matches += 1,
                CacheOutcome::Miss => c.misses += 1,
            }
        }
        if s.kind == SpanKind::Ask && s.detail.contains("kind=stale") {
            r.consistency_rejections += 1;
        }
        if s.kind == SpanKind::Retry {
            r.retries += 1;
        }
        if s.kind == SpanKind::Finalize {
            r.partial_stubs += s.corr;
        }
        if !s.phases.is_zero() {
            r.phases.entry(s.site).or_default().add(&s.phases);
        }
    }
    r
}

/// Canonical, timing-free rendering of a trace tree. Two runs of the same
/// workload — DES virtual time vs. live wall time — must produce
/// byte-identical digests per query; everything clock- or id-dependent is
/// excluded, and sibling order is canonicalized by `(kind, site, target,
/// detail)` because concurrent sub-answers may arrive in either order on
/// the live substrate.
pub fn structure_digest(tree: &TraceTree) -> String {
    let mut out = String::new();
    digest_node(tree, 0, 0, &mut out);
    out
}

fn digest_node(tree: &TraceTree, idx: usize, depth: usize, out: &mut String) {
    let s = &tree.nodes[idx].span;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(out, "{}@s{}", s.kind.label(), s.site);
    if s.target != 0 {
        let _ = write!(out, "->s{}", s.target);
    }
    if let Some(c) = s.cache {
        let _ = write!(out, " cache={}", c.label());
    }
    if s.partial {
        out.push_str(" partial");
    }
    if !s.detail.is_empty() {
        let _ = write!(out, " {}", s.detail);
    }
    out.push('\n');
    let mut kids = tree.nodes[idx].children.clone();
    kids.sort_by(|&a, &b| {
        let (x, y) = (&tree.nodes[a].span, &tree.nodes[b].span);
        (x.kind, x.site, x.target, &x.detail).cmp(&(y.kind, y.site, y.target, &y.detail))
    });
    for c in kids {
        digest_node(tree, c, depth + 1, out);
    }
}

/// The full human-oriented `query explain` rendering: summary header, then
/// the span tree with timings.
pub fn render_explain(tree: &TraceTree) -> String {
    let r = explain_tree(tree);
    let mut out = String::new();
    let _ = writeln!(out, "query qid={} endpoint={}", r.qid, r.endpoint);
    let sites: Vec<String> = r.sites.iter().map(|s| format!("s{s}")).collect();
    let _ = writeln!(
        out,
        "  sites: {{{}}}  hops: {}  retries: {}  stale-reasks: {}  partial-stubs: {}",
        sites.join(","),
        r.hops,
        r.retries,
        r.consistency_rejections,
        r.partial_stubs
    );
    for (site, c) in &r.cache {
        let _ = writeln!(
            out,
            "  cache s{site}: hit={} partial-match={} miss={}",
            c.hits, c.partial_matches, c.misses
        );
    }
    for (site, p) in &r.phases {
        let _ = writeln!(
            out,
            "  phases s{site}: compile={:.6} execute={:.6} gather={:.6} merge={:.6}",
            p.compile, p.execute, p.gather, p.merge
        );
    }
    out.push_str("  --- span tree ---\n");
    render_node(tree, 0, 1, &mut out);
    out
}

fn render_node(tree: &TraceTree, idx: usize, depth: usize, out: &mut String) {
    let s = &tree.nodes[idx].span;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let _ = write!(
        out,
        "[{}] {}@s{} t0={:.6} dur={:.6}",
        s.id,
        s.kind.label(),
        s.site,
        s.t0,
        s.dur
    );
    if s.queue_wait > 0.0 {
        let _ = write!(out, " qwait={:.6}", s.queue_wait);
    }
    if s.target != 0 {
        let _ = write!(out, " -> s{}", s.target);
    }
    if let Some(c) = s.cache {
        let _ = write!(out, " cache={}", c.label());
    }
    if s.partial {
        out.push_str(" partial");
    }
    if !s.detail.is_empty() {
        let _ = write!(out, " {}", s.detail);
    }
    out.push('\n');
    for &c in &tree.nodes[idx].children {
        render_node(tree, c, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Link;

    fn span(id: u64, link: Link, site: u32, kind: SpanKind, t0: f64) -> SpanRecord {
        SpanRecord::new(id, link, site, kind, t0)
    }

    /// root(user-query s1) -> execute, ask->s2; remote sub-query s2 links
    /// via (asker=1, sub_qid=42); sub-answer chains under the ask span.
    fn two_site_trace() -> Vec<SpanRecord> {
        let mut ask = span(3, Link::ChildOf { parent: 1 }, 1, SpanKind::Ask, 0.2);
        ask.corr = 42;
        ask.target = 2;
        ask.detail = "path=/r/a kind=query".into();
        let mut exec = span(2, Link::ChildOf { parent: 1 }, 1, SpanKind::Execute, 0.1);
        exec.cache = Some(CacheOutcome::PartialMatch);
        exec.phases = Phases { compile: 0.01, execute: 0.02, gather: 0.0, merge: 0.0 };
        vec![
            span(1, Link::Root { endpoint: 9, qid: 5 }, 1, SpanKind::UserQuery, 0.0),
            exec,
            ask,
            span(4, Link::Ask { asker: 1, sub_qid: 42 }, 2, SpanKind::SubQuery, 0.5),
            span(5, Link::Ask { asker: 1, sub_qid: 42 }, 1, SpanKind::SubAnswer, 0.9),
            span(6, Link::ChildOf { parent: 1 }, 1, SpanKind::Finalize, 1.0),
        ]
    }

    #[test]
    fn assembles_cross_site_edges() {
        let forest = check_well_formed(&two_site_trace()).unwrap();
        assert_eq!(forest.queries.len(), 1);
        assert!(forest.transfers.is_empty());
        let tree = &forest.queries[0];
        assert_eq!(tree.nodes.len(), 6);
        assert_eq!(tree.root().span.id, 1);
        // The ask span has two children: remote sub-query + local sub-answer.
        let ask = tree.nodes.iter().find(|n| n.span.kind == SpanKind::Ask).unwrap();
        assert_eq!(ask.children.len(), 2);
    }

    #[test]
    fn explain_summarizes() {
        let forest = check_well_formed(&two_site_trace()).unwrap();
        let r = explain_tree(&forest.queries[0]);
        assert_eq!((r.endpoint, r.qid), (9, 5));
        assert_eq!(r.sites, BTreeSet::from([1, 2]));
        assert_eq!(r.hops, 3); // user-query + sub-query + sub-answer
        assert_eq!(r.cache[&1].partial_matches, 1);
        assert_eq!(r.retries, 0);
        assert_eq!(r.consistency_rejections, 0);
        assert!((r.phases[&1].compile - 0.01).abs() < 1e-12);
    }

    #[test]
    fn digest_is_timing_free_and_sibling_order_free() {
        let a = two_site_trace();
        let mut b = a.clone();
        // Perturb every timestamp (same order) and swap record order of the
        // execute/ask siblings: digest must not change.
        for s in &mut b {
            s.t0 = s.t0 * 3.0 + 1.0;
            s.dur += 0.25;
            s.queue_wait += 0.1;
        }
        b.swap(1, 2);
        let da = structure_digest(&check_well_formed(&a).unwrap().queries[0]);
        let db = structure_digest(&check_well_formed(&b).unwrap().queries[0]);
        assert_eq!(da, db);
        assert!(!da.contains("t0"), "digest must not embed timings: {da}");
        assert!(da.contains("ask@s1->s2"));
    }

    #[test]
    fn orphan_child_is_rejected() {
        let spans = vec![span(1, Link::ChildOf { parent: 99 }, 1, SpanKind::Execute, 0.0)];
        let err = check_well_formed(&spans).unwrap_err();
        assert!(err.contains("orphan"), "{err}");
    }

    #[test]
    fn orphan_ask_link_is_rejected() {
        let spans = vec![
            span(1, Link::Root { endpoint: 1, qid: 1 }, 1, SpanKind::UserQuery, 0.0),
            span(2, Link::Ask { asker: 1, sub_qid: 7 }, 2, SpanKind::SubQuery, 0.1),
        ];
        assert!(check_well_formed(&spans).unwrap_err().contains("orphan"));
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let spans = vec![
            span(1, Link::Root { endpoint: 1, qid: 1 }, 1, SpanKind::UserQuery, 0.0),
            span(1, Link::ChildOf { parent: 1 }, 1, SpanKind::Execute, 0.1),
        ];
        assert!(check_well_formed(&spans).unwrap_err().contains("duplicate"));
    }

    #[test]
    fn duplicate_root_claims_chain_not_fork() {
        // A fault-duplicated user-query delivery: second Root claimant
        // chains under the first instead of forking a second tree.
        let spans = vec![
            span(1, Link::Root { endpoint: 4, qid: 2 }, 1, SpanKind::UserQuery, 0.0),
            span(2, Link::Root { endpoint: 4, qid: 2 }, 1, SpanKind::UserQuery, 0.3),
        ];
        let forest = check_well_formed(&spans).unwrap();
        assert_eq!(forest.queries.len(), 1);
        assert_eq!(forest.queries[0].nodes.len(), 2);
    }

    #[test]
    fn child_before_parent_is_rejected() {
        let spans = vec![
            span(1, Link::Root { endpoint: 1, qid: 1 }, 1, SpanKind::UserQuery, 5.0),
            span(2, Link::ChildOf { parent: 1 }, 1, SpanKind::Execute, 1.0),
        ];
        assert!(check_well_formed(&spans).unwrap_err().contains("precedes"));
    }

    #[test]
    fn transfer_trees_assemble_separately() {
        let mut out = span(1, Link::Transfer { path: "/r/n".into() }, 1, SpanKind::MigrateOut, 0.0);
        out.target = 2;
        let spans = vec![
            out,
            span(2, Link::Transfer { path: "/r/n".into() }, 2, SpanKind::MigrateIn, 0.4),
            span(3, Link::Transfer { path: "/r/n".into() }, 1, SpanKind::MigrateAck, 0.8),
        ];
        let forest = check_well_formed(&spans).unwrap();
        assert!(forest.queries.is_empty());
        assert_eq!(forest.transfers.len(), 1);
        assert_eq!(forest.transfers[0].nodes.len(), 3);
        // MigrateIn-without-MigrateOut is an orphan.
        assert!(check_well_formed(&spans[1..]).is_err());
    }

    #[test]
    fn render_explain_mentions_the_essentials() {
        let forest = check_well_formed(&two_site_trace()).unwrap();
        let text = render_explain(&forest.queries[0]);
        assert!(text.contains("sites: {s1,s2}"));
        assert!(text.contains("cache s1: hit=0 partial-match=1 miss=0"));
        assert!(text.contains("phases s1:"));
        assert!(text.contains("user-query@s1"));
    }
}
