//! JSONL export and re-import of traces and metrics.
//!
//! One flat JSON object per line, `"type"` discriminated: `span`,
//! `counter`, `hist`. Values are only strings, numbers and booleans —
//! flat on purpose, so the dump stays greppable/`jq`-able and the
//! hand-rolled parser (no serde in this workspace) stays small. Spans
//! round-trip exactly except for float formatting at extreme magnitudes;
//! every field the explain/invariant machinery consumes survives.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::span::{CacheOutcome, Link, Phases, SpanKind, SpanRecord};

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn fmt_f64(v: f64) -> String {
    // Shortest representation that round-trips through f64.
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Encodes one span as a single JSONL line (no trailing newline).
pub fn span_to_jsonl(s: &SpanRecord) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(out, "{{\"type\":\"span\",\"id\":{},", s.id);
    match &s.link {
        Link::Root { endpoint, qid } => {
            let _ = write!(out, "\"link\":\"root\",\"ep\":{endpoint},\"qid\":{qid},");
        }
        Link::ChildOf { parent } => {
            let _ = write!(out, "\"link\":\"child\",\"parent\":{parent},");
        }
        Link::Ask { asker, sub_qid } => {
            let _ = write!(out, "\"link\":\"ask\",\"asker\":{asker},\"sub_qid\":{sub_qid},");
        }
        Link::Transfer { path } => {
            out.push_str("\"link\":\"xfer\",\"path\":");
            push_json_str(&mut out, path);
            out.push(',');
        }
    }
    let _ = write!(
        out,
        "\"site\":{},\"kind\":\"{}\",\"t0\":{},\"dur\":{},\"qwait\":{},\"corr\":{},\"target\":{}",
        s.site,
        s.kind.label(),
        fmt_f64(s.t0),
        fmt_f64(s.dur),
        fmt_f64(s.queue_wait),
        s.corr,
        s.target
    );
    if let Some(c) = s.cache {
        let _ = write!(out, ",\"cache\":\"{}\"", c.label());
    }
    if s.partial {
        out.push_str(",\"partial\":true");
    }
    if !s.phases.is_zero() {
        let _ = write!(
            out,
            ",\"ph_compile\":{},\"ph_execute\":{},\"ph_gather\":{},\"ph_merge\":{}",
            fmt_f64(s.phases.compile),
            fmt_f64(s.phases.execute),
            fmt_f64(s.phases.gather),
            fmt_f64(s.phases.merge)
        );
    }
    if !s.detail.is_empty() {
        out.push_str(",\"detail\":");
        push_json_str(&mut out, &s.detail);
    }
    out.push('}');
    out
}

/// Encodes a metrics snapshot, one line per series.
pub fn metrics_to_jsonl(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for c in &m.counters {
        let _ = write!(out, "{{\"type\":\"counter\",\"site\":{},\"name\":", c.site);
        push_json_str(&mut out, &c.name);
        let _ = writeln!(out, ",\"value\":{}}}", c.value);
    }
    for h in &m.histograms {
        let _ = write!(out, "{{\"type\":\"hist\",\"site\":{},\"name\":", h.site);
        push_json_str(&mut out, &h.name);
        let buckets: Vec<String> =
            h.buckets.iter().map(|(i, c)| format!("{i}:{c}")).collect();
        let _ = write!(
            out,
            ",\"count\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"buckets\":",
            h.count,
            fmt_f64(h.mean),
            fmt_f64(h.p50),
            fmt_f64(h.p99)
        );
        push_json_str(&mut out, &buckets.join(" "));
        let _ = writeln!(out, "}}");
    }
    out
}

/// Full dump: all spans (record order) then all metric series.
pub fn dump_jsonl(spans: &[SpanRecord], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&span_to_jsonl(s));
        out.push('\n');
    }
    out.push_str(&metrics_to_jsonl(metrics));
    out
}

/// A parsed flat-JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum JVal {
    S(String),
    N(f64),
    B(bool),
}

impl JVal {
    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            JVal::N(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    pub(crate) fn as_f64(&self) -> Option<f64> {
        match self {
            JVal::N(n) => Some(*n),
            _ => None,
        }
    }
    pub(crate) fn as_str(&self) -> Option<&str> {
        match self {
            JVal::S(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (string/number/bool values only).
pub(crate) fn parse_flat(line: &str) -> Result<BTreeMap<String, JVal>, String> {
    let mut fields = BTreeMap::new();
    let bytes = line.trim();
    let inner = bytes
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not an object: {line}"))?;
    let mut chars = inner.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        let key = parse_string(&mut chars)?;
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(format!("expected ':' after key {key:?}"));
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek() {
            Some('"') => JVal::S(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let mut word = String::new();
                while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(chars.next().unwrap());
                }
                match word.as_str() {
                    "true" => JVal::B(true),
                    "false" => JVal::B(false),
                    w => return Err(format!("bad literal {w:?}")),
                }
            }
            Some(_) => {
                let mut num = String::new();
                while matches!(chars.peek(),
                    Some(c) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                {
                    num.push(chars.next().unwrap());
                }
                JVal::N(num.parse::<f64>().map_err(|e| format!("bad number {num:?}: {e}"))?)
            }
            None => return Err(format!("missing value for key {key:?}")),
        };
        fields.insert(key, val);
    }
    Ok(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected string".into());
    }
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let cp = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                    out.push(char::from_u32(cp).ok_or("bad codepoint")?);
                }
                e => return Err(format!("bad escape {e:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

/// Parses one `"type":"span"` JSONL line back into a [`SpanRecord`].
pub fn span_from_jsonl(line: &str) -> Result<SpanRecord, String> {
    let f = parse_flat(line)?;
    if f.get("type").and_then(JVal::as_str) != Some("span") {
        return Err(format!("not a span line: {line}"));
    }
    let u = |k: &str| f.get(k).and_then(JVal::as_u64).ok_or(format!("missing/bad {k}"));
    let fl = |k: &str| f.get(k).and_then(JVal::as_f64).ok_or(format!("missing/bad {k}"));
    let link = match f.get("link").and_then(JVal::as_str) {
        Some("root") => Link::Root { endpoint: u("ep")?, qid: u("qid")? },
        Some("child") => Link::ChildOf { parent: u("parent")? },
        Some("ask") => Link::Ask { asker: u("asker")? as u32, sub_qid: u("sub_qid")? },
        Some("xfer") => Link::Transfer {
            path: f.get("path").and_then(JVal::as_str).ok_or("missing path")?.to_string(),
        },
        other => return Err(format!("bad link {other:?}")),
    };
    let kind = f
        .get("kind")
        .and_then(JVal::as_str)
        .and_then(SpanKind::parse)
        .ok_or("missing/bad kind")?;
    let cache = match f.get("cache").and_then(JVal::as_str) {
        Some(s) => Some(CacheOutcome::parse(s).ok_or(format!("bad cache {s:?}"))?),
        None => None,
    };
    Ok(SpanRecord {
        id: u("id")?,
        link,
        site: u("site")? as u32,
        kind,
        t0: fl("t0")?,
        dur: fl("dur")?,
        queue_wait: fl("qwait")?,
        corr: u("corr")?,
        target: u("target")? as u32,
        cache,
        partial: matches!(f.get("partial"), Some(JVal::B(true))),
        phases: Phases {
            compile: f.get("ph_compile").and_then(JVal::as_f64).unwrap_or(0.0),
            execute: f.get("ph_execute").and_then(JVal::as_f64).unwrap_or(0.0),
            gather: f.get("ph_gather").and_then(JVal::as_f64).unwrap_or(0.0),
            merge: f.get("ph_merge").and_then(JVal::as_f64).unwrap_or(0.0),
        },
        detail: f.get("detail").and_then(JVal::as_str).unwrap_or("").to_string(),
    })
}

/// Extracts all span lines from a JSONL dump, ignoring metric lines and
/// blanks. Errors on malformed span lines.
pub fn parse_spans(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut spans = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if t.contains("\"type\":\"span\"") {
            spans.push(span_from_jsonl(t).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                cache: Some(CacheOutcome::PartialMatch),
                partial: true,
                corr: 7,
                target: 2,
                dur: 0.25,
                queue_wait: 0.003,
                phases: Phases { compile: 0.01, execute: 0.2, gather: 0.04, merge: 0.0 },
                detail: "iter=1 \"quoted\"\npath=/a/b".into(),
                ..SpanRecord::new(1, Link::Root { endpoint: 10_000, qid: 3 }, 1,
                                  SpanKind::UserQuery, 12.5)
            },
            SpanRecord::new(2, Link::ChildOf { parent: 1 }, 1, SpanKind::Execute, 12.5),
            SpanRecord::new(3, Link::Ask { asker: 1, sub_qid: 42 }, 2, SpanKind::SubQuery, 13.0),
            SpanRecord::new(4, Link::Transfer { path: "/x/y[1]".into() }, 3,
                            SpanKind::MigrateOut, 99.0),
        ]
    }

    #[test]
    fn spans_round_trip() {
        for s in sample_spans() {
            let line = span_to_jsonl(&s);
            let back = span_from_jsonl(&line).unwrap_or_else(|e| panic!("{e}\n{line}"));
            assert_eq!(back, s, "round trip through {line}");
        }
    }

    #[test]
    fn dump_interleaves_and_parse_recovers_spans_only() {
        let r = Registry::new();
        r.counter(1, "asks").add(5);
        r.histogram(1, "svc\"time").observe(0.25);
        let spans = sample_spans();
        let dump = dump_jsonl(&spans, &r.snapshot());
        assert_eq!(dump.lines().count(), spans.len() + 2);
        let back = parse_spans(&dump).unwrap();
        assert_eq!(back, spans);
    }

    #[test]
    fn malformed_span_line_is_an_error() {
        assert!(span_from_jsonl("{\"type\":\"span\",\"id\":1}").is_err());
        assert!(span_from_jsonl("not json").is_err());
        assert!(span_from_jsonl("{\"type\":\"counter\",\"site\":1}").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd\te\u{1}f");
        let mut chars = s.chars().peekable();
        assert_eq!(parse_string(&mut chars).unwrap(), "a\"b\\c\nd\te\u{1}f");
    }

    #[test]
    fn floats_keep_precision() {
        let mut s = SpanRecord::new(9, Link::ChildOf { parent: 1 }, 1, SpanKind::Finalize, 0.0);
        s.t0 = 1_234.000_000_123;
        s.dur = 1e-9;
        let back = span_from_jsonl(&span_to_jsonl(&s)).unwrap();
        assert_eq!(back.t0, s.t0);
        assert_eq!(back.dur, s.dur);
    }
}
