//! Continuous telemetry plane: windowed series, a tail-sampled flight
//! recorder, and the scrape payload codec.
//!
//! The cumulative plane (counters, histograms, span dumps) answers "how
//! much, ever"; this module answers "how much, *lately*" and "what exactly
//! happened to the query that went wrong" — the two signals closed-loop
//! placement needs (ROADMAP item 5) and the two the paper's Fig. 9
//! load-balancing owner is presumed to have about its own hot fragments.
//!
//! Three cooperating pieces, all owned by a [`TelemetryPlane`] that rides
//! inside a [`TelemetryRecorder`]:
//!
//! * **Windowed aggregation** — a fixed-width ring of time buckets per
//!   counter/histogram series (configurable width × depth, default 5 s ×
//!   24). Sampling is *delta-based*: at each sample point the plane diffs
//!   the cumulative registry values against the previous sample and
//!   credits the delta to the bucket `floor(now / width)`. Buckets are
//!   epoch-aligned absolute indices, so [`WindowDelta`] snapshots from
//!   different sites or different scrapes merge by plain per-bucket
//!   addition — commutative and associative by construction (the proptest
//!   in `tests/telemetry_prop.rs` pins this). Rotated-out buckets fold
//!   into an `evicted` accumulator, so `evicted + Σ buckets` always equals
//!   the cumulative total sampled — nothing is silently lost.
//!   Per-fragment heat series reuse the eviction plane's half-life
//!   discipline: the agent feeds decayed per-unit heat from its
//!   `CacheManager` and the plane re-decays between samples with the same
//!   half-life.
//!
//! * **Flight recorder** — a bounded per-site ring of *complete span
//!   trees*, tail-sampled: every span of an in-flight query is buffered in
//!   its trace group, and only when the trace seals (its user-facing
//!   finalize span arrives) do the trigger predicates decide whether to
//!   retain it: answer latency over threshold, any `partial="true"` span,
//!   any retry, or an error finalize (`SiteDown`). Healthy traces are
//!   dropped wholesale, so post-hoc `explain` works for exactly the
//!   queries that went wrong at a bounded memory cost.
//!
//! * **Health state machine** — per-site Healthy / Degraded / Unreachable,
//!   derived at sample points from the retry, partial-answer and
//!   queue-wait windows. A site never self-reports Unreachable; that edge
//!   is driven by the substrate (site stopped or crashed) or concluded by
//!   a scraper whose probe failed. The current state is surfaced as the
//!   `health.state` gauge (0/1/2) and in every scrape payload.
//!
//! The scrape payload is JSONL — flat, `"type"`-discriminated lines in the
//! same dialect as [`crate::export`], so `jq` and the existing span parser
//! both consume it unchanged. Span lines inside a flight-recorder dump
//! carry an extra `"trace"` field tying them to their `flight_trace` line.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::export::{fmt_f64, parse_flat, push_json_str, span_from_jsonl, span_to_jsonl, JVal};
use crate::metrics::{bucket_upper, Registry};
use crate::recorder::Recorder;
use crate::span::{Link, SpanKind, SpanRecord};

/// Scrape selector: everything.
pub const WHAT_ALL: u8 = 0;
/// Scrape selector: windowed metric series only.
pub const WHAT_METRICS: u8 = 1;
/// Scrape selector: flight-recorder dump only.
pub const WHAT_FLIGHT: u8 = 2;
/// Scrape selector: health line only.
pub const WHAT_HEALTH: u8 = 3;

/// Tuning for the whole plane. Defaults match the ISSUE's example shape
/// (5 s × 24 window) and the eviction plane's 120 s heat half-life.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Width of one window bucket, seconds.
    pub window_width: f64,
    /// Number of buckets retained per series.
    pub window_depth: usize,
    /// Half-life (seconds) for the per-fragment heat series; core feeds
    /// `eviction::HEAT_HALF_LIFE` here so both planes decay identically.
    pub heat_half_life: f64,
    /// Hottest fragments tracked per site (the heat feed is truncated to
    /// this many paths; colder series are displaced).
    pub heat_top: usize,
    /// Flight recorder: max retained traces per site.
    pub flight_max_traces: usize,
    /// Flight recorder: max retained bytes per site (approximate span
    /// footprint, see [`span_bytes`]).
    pub flight_max_bytes: usize,
    /// Flight recorder: max unsealed trace groups buffered at once; the
    /// oldest group is dropped when a new root would exceed this.
    pub flight_max_pending: usize,
    /// Flight recorder: max spans buffered per trace (beyond this the
    /// trace is marked truncated and further spans are counted, not kept).
    pub flight_max_spans: usize,
    /// Trigger: retain a trace whose root-to-finalize latency exceeds
    /// this many seconds.
    pub latency_threshold: f64,
    /// Health: retries within the window at or above this ⇒ Degraded.
    pub retry_degraded: u64,
    /// Health: partial answers within the window at or above this ⇒
    /// Degraded.
    pub partial_degraded: u64,
    /// Health: windowed p99 of any `*queue_wait`/`*mailbox_wait` series
    /// above this many seconds ⇒ Degraded.
    pub queue_wait_degraded: f64,
    /// Also retain every span cumulatively (MemRecorder-style), so trace
    /// oracles (structure digests) can run against this recorder. Test
    /// harness switch; production scrapes never need it.
    pub keep_spans: bool,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            window_width: 5.0,
            window_depth: 24,
            heat_half_life: 120.0,
            heat_top: 16,
            flight_max_traces: 32,
            flight_max_bytes: 256 * 1024,
            flight_max_pending: 1024,
            flight_max_spans: 512,
            latency_threshold: 1.0,
            retry_degraded: 1,
            partial_degraded: 1,
            queue_wait_degraded: 0.5,
            keep_spans: false,
        }
    }
}

/// Per-site health, derived from the retry / partial-answer / queue-wait
/// windows. `Unreachable` is externally driven: a site that can answer a
/// scrape is by definition reachable, so only the substrate (stop/crash)
/// or a failed probe moves a site there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HealthState {
    #[default]
    Healthy,
    Degraded,
    Unreachable,
}

impl HealthState {
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Unreachable => "unreachable",
        }
    }

    pub fn parse(s: &str) -> Option<HealthState> {
        Some(match s {
            "healthy" => HealthState::Healthy,
            "degraded" => HealthState::Degraded,
            "unreachable" => HealthState::Unreachable,
            _ => return None,
        })
    }

    /// Gauge encoding (the `health.state` counter value).
    pub fn gauge(self) -> u64 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Degraded => 1,
            HealthState::Unreachable => 2,
        }
    }

    /// How a scraper classifies a probe result: a site that answered is
    /// whatever it says it is; a site that didn't is unreachable.
    pub fn classify_probe(reply: Option<HealthState>) -> HealthState {
        reply.unwrap_or(HealthState::Unreachable)
    }
}

// ---------------------------------------------------------------------
// Windowed aggregation
// ---------------------------------------------------------------------

/// One counter series' window: epoch-aligned buckets plus the rotated-out
/// remainder. Invariant: `evicted + Σ buckets == total`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterWindow {
    /// Cumulative value at the last sample.
    pub total: u64,
    /// Sum of every delta whose bucket has rotated out of the window.
    pub evicted: u64,
    /// Non-empty buckets: absolute bucket index → delta observed there.
    pub buckets: BTreeMap<u64, u64>,
}

impl CounterWindow {
    fn add(&mut self, idx: u64, delta: u64, depth: usize) {
        self.total += delta;
        if delta > 0 {
            *self.buckets.entry(idx).or_insert(0) += delta;
        }
        self.rotate(idx, depth);
    }

    fn rotate(&mut self, cur: u64, depth: usize) {
        let horizon = cur.saturating_sub(depth.saturating_sub(1) as u64);
        while let Some((&idx, &v)) = self.buckets.iter().next() {
            if idx >= horizon {
                break;
            }
            self.evicted += v;
            self.buckets.remove(&idx);
        }
    }

    /// Sum over the retained buckets (the "recent" signal).
    pub fn windowed(&self) -> u64 {
        self.buckets.values().sum()
    }

    /// Order-insensitive merge: totals add, per-bucket deltas add.
    pub fn merge(&mut self, other: &CounterWindow) {
        self.total += other.total;
        self.evicted += other.evicted;
        for (&idx, &v) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += v;
        }
    }
}

/// One histogram series' window: per-bucket-index deltas of the
/// fixed-point histogram buckets, same rotation discipline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistWindow {
    /// Cumulative sample count at the last sample.
    pub total: u64,
    /// Count of samples whose window bucket rotated out.
    pub evicted: u64,
    /// Absolute window bucket → (histogram bucket index → count delta).
    pub buckets: BTreeMap<u64, BTreeMap<usize, u64>>,
}

impl HistWindow {
    fn add(&mut self, idx: u64, delta: &BTreeMap<usize, u64>, depth: usize) {
        let n: u64 = delta.values().sum();
        self.total += n;
        if n > 0 {
            let slot = self.buckets.entry(idx).or_default();
            for (&b, &c) in delta {
                *slot.entry(b).or_insert(0) += c;
            }
        }
        self.rotate(idx, depth);
    }

    fn rotate(&mut self, cur: u64, depth: usize) {
        let horizon = cur.saturating_sub(depth.saturating_sub(1) as u64);
        while let Some((&idx, _)) = self.buckets.iter().next() {
            if idx >= horizon {
                break;
            }
            let slot = self.buckets.remove(&idx).unwrap_or_default();
            self.evicted += slot.values().sum::<u64>();
        }
    }

    /// Samples inside the retained window.
    pub fn windowed_count(&self) -> u64 {
        self.buckets.values().flat_map(|m| m.values()).sum()
    }

    /// Approximate quantile over the retained window (histogram bucket
    /// upper edges, same error bound as the cumulative histogram).
    pub fn windowed_quantile(&self, q: f64) -> f64 {
        let n = self.windowed_count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut merged: BTreeMap<usize, u64> = BTreeMap::new();
        for slot in self.buckets.values() {
            for (&b, &c) in slot {
                *merged.entry(b).or_insert(0) += c;
            }
        }
        let mut seen = 0u64;
        for (&b, &c) in &merged {
            seen += c;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        0.0
    }

    pub fn merge(&mut self, other: &HistWindow) {
        self.total += other.total;
        self.evicted += other.evicted;
        for (&idx, slot) in &other.buckets {
            let mine = self.buckets.entry(idx).or_default();
            for (&b, &c) in slot {
                *mine.entry(b).or_insert(0) += c;
            }
        }
    }
}

/// A mergeable snapshot of windowed series — what a scrape carries and
/// what a cluster-wide aggregator folds together. Merging is per-key
/// bucket addition over `BTreeMap`s, so it is order-insensitive: for any
/// deltas `a, b, c`, `merge(merge(a,b),c) == merge(a,merge(b,c))` and
/// `merge(a,b) == merge(b,a)` (pinned by proptest).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowDelta {
    /// Bucket width the indices are aligned to, seconds.
    pub width: f64,
    pub counters: BTreeMap<(u32, String), CounterWindow>,
    pub hists: BTreeMap<(u32, String), HistWindow>,
}

impl WindowDelta {
    pub fn merge(&mut self, other: &WindowDelta) {
        if self.width == 0.0 {
            self.width = other.width;
        }
        for (k, v) in &other.counters {
            self.counters.entry(k.clone()).or_default().merge(v);
        }
        for (k, v) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(v);
        }
    }
}

/// One fragment's heat series at a site: the latest decayed heat (fed
/// from the eviction plane, re-decayed on read) plus a window of
/// per-bucket heat samples.
#[derive(Debug, Clone)]
struct HeatSeries {
    heat: f64,
    last: f64,
    /// Absolute window bucket → last heat sampled in that bucket.
    buckets: BTreeMap<u64, f64>,
}

#[derive(Debug, Default)]
struct HealthCell {
    state: HealthState,
    transitions: u64,
    reachable: bool,
}

/// Mutable window/health state, one lock for the whole plane. Touched at
/// sample points and scrapes only — never per message, never per span.
#[derive(Debug, Default)]
struct Windows {
    counters: BTreeMap<(u32, String), CounterWindow>,
    hists: BTreeMap<(u32, String), HistWindow>,
    /// Last cumulative per-bucket counts per histogram series, for diffs.
    hist_last: HashMap<(u32, String), BTreeMap<usize, u64>>,
    heat: HashMap<u32, BTreeMap<String, HeatSeries>>,
    health: HashMap<u32, HealthCell>,
    last_sample: HashMap<u32, f64>,
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// Approximate retained footprint of one span: fixed header plus the only
/// unbounded field. Used for the ring's byte budget.
pub fn span_bytes(s: &SpanRecord) -> usize {
    let link = match &s.link {
        Link::Transfer { path } => path.len(),
        _ => 0,
    };
    96 + s.detail.len() + link
}

/// One retained trace: the complete span tree of a query that tripped a
/// trigger predicate, in record order.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightTrace {
    /// Monotone per-plane sequence number (recency order across sites).
    pub seq: u64,
    /// Site the user query arrived at — the ring this trace lives in.
    pub root_site: u32,
    /// `+`-joined trigger predicates that fired ("partial", "retry",
    /// "latency", "error"), in canonical order.
    pub trigger: String,
    /// Time of the sealing finalize span (recording substrate's clock).
    pub sealed_at: f64,
    /// True when the group hit `flight_max_spans` and later spans were
    /// counted but not kept.
    pub truncated: bool,
    pub spans: Vec<SpanRecord>,
}

impl FlightTrace {
    pub fn bytes(&self) -> usize {
        self.spans.iter().map(span_bytes).sum()
    }
}

/// A bounded ring of triggered traces: never exceeds either budget, and
/// always retains the most recent traces that fit (oldest evicted first).
/// A single trace larger than the byte budget is refused outright.
/// Public so the budget/retention proptest can drive it directly.
#[derive(Debug, Default)]
pub struct FlightRing {
    max_traces: usize,
    max_bytes: usize,
    bytes: usize,
    traces: VecDeque<FlightTrace>,
}

impl FlightRing {
    pub fn new(max_traces: usize, max_bytes: usize) -> FlightRing {
        FlightRing { max_traces, max_bytes, bytes: 0, traces: VecDeque::new() }
    }

    pub fn push(&mut self, trace: FlightTrace) {
        let sz = trace.bytes();
        if sz > self.max_bytes || self.max_traces == 0 {
            return; // can never fit; keeping what we have beats keeping nothing
        }
        self.traces.push_back(trace);
        self.bytes += sz;
        while self.traces.len() > self.max_traces || self.bytes > self.max_bytes {
            if let Some(old) = self.traces.pop_front() {
                self.bytes -= old.bytes();
            } else {
                break;
            }
        }
    }

    pub fn len(&self) -> usize {
        self.traces.len()
    }

    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    pub fn bytes(&self) -> usize {
        self.bytes
    }

    pub fn traces(&self) -> impl Iterator<Item = &FlightTrace> {
        self.traces.iter()
    }
}

/// One unsealed trace group: spans buffered until the user finalize
/// arrives and the trigger predicates run.
#[derive(Debug)]
struct Group {
    root_site: u32,
    root_span: u64,
    root_t0: f64,
    spans: Vec<SpanRecord>,
    span_ids: Vec<u64>,
    truncated: bool,
    partial: bool,
    retried: bool,
    errored: bool,
}

#[derive(Debug, Default)]
struct Flight {
    groups: HashMap<u64, Group>,
    by_root: HashMap<(u64, u64), u64>,
    by_span: HashMap<u64, u64>,
    by_ask: HashMap<(u32, u64), u64>,
    order: VecDeque<u64>,
    next_group: u64,
    seq: u64,
    rings: HashMap<u32, FlightRing>,
    /// Spans that arrived with no resolvable group (late answers after a
    /// seal, children of dropped groups). Counted, not kept.
    orphans: u64,
}

// ---------------------------------------------------------------------
// The plane
// ---------------------------------------------------------------------

/// The continuous telemetry plane. Shared across every site of a cluster
/// through the recorder `Arc`; all state sits behind two mutexes that are
/// only taken at span-record time (flight) and sample/scrape time
/// (windows) — the metric hot path (atomic counter bumps) never comes
/// near it.
#[derive(Debug)]
pub struct TelemetryPlane {
    cfg: TelemetryConfig,
    windows: Mutex<Windows>,
    flight: Mutex<Flight>,
}

impl TelemetryPlane {
    pub fn new(cfg: TelemetryConfig) -> TelemetryPlane {
        TelemetryPlane {
            cfg,
            windows: Mutex::new(Windows::default()),
            flight: Mutex::new(Flight::default()),
        }
    }

    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    fn bucket_of(&self, now: f64) -> u64 {
        (now.max(0.0) / self.cfg.window_width) as u64
    }

    /// True when `site` has not been sampled within one bucket width —
    /// the agent's quiescent-point hook calls this first so steady-state
    /// traffic costs one map lookup per quiescent point, not a sample.
    pub fn sample_due(&self, site: u32, now: f64) -> bool {
        let w = self.windows.lock().unwrap();
        match w.last_sample.get(&site) {
            Some(&t) => now - t >= self.cfg.window_width,
            None => true,
        }
    }

    /// Samples every series of `site` from the registry: the cumulative
    /// delta since the previous sample is credited to the current window
    /// bucket, then the health state machine steps and publishes its
    /// gauge. O(series at this site); call at quiescent points and
    /// scrapes, never on the message path.
    pub fn sample_site(&self, site: u32, now: f64, reg: &Registry) {
        let snap = reg.snapshot_site(site);
        let idx = self.bucket_of(now);
        let depth = self.cfg.window_depth;
        let mut w = self.windows.lock().unwrap();
        w.last_sample.insert(site, now);
        for c in &snap.counters {
            if c.name == "health.state" {
                continue; // the gauge is an output of sampling, not an input
            }
            let key = (site, c.name.clone());
            let win = w.counters.entry(key).or_default();
            let delta = c.value.saturating_sub(win.total);
            win.add(idx, delta, depth);
            // A gauge that moved *down* (counters mirrored via `set`)
            // re-anchors the baseline without crediting a delta.
            if c.value < win.total {
                win.total = c.value;
            }
        }
        for h in &snap.histograms {
            let key = (site, h.name.clone());
            let cur: BTreeMap<usize, u64> = h.buckets.iter().copied().collect();
            let last = w.hist_last.entry(key.clone()).or_default();
            let mut delta: BTreeMap<usize, u64> = BTreeMap::new();
            for (&b, &c) in &cur {
                let prev = last.get(&b).copied().unwrap_or(0);
                if c > prev {
                    delta.insert(b, c - prev);
                }
            }
            *last = cur;
            w.hists.entry(key).or_default().add(idx, &delta, depth);
        }
        // Health: step the FSM from the freshly advanced windows.
        let state = Self::derive_health(&self.cfg, &w, site);
        let cell = w.health.entry(site).or_insert_with(|| HealthCell {
            state: HealthState::Healthy,
            transitions: 0,
            reachable: true,
        });
        if cell.reachable && state != cell.state {
            cell.transitions += 1;
            cell.state = state;
        }
        let gauge = cell.state.gauge();
        drop(w);
        reg.counter(site, "health.state").set(gauge);
    }

    fn derive_health(cfg: &TelemetryConfig, w: &Windows, site: u32) -> HealthState {
        let windowed = |name: &str| {
            w.counters
                .get(&(site, name.to_string()))
                .map_or(0, CounterWindow::windowed)
        };
        let retries = windowed("oa.retries_sent") + windowed("oa.asks_abandoned");
        let partials = windowed("oa.partial_answers");
        let queue_p99 = w
            .hists
            .iter()
            .filter(|((s, name), _)| {
                *s == site && (name.ends_with("queue_wait") || name.ends_with("mailbox_wait"))
            })
            .map(|(_, win)| win.windowed_quantile(0.99))
            .fold(0.0f64, f64::max);
        if retries >= cfg.retry_degraded
            || partials >= cfg.partial_degraded
            || queue_p99 > cfg.queue_wait_degraded
        {
            HealthState::Degraded
        } else {
            HealthState::Healthy
        }
    }

    /// Substrate hook: a stopped/crashed site is Unreachable until marked
    /// back. Self-samples cannot clear it (a dead site does not sample).
    pub fn set_reachable(&self, site: u32, reachable: bool) {
        let mut w = self.windows.lock().unwrap();
        let cell = w.health.entry(site).or_insert_with(|| HealthCell {
            state: HealthState::Healthy,
            transitions: 0,
            reachable: true,
        });
        if cell.reachable != reachable {
            cell.transitions += 1;
            cell.reachable = reachable;
            cell.state = if reachable { HealthState::Healthy } else { HealthState::Unreachable };
        }
    }

    /// Current health of `site` as last derived (scrapers reading a
    /// cluster-shared plane; a cross-process observer uses the payload).
    pub fn health(&self, site: u32) -> HealthState {
        self.windows
            .lock()
            .unwrap()
            .health
            .get(&site)
            .map_or(HealthState::Healthy, |c| c.state)
    }

    /// Heat feed from the eviction plane: `heats` is `(unit path, decayed
    /// heat now)` for the hottest cached units at `site`. The plane keeps
    /// at most `heat_top` series per site, displacing the coldest.
    pub fn record_heat(&self, site: u32, now: f64, heats: &[(String, f64)]) {
        let idx = self.bucket_of(now);
        let horizon = idx.saturating_sub(self.cfg.window_depth.saturating_sub(1) as u64);
        let mut w = self.windows.lock().unwrap();
        let per_site = w.heat.entry(site).or_default();
        for (path, heat) in heats.iter().take(self.cfg.heat_top) {
            match per_site.get_mut(path) {
                Some(s) => {
                    s.heat = *heat;
                    s.last = now;
                    s.buckets.insert(idx, *heat);
                    while let Some((&b, _)) = s.buckets.iter().next() {
                        if b >= horizon {
                            break;
                        }
                        s.buckets.remove(&b);
                    }
                }
                None => {
                    if per_site.len() >= self.cfg.heat_top {
                        // Displace the coldest tracked series, if colder.
                        let coldest = per_site
                            .iter()
                            .min_by(|a, b| a.1.heat.total_cmp(&b.1.heat))
                            .map(|(p, s)| (p.clone(), s.heat));
                        match coldest {
                            Some((p, h)) if h < *heat => {
                                per_site.remove(&p);
                            }
                            _ => continue,
                        }
                    }
                    per_site.insert(
                        path.clone(),
                        HeatSeries { heat: *heat, last: now, buckets: BTreeMap::from([(idx, *heat)]) },
                    );
                }
            }
        }
    }

    /// The windowed series of `site` as a mergeable snapshot.
    pub fn window_delta(&self, site: u32) -> WindowDelta {
        let w = self.windows.lock().unwrap();
        WindowDelta {
            width: self.cfg.window_width,
            counters: w
                .counters
                .iter()
                .filter(|((s, _), _)| *s == site)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            hists: w
                .hists
                .iter()
                .filter(|((s, _), _)| *s == site)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    // -----------------------------------------------------------------
    // Flight recorder
    // -----------------------------------------------------------------

    /// Routes one recorded span into its trace group; called by the
    /// recorder for every span. Seals the group (and runs the trigger
    /// predicates) when the user-facing finalize arrives.
    pub fn ingest_span(&self, span: &SpanRecord) {
        let mut f = self.flight.lock().unwrap();
        let gid = match &span.link {
            Link::Transfer { .. } => return, // migration traces have their own explain path
            Link::Root { endpoint, qid } => {
                let key = (*endpoint, *qid);
                match f.by_root.get(&key) {
                    Some(&g) => g,
                    None => {
                        if f.groups.len() >= self.cfg.flight_max_pending {
                            // Drop the oldest unsealed group (likely leaked
                            // by a crash) rather than growing unbounded.
                            if let Some(old) = f.order.pop_front() {
                                Self::drop_group(&mut f, old);
                            }
                        }
                        let g = f.next_group;
                        f.next_group += 1;
                        f.groups.insert(
                            g,
                            Group {
                                root_site: span.site,
                                root_span: span.id,
                                root_t0: span.t0,
                                spans: Vec::new(),
                                span_ids: Vec::new(),
                                truncated: false,
                                partial: false,
                                retried: false,
                                errored: false,
                            },
                        );
                        f.by_root.insert(key, g);
                        f.order.push_back(g);
                        g
                    }
                }
            }
            Link::ChildOf { parent } => match f.by_span.get(parent) {
                Some(&g) => g,
                None => {
                    f.orphans += 1;
                    return;
                }
            },
            Link::Ask { asker, sub_qid } => match f.by_ask.get(&(*asker, *sub_qid)) {
                Some(&g) => g,
                None => {
                    f.orphans += 1;
                    return;
                }
            },
        };
        let Some(g) = f.groups.get_mut(&gid) else {
            f.orphans += 1;
            return;
        };
        if span.partial {
            g.partial = true;
        }
        if span.kind == SpanKind::Retry {
            g.retried = true;
        }
        if span.kind == SpanKind::Finalize && span.detail == "error" {
            g.errored = true;
        }
        if g.spans.len() < self.cfg.flight_max_spans {
            g.spans.push(span.clone());
        } else {
            g.truncated = true;
        }
        g.span_ids.push(span.id);
        let root_span = g.root_span;
        let root_t0 = g.root_t0;
        let root_site = g.root_site;
        f.by_span.insert(span.id, gid);
        if matches!(span.kind, SpanKind::Ask | SpanKind::Retry) && span.corr != 0 {
            f.by_ask.insert((span.site, span.corr), gid);
        }
        // Seal on the user-facing terminal span: the root query's
        // finalize ("user" reply, or an error finalize chained directly
        // to the root). Sub-site finalizes ("site") keep the group open.
        let seals = span.kind == SpanKind::Finalize
            && (span.detail == "user"
                || (span.detail == "error"
                    && matches!(span.link, Link::ChildOf { parent } if parent == root_span)));
        if !seals {
            return;
        }
        let latency = span.t0 + span.dur - root_t0;
        let mut triggers = Vec::new();
        {
            let g = f.groups.get(&gid).expect("sealing a live group");
            if g.partial {
                triggers.push("partial");
            }
            if g.retried {
                triggers.push("retry");
            }
            if g.errored {
                triggers.push("error");
            }
        }
        if latency > self.cfg.latency_threshold {
            triggers.push("latency");
        }
        if triggers.is_empty() {
            Self::drop_group(&mut f, gid);
            return;
        }
        f.seq += 1;
        let seq = f.seq;
        let trigger = triggers.join("+");
        let g = Self::unlink_group(&mut f, gid).expect("sealing a live group");
        let trace = FlightTrace {
            seq,
            root_site,
            trigger,
            sealed_at: span.t0 + span.dur,
            truncated: g.truncated,
            spans: g.spans,
        };
        let (max_t, max_b) = (self.cfg.flight_max_traces, self.cfg.flight_max_bytes);
        f.rings
            .entry(root_site)
            .or_insert_with(|| FlightRing::new(max_t, max_b))
            .push(trace);
    }

    /// Removes a group and every index entry pointing at it.
    fn unlink_group(f: &mut Flight, gid: u64) -> Option<Group> {
        let g = f.groups.remove(&gid)?;
        for id in &g.span_ids {
            f.by_span.remove(id);
        }
        f.by_span.remove(&g.root_span);
        f.by_root.retain(|_, &mut v| v != gid);
        f.by_ask.retain(|_, &mut v| v != gid);
        f.order.retain(|&v| v != gid);
        Some(g)
    }

    fn drop_group(f: &mut Flight, gid: u64) {
        let _ = Self::unlink_group(f, gid);
    }

    /// The retained traces rooted at `site`, oldest first.
    pub fn flight_dump(&self, site: u32) -> Vec<FlightTrace> {
        self.flight
            .lock()
            .unwrap()
            .rings
            .get(&site)
            .map(|r| r.traces().cloned().collect())
            .unwrap_or_default()
    }

    /// Unsealed groups currently buffered (test/introspection hook).
    pub fn pending_groups(&self) -> usize {
        self.flight.lock().unwrap().groups.len()
    }

    // -----------------------------------------------------------------
    // Scrape payload
    // -----------------------------------------------------------------

    /// Renders the scrape payload for `site`: JSONL, one flat object per
    /// line. The first line is the `telemetry` header (always present);
    /// `what` selects which sections follow.
    pub fn payload(&self, site: u32, what: u8, now: f64) -> String {
        let mut out = String::with_capacity(1024);
        let w = self.windows.lock().unwrap();
        let (state, transitions) = w
            .health
            .get(&site)
            .map_or((HealthState::Healthy, 0), |c| (c.state, c.transitions));
        let _ = writeln!(
            out,
            "{{\"type\":\"telemetry\",\"site\":{},\"now\":{},\"what\":{},\"enabled\":true,\
             \"health\":\"{}\",\"health_transitions\":{},\"win_width\":{},\"win_depth\":{}}}",
            site,
            fmt_f64(now),
            what,
            state.label(),
            transitions,
            fmt_f64(self.cfg.window_width),
            self.cfg.window_depth
        );
        if matches!(what, WHAT_ALL | WHAT_METRICS) {
            for ((s, name), win) in w.counters.iter().filter(|((s, _), _)| *s == site) {
                let buckets: Vec<String> =
                    win.buckets.iter().map(|(i, v)| format!("{i}:{v}")).collect();
                let _ = write!(out, "{{\"type\":\"win_counter\",\"site\":{s},\"name\":");
                push_json_str(&mut out, name);
                let _ = write!(
                    out,
                    ",\"total\":{},\"evicted\":{},\"windowed\":{},\"buckets\":",
                    win.total,
                    win.evicted,
                    win.windowed()
                );
                push_json_str(&mut out, &buckets.join(" "));
                let _ = writeln!(out, "}}");
            }
            for ((s, name), win) in w.hists.iter().filter(|((s, _), _)| *s == site) {
                let _ = write!(out, "{{\"type\":\"win_hist\",\"site\":{s},\"name\":");
                push_json_str(&mut out, name);
                let _ = writeln!(
                    out,
                    ",\"total\":{},\"evicted\":{},\"win_count\":{},\"win_p50\":{},\"win_p99\":{}}}",
                    win.total,
                    win.evicted,
                    win.windowed_count(),
                    fmt_f64(win.windowed_quantile(0.5)),
                    fmt_f64(win.windowed_quantile(0.99))
                );
            }
            if let Some(per_site) = w.heat.get(&site) {
                for (path, s) in per_site {
                    let decayed = if s.heat > 0.0 {
                        s.heat * 0.5f64.powf(((now - s.last).max(0.0)) / self.cfg.heat_half_life)
                    } else {
                        0.0
                    };
                    let buckets: Vec<String> = s
                        .buckets
                        .iter()
                        .map(|(i, v)| format!("{i}:{}", fmt_f64(*v)))
                        .collect();
                    let _ = write!(out, "{{\"type\":\"heat\",\"site\":{site},\"path\":");
                    push_json_str(&mut out, path);
                    let _ = write!(out, ",\"heat\":{},\"buckets\":", fmt_f64(decayed));
                    push_json_str(&mut out, &buckets.join(" "));
                    let _ = writeln!(out, "}}");
                }
            }
        }
        drop(w);
        if matches!(what, WHAT_ALL | WHAT_FLIGHT) {
            for trace in self.flight_dump(site) {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"flight_trace\",\"seq\":{},\"root_site\":{},\"trigger\":\"{}\",\
                     \"sealed_at\":{},\"truncated\":{},\"spans\":{}}}",
                    trace.seq,
                    trace.root_site,
                    trace.trigger,
                    fmt_f64(trace.sealed_at),
                    trace.truncated,
                    trace.spans.len()
                );
                for sp in &trace.spans {
                    let line = span_to_jsonl(sp);
                    let rest = line.strip_prefix('{').unwrap_or(&line);
                    let _ = writeln!(out, "{{\"trace\":{},{rest}", trace.seq);
                }
            }
        }
        out
    }
}

/// The payload a scrape returned when the target had no telemetry plane
/// attached (plain recorder, or none). Still one well-formed header line.
pub fn disabled_payload(site: u32, now: f64) -> String {
    format!(
        "{{\"type\":\"telemetry\",\"site\":{},\"now\":{},\"what\":0,\"enabled\":false}}\n",
        site,
        fmt_f64(now)
    )
}

// ---------------------------------------------------------------------
// Payload parsing (the observer side of the scrape protocol)
// ---------------------------------------------------------------------

/// One flight-recorder trace as parsed back from a payload.
#[derive(Debug, Clone)]
pub struct ParsedTrace {
    pub seq: u64,
    pub root_site: u32,
    pub trigger: String,
    pub spans: Vec<SpanRecord>,
}

/// A parsed scrape payload: the header plus whatever sections were
/// present. This is what the remote-scrape tests and the future placement
/// controller consume.
#[derive(Debug, Clone)]
pub struct ParsedPayload {
    pub site: u32,
    pub now: f64,
    pub enabled: bool,
    pub health: HealthState,
    pub health_transitions: u64,
    /// `name → (total, evicted, windowed)` for every windowed counter.
    pub counters: BTreeMap<String, (u64, u64, u64)>,
    /// `name → (win_count, win_p99)` for every windowed histogram.
    pub hists: BTreeMap<String, (u64, f64)>,
    /// `path → decayed heat` for every tracked fragment.
    pub heat: BTreeMap<String, f64>,
    pub traces: Vec<ParsedTrace>,
}

/// Parses a scrape payload produced by [`TelemetryPlane::payload`].
pub fn parse_payload(text: &str) -> Result<ParsedPayload, String> {
    let mut header: Option<(u32, f64, bool, HealthState, u64)> = None;
    let mut counters = BTreeMap::new();
    let mut hists = BTreeMap::new();
    let mut heat = BTreeMap::new();
    let mut traces: Vec<ParsedTrace> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let f = parse_flat(t).map_err(|e| format!("line {}: {e}", i + 1))?;
        let str_of = |k: &str| f.get(k).and_then(JVal::as_str).map(str::to_string);
        let u64_of = |k: &str| f.get(k).and_then(JVal::as_u64);
        let f64_of = |k: &str| f.get(k).and_then(JVal::as_f64);
        if f.contains_key("trace") {
            // A span line belonging to the most recent flight_trace.
            let seq = u64_of("trace").ok_or("bad trace ref")?;
            let span = span_from_jsonl(t).map_err(|e| format!("line {}: {e}", i + 1))?;
            match traces.iter_mut().rev().find(|tr| tr.seq == seq) {
                Some(tr) => tr.spans.push(span),
                None => return Err(format!("line {}: span for unknown trace {seq}", i + 1)),
            }
            continue;
        }
        match str_of("type").as_deref() {
            Some("telemetry") => {
                let site = u64_of("site").ok_or("header missing site")? as u32;
                let now = f64_of("now").ok_or("header missing now")?;
                let enabled = matches!(f.get("enabled"), Some(JVal::B(true)));
                let health = str_of("health")
                    .and_then(|s| HealthState::parse(&s))
                    .unwrap_or(HealthState::Healthy);
                header = Some((site, now, enabled, health, u64_of("health_transitions").unwrap_or(0)));
            }
            Some("win_counter") => {
                counters.insert(
                    str_of("name").ok_or("win_counter missing name")?,
                    (
                        u64_of("total").unwrap_or(0),
                        u64_of("evicted").unwrap_or(0),
                        u64_of("windowed").unwrap_or(0),
                    ),
                );
            }
            Some("win_hist") => {
                hists.insert(
                    str_of("name").ok_or("win_hist missing name")?,
                    (u64_of("win_count").unwrap_or(0), f64_of("win_p99").unwrap_or(0.0)),
                );
            }
            Some("heat") => {
                heat.insert(
                    str_of("path").ok_or("heat missing path")?,
                    f64_of("heat").unwrap_or(0.0),
                );
            }
            Some("flight_trace") => {
                traces.push(ParsedTrace {
                    seq: u64_of("seq").ok_or("flight_trace missing seq")?,
                    root_site: u64_of("root_site").unwrap_or(0) as u32,
                    trigger: str_of("trigger").unwrap_or_default(),
                    spans: Vec::new(),
                });
            }
            other => return Err(format!("line {}: unknown payload line type {other:?}", i + 1)),
        }
    }
    let (site, now, enabled, health, health_transitions) =
        header.ok_or("payload has no telemetry header line")?;
    Ok(ParsedPayload {
        site,
        now,
        enabled,
        health,
        health_transitions,
        counters,
        hists,
        heat,
        traces,
    })
}

// ---------------------------------------------------------------------
// The recorder
// ---------------------------------------------------------------------

/// The production recorder: metrics in a [`Registry`], every span routed
/// through the flight recorder's tail sampler, windows advanced at
/// sample points. Optionally retains all spans (`keep_spans`) so the
/// trace-structure oracles can validate it against [`crate::MemRecorder`].
#[derive(Debug)]
pub struct TelemetryRecorder {
    next_id: AtomicU64,
    registry: Registry,
    plane: TelemetryPlane,
    kept: Mutex<Vec<SpanRecord>>,
}

impl TelemetryRecorder {
    pub fn new() -> Arc<TelemetryRecorder> {
        Self::with_config(TelemetryConfig::default())
    }

    pub fn with_config(cfg: TelemetryConfig) -> Arc<TelemetryRecorder> {
        Arc::new(TelemetryRecorder {
            next_id: AtomicU64::new(0),
            registry: Registry::new(),
            plane: TelemetryPlane::new(cfg),
            kept: Mutex::new(Vec::new()),
        })
    }

    pub fn plane(&self) -> &TelemetryPlane {
        &self.plane
    }

    pub fn metrics(&self) -> &Registry {
        &self.registry
    }

    /// All spans recorded so far (empty unless `keep_spans` is set).
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.kept.lock().unwrap().clone()
    }
}

impl Recorder for TelemetryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn next_span_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn record_span(&self, span: SpanRecord) {
        self.plane.ingest_span(&span);
        if self.plane.cfg.keep_spans {
            self.kept.lock().unwrap().push(span);
        }
    }

    fn registry(&self) -> Option<&Registry> {
        Some(&self.registry)
    }

    fn telemetry(&self) -> Option<&TelemetryPlane> {
        Some(&self.plane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, link: Link, site: u32, kind: SpanKind, t0: f64) -> SpanRecord {
        SpanRecord::new(id, link, site, kind, t0)
    }

    #[test]
    fn counter_window_buckets_sum_to_total() {
        let mut w = CounterWindow::default();
        for i in 0..100u64 {
            w.add(i, i % 3, 4);
        }
        assert_eq!(w.evicted + w.windowed(), w.total);
        assert!(w.buckets.len() <= 4);
    }

    #[test]
    fn window_delta_merge_is_order_insensitive() {
        let mk = |site: u32, name: &str, idx: u64, v: u64| {
            let mut d = WindowDelta { width: 5.0, ..WindowDelta::default() };
            let mut cw = CounterWindow::default();
            cw.add(idx, v, 24);
            d.counters.insert((site, name.to_string()), cw);
            d
        };
        let (a, b, c) = (mk(1, "x", 3, 2), mk(1, "x", 4, 5), mk(2, "x", 3, 7));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut c_ba = c.clone();
        let mut ba = b.clone();
        ba.merge(&a);
        c_ba.merge(&ba);
        assert_eq!(ab_c, c_ba);
    }

    #[test]
    fn sampling_diffs_cumulative_series() {
        let plane = TelemetryPlane::new(TelemetryConfig::default());
        let reg = Registry::new();
        let c = reg.counter(1, "oa.user_queries");
        c.add(10);
        plane.sample_site(1, 0.0, &reg);
        c.add(5);
        plane.sample_site(1, 6.0, &reg);
        let d = plane.window_delta(1);
        let win = &d.counters[&(1, "oa.user_queries".to_string())];
        assert_eq!(win.total, 15);
        assert_eq!(win.evicted + win.windowed(), 15);
        assert_eq!(win.buckets.get(&0), Some(&10));
        assert_eq!(win.buckets.get(&1), Some(&5));
    }

    #[test]
    fn health_degrades_on_windowed_retries_and_recovers() {
        let plane = TelemetryPlane::new(TelemetryConfig {
            window_width: 5.0,
            window_depth: 2,
            ..TelemetryConfig::default()
        });
        let reg = Registry::new();
        let retries = reg.counter(1, "oa.retries_sent");
        plane.sample_site(1, 0.0, &reg);
        assert_eq!(plane.health(1), HealthState::Healthy);
        retries.add(3);
        plane.sample_site(1, 5.0, &reg);
        assert_eq!(plane.health(1), HealthState::Degraded);
        assert_eq!(reg.counter(1, "health.state").get(), 1);
        // No new retries: once the hot bucket rotates out, healthy again.
        plane.sample_site(1, 20.0, &reg);
        assert_eq!(plane.health(1), HealthState::Healthy);
        assert_eq!(reg.counter(1, "health.state").get(), 0);
    }

    #[test]
    fn unreachable_is_substrate_driven() {
        let plane = TelemetryPlane::new(TelemetryConfig::default());
        plane.set_reachable(3, false);
        assert_eq!(plane.health(3), HealthState::Unreachable);
        plane.set_reachable(3, true);
        assert_eq!(plane.health(3), HealthState::Healthy);
        assert_eq!(HealthState::classify_probe(None), HealthState::Unreachable);
    }

    #[test]
    fn flight_recorder_keeps_partial_trace_and_drops_clean_one() {
        let plane = TelemetryPlane::new(TelemetryConfig::default());
        // Clean trace: root + finalize, no triggers.
        plane.ingest_span(&span(1, Link::Root { endpoint: 9, qid: 1 }, 1, SpanKind::UserQuery, 0.0));
        plane.ingest_span(&span(2, Link::ChildOf { parent: 1 }, 1, SpanKind::Execute, 0.0));
        let mut fin = span(3, Link::ChildOf { parent: 1 }, 1, SpanKind::Finalize, 0.1);
        fin.detail = "user".into();
        plane.ingest_span(&fin);
        assert!(plane.flight_dump(1).is_empty());
        assert_eq!(plane.pending_groups(), 0);

        // Partial trace: retained with trigger "partial".
        plane.ingest_span(&span(4, Link::Root { endpoint: 9, qid: 2 }, 1, SpanKind::UserQuery, 1.0));
        let mut ans = span(5, Link::ChildOf { parent: 4 }, 1, SpanKind::SubAnswer, 1.2);
        ans.partial = true;
        plane.ingest_span(&ans);
        let mut fin = span(6, Link::ChildOf { parent: 4 }, 1, SpanKind::Finalize, 1.3);
        fin.detail = "user".into();
        fin.partial = true;
        plane.ingest_span(&fin);
        let dump = plane.flight_dump(1);
        assert_eq!(dump.len(), 1);
        assert_eq!(dump[0].trigger, "partial");
        assert_eq!(dump[0].spans.len(), 3);
    }

    #[test]
    fn flight_recorder_stitches_cross_site_spans() {
        let plane = TelemetryPlane::new(TelemetryConfig::default());
        plane.ingest_span(&span(1, Link::Root { endpoint: 7, qid: 1 }, 1, SpanKind::UserQuery, 0.0));
        let mut ask = span(2, Link::ChildOf { parent: 1 }, 1, SpanKind::Ask, 0.0);
        ask.corr = 42;
        plane.ingest_span(&ask);
        // Remote site's sub-query chains through the ask correlation.
        plane.ingest_span(&span(3, Link::Ask { asker: 1, sub_qid: 42 }, 2, SpanKind::SubQuery, 0.1));
        let mut retry = span(4, Link::ChildOf { parent: 2 }, 1, SpanKind::Retry, 0.5);
        retry.corr = 42;
        plane.ingest_span(&retry);
        let mut fin = span(5, Link::ChildOf { parent: 1 }, 1, SpanKind::Finalize, 0.9);
        fin.detail = "user".into();
        plane.ingest_span(&fin);
        let dump = plane.flight_dump(1);
        assert_eq!(dump.len(), 1, "retry must have triggered retention");
        assert_eq!(dump[0].trigger, "retry");
        assert!(dump[0].spans.iter().any(|s| s.site == 2), "remote span stitched in");
    }

    #[test]
    fn flight_ring_honors_budgets_and_recency() {
        let mut ring = FlightRing::new(2, 10_000);
        let mk = |seq: u64| FlightTrace {
            seq,
            root_site: 1,
            trigger: "latency".into(),
            sealed_at: 0.0,
            truncated: false,
            spans: vec![span(seq, Link::Root { endpoint: 1, qid: seq }, 1, SpanKind::UserQuery, 0.0)],
        };
        for s in 1..=5 {
            ring.push(mk(s));
        }
        let seqs: Vec<u64> = ring.traces().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![4, 5], "most recent retained, oldest evicted");
        assert!(ring.bytes() <= 10_000);
    }

    #[test]
    fn payload_round_trips_through_parser() {
        let plane = TelemetryPlane::new(TelemetryConfig::default());
        let reg = Registry::new();
        reg.counter(1, "oa.user_queries").add(4);
        reg.histogram(1, "des.queue_wait").observe(0.01);
        plane.sample_site(1, 2.0, &reg);
        plane.record_heat(1, 2.0, &[("/usRegion[NE]/state[PA]".into(), 3.5)]);
        plane.ingest_span(&span(1, Link::Root { endpoint: 3, qid: 8 }, 1, SpanKind::UserQuery, 0.0));
        let mut fin = span(2, Link::ChildOf { parent: 1 }, 1, SpanKind::Finalize, 0.2);
        fin.detail = "user".into();
        fin.partial = true;
        plane.ingest_span(&fin);
        let text = plane.payload(1, WHAT_ALL, 2.5);
        let p = parse_payload(&text).expect("payload parses");
        assert_eq!(p.site, 1);
        assert!(p.enabled);
        assert_eq!(p.counters["oa.user_queries"].0, 4);
        assert!(p.hists.contains_key("des.queue_wait"));
        assert!((p.heat["/usRegion[NE]/state[PA]"] - 3.5).abs() < 0.1);
        assert_eq!(p.traces.len(), 1);
        assert_eq!(p.traces[0].trigger, "partial");
        assert_eq!(p.traces[0].spans.len(), 2);
        assert_eq!(p.traces[0].spans[0].kind, SpanKind::UserQuery);

        let parsed = parse_payload(&disabled_payload(4, 1.0)).expect("disabled parses");
        assert!(!parsed.enabled);
        assert_eq!(parsed.site, 4);
    }

    #[test]
    fn heat_series_displaces_coldest_at_cap() {
        let plane = TelemetryPlane::new(TelemetryConfig { heat_top: 2, ..TelemetryConfig::default() });
        plane.record_heat(1, 0.0, &[("/a".into(), 1.0), ("/b".into(), 2.0)]);
        plane.record_heat(1, 1.0, &[("/c".into(), 5.0)]);
        let text = plane.payload(1, WHAT_METRICS, 1.0);
        let p = parse_payload(&text).unwrap();
        assert_eq!(p.heat.len(), 2);
        assert!(p.heat.contains_key("/c"), "hotter series displaces coldest");
        assert!(!p.heat.contains_key("/a"));
    }
}
