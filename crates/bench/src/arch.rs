//! The four sensor-database architectures of Fig. 6.
//!
//! All use the same 2400-space database and (for ii–iv) the same nine
//! sites; they differ in data placement and in how queries find data:
//!
//! * **i. Centralized** — one server owns everything; queries and updates
//!   all go there.
//! * **ii. Centralized querying, distributed update** — blocks spread over
//!   sites 2–9, hierarchy (root..neighborhoods) on the central site 1,
//!   which is also the sole repository of the block→site mapping, so every
//!   query enters through it.
//! * **iii. Distributed querying, two-level** — same placement, but the
//!   block→site mapping lives in DNS, so type 1 queries jump straight to
//!   block sites; everything else still funnels through the central site.
//! * **iv. Hierarchical (IrisNet)** — neighborhoods (with their blocks) on
//!   six sites, cities on two, the rest on one; DNS holds every ownership
//!   root and self-starting queries jump to the LCA owner.

use std::collections::HashMap;

use irisdns::SiteAddr;
use irisnet_core::{IdPath, OaConfig, OrganizingAgent};
use simnet::{CostModel, DesCluster};

use crate::parkingdb::ParkingDb;

/// Architecture selector (Fig. 6 i–iv).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    Centralized,
    CentralQueryDistUpdate,
    TwoLevelDns,
    Hierarchical,
}

impl Arch {
    pub const ALL: [Arch; 4] = [
        Arch::Centralized,
        Arch::CentralQueryDistUpdate,
        Arch::TwoLevelDns,
        Arch::Hierarchical,
    ];

    /// Display label ("Architecture 1" ... "Architecture 4").
    pub fn label(self) -> &'static str {
        match self {
            Arch::Centralized => "Architecture 1 (centralized)",
            Arch::CentralQueryDistUpdate => "Architecture 2 (central query, dist. update)",
            Arch::TwoLevelDns => "Architecture 3 (two-level DNS)",
            Arch::Hierarchical => "Architecture 4 (hierarchical)",
        }
    }
}

/// A cluster ready to run, with the placement map the update streams need.
pub struct BuiltCluster {
    pub sim: DesCluster,
    /// Owner site of each block (where its sensors report).
    pub block_owner: HashMap<IdPath, SiteAddr>,
    /// All site addresses in use.
    pub sites: Vec<SiteAddr>,
}

/// Builds a cluster in the given architecture. `sites` is the machine
/// budget (the paper uses 9).
pub fn build_cluster(
    arch: Arch,
    db: &ParkingDb,
    costs: CostModel,
    config: OaConfig,
    sites: usize,
) -> BuiltCluster {
    assert!(sites >= 2, "need at least a central site plus one worker");
    match arch {
        Arch::Centralized => build_centralized(db, costs, config),
        Arch::CentralQueryDistUpdate => build_central_query(db, costs, config, sites, false),
        Arch::TwoLevelDns => build_central_query(db, costs, config, sites, true),
        Arch::Hierarchical => build_hierarchical(db, costs, config, sites),
    }
}

fn oa(addr: u32, db: &ParkingDb, config: &OaConfig) -> OrganizingAgent {
    OrganizingAgent::new(SiteAddr(addr), db.service.clone(), config.clone())
}

fn build_centralized(db: &ParkingDb, costs: CostModel, config: OaConfig) -> BuiltCluster {
    let mut sim = DesCluster::new(costs);
    let central = oa(1, db, &config);
    central
        .db_mut()
        .bootstrap_owned(&db.master, &db.root_path(), true)
        .expect("bootstrap centralized");
    sim.dns
        .register(&db.service.dns_name(&db.root_path()), SiteAddr(1));
    sim.add_site(central);
    sim.route_override = Some(SiteAddr(1));
    let block_owner = db
        .all_block_paths()
        .into_iter()
        .map(|p| (p, SiteAddr(1)))
        .collect();
    BuiltCluster { sim, block_owner, sites: vec![SiteAddr(1)] }
}

/// Architectures ii and iii share their placement; `dns_blocks` controls
/// whether clients can see the block mapping (iii) or not (ii).
fn build_central_query(
    db: &ParkingDb,
    costs: CostModel,
    config: OaConfig,
    sites: usize,
    dns_blocks: bool,
) -> BuiltCluster {
    let mut sim = DesCluster::new(costs);
    let central = oa(1, db, &config);
    // Central owns the hierarchy down to the neighborhoods (nodes only —
    // block content lives on the worker sites).
    central
        .db_mut()
        .bootstrap_owned(&db.master, &db.root_path(), false)
        .expect("root");
    let mut chain = db.root_path().child("state", "PA");
    central.db_mut().bootstrap_owned(&db.master, &chain, false).expect("state");
    chain = chain.child("county", "Allegheny");
    central.db_mut().bootstrap_owned(&db.master, &chain, false).expect("county");
    for ci in 0..db.params.cities {
        central
            .db_mut()
            .bootstrap_owned(&db.master, &db.city_path(ci), false)
            .expect("city");
        for ni in 0..db.params.neighborhoods_per_city {
            central
                .db_mut()
                .bootstrap_owned(&db.master, &db.neighborhood_path(ci, ni), false)
                .expect("neighborhood");
        }
    }
    sim.dns
        .register(&db.service.dns_name(&db.root_path()), SiteAddr(1));

    // Blocks round-robin over the worker sites.
    let workers: Vec<SiteAddr> = (2..=sites as u32).map(SiteAddr).collect();
    let mut agents: HashMap<SiteAddr, OrganizingAgent> = workers
        .iter()
        .map(|&a| (a, oa(a.0, db, &config)))
        .collect();
    let mut block_owner = HashMap::new();
    for (i, bp) in db.all_block_paths().into_iter().enumerate() {
        let site = workers[i % workers.len()];
        agents
            .get_mut(&site)
            .expect("worker exists")
            .db_mut()
            .bootstrap_owned(&db.master, &bp, true)
            .expect("block");
        // The mapping is always in the authoritative store (the OAs need
        // it to dispatch subqueries); architecture ii merely withholds it
        // from *clients* via route_override.
        sim.dns.register(&db.service.dns_name(&bp), site);
        block_owner.insert(bp, site);
    }
    sim.add_site(central);
    let mut all_sites = vec![SiteAddr(1)];
    for (addr, agent) in agents {
        sim.add_site(agent);
        all_sites.push(addr);
    }
    all_sites.sort();
    if !dns_blocks {
        // Architecture ii: clients cannot resolve blocks; everything
        // enters through the central site.
        sim.route_override = Some(SiteAddr(1));
    }
    BuiltCluster { sim, block_owner, sites: all_sites }
}

fn build_hierarchical(
    db: &ParkingDb,
    costs: CostModel,
    config: OaConfig,
    sites: usize,
) -> BuiltCluster {
    let mut sim = DesCluster::new(costs);
    let nbhd_total = db.params.cities * db.params.neighborhoods_per_city;
    let needed = 1 + db.params.cities + nbhd_total;
    assert!(
        sites >= needed.min(9),
        "hierarchical placement needs {needed} sites, have {sites}"
    );

    // Site 1: the rest of the hierarchy (root, state, county).
    let top = oa(1, db, &config);
    top.db_mut()
        .bootstrap_owned(&db.master, &db.root_path(), false)
        .expect("root");
    let state = db.root_path().child("state", "PA");
    top.db_mut().bootstrap_owned(&db.master, &state, false).expect("state");
    top.db_mut()
        .bootstrap_owned(&db.master, &db.county_path(), false)
        .expect("county");
    sim.dns
        .register(&db.service.dns_name(&db.root_path()), SiteAddr(1));
    sim.add_site(top);
    let mut all_sites = vec![SiteAddr(1)];

    // Cities on the next sites.
    let mut next = 2u32;
    for ci in 0..db.params.cities {
        let addr = SiteAddr(next);
        next += 1;
        let a = oa(addr.0, db, &config);
        a.db_mut().bootstrap_owned(&db.master, &db.city_path(ci), false)
            .expect("city");
        sim.dns.register(&db.service.dns_name(&db.city_path(ci)), addr);
        sim.add_site(a);
        all_sites.push(addr);
    }

    // Neighborhood subtrees on the remaining sites.
    let mut block_owner = HashMap::new();
    for ci in 0..db.params.cities {
        for ni in 0..db.params.neighborhoods_per_city {
            let addr = SiteAddr(next);
            next += 1;
            let a = oa(addr.0, db, &config);
            let np = db.neighborhood_path(ci, ni);
            a.db_mut().bootstrap_owned(&db.master, &np, true).expect("neighborhood");
            sim.dns.register(&db.service.dns_name(&np), addr);
            sim.add_site(a);
            all_sites.push(addr);
            for bi in 0..db.params.blocks_per_neighborhood {
                block_owner.insert(db.block_path(ci, ni, bi), addr);
            }
        }
    }
    BuiltCluster { sim, block_owner, sites: all_sites }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parkingdb::DbParams;
    use crate::workload::{QueryType, Workload};
    use simnet::ClientLoad;

    fn small_db() -> ParkingDb {
        // A reduced database keeps the test fast while exercising every
        // placement branch.
        ParkingDb::generate(
            DbParams {
                cities: 2,
                neighborhoods_per_city: 3,
                blocks_per_neighborhood: 4,
                spaces_per_block: 3,
            },
            1,
        )
    }

    fn run_queries(built: &mut BuiltCluster, db: &ParkingDb, n_expected: usize) {
        let mut w = Workload::qw_mix(db, 42);
        built.sim.set_client_load(ClientLoad {
            clients: 4,
            think_time: 0.01,
            query_gen: Box::new(move |_| w.next_query()),
        });
        built.sim.run_until(20.0);
        let ok = built.sim.replies().iter().filter(|r| r.ok).count();
        assert!(ok >= n_expected, "only {ok} ok replies");
        assert!(built.sim.replies().iter().all(|r| r.ok));
    }

    #[test]
    fn centralized_answers_queries() {
        let db = small_db();
        let mut built = build_cluster(
            Arch::Centralized,
            &db,
            CostModel::default(),
            OaConfig::default(),
            9,
        );
        run_queries(&mut built, &db, 20);
    }

    #[test]
    fn central_query_dist_update_answers_queries() {
        let db = small_db();
        let mut built = build_cluster(
            Arch::CentralQueryDistUpdate,
            &db,
            CostModel::default(),
            OaConfig::default(),
            9,
        );
        run_queries(&mut built, &db, 20);
        // All queries entered through the central site.
        assert!(built.sim.site(SiteAddr(1)).unwrap().stats.user_queries > 0);
    }

    #[test]
    fn two_level_dns_routes_type1_to_blocks() {
        let db = small_db();
        let mut built = build_cluster(
            Arch::TwoLevelDns,
            &db,
            CostModel::default(),
            OaConfig::default(),
            9,
        );
        let mut w = Workload::uniform(&db, QueryType::T1, 5);
        built.sim.set_client_load(ClientLoad {
            clients: 2,
            think_time: 0.01,
            query_gen: Box::new(move |_| w.next_query()),
        });
        built.sim.run_until(10.0);
        assert!(built.sim.replies().iter().all(|r| r.ok));
        // Type 1 queries land on worker sites, not the central one.
        let central_queries = built.sim.site(SiteAddr(1)).unwrap().stats.user_queries;
        let worker_queries: u64 = (2..=9)
            .filter_map(|a| built.sim.site(SiteAddr(a)).map(|s| s.stats.user_queries))
            .sum();
        assert!(worker_queries > 0);
        assert_eq!(central_queries, 0);
    }

    #[test]
    fn hierarchical_distributes_queries() {
        let db = small_db();
        let mut built = build_cluster(
            Arch::Hierarchical,
            &db,
            CostModel::default(),
            OaConfig::default(),
            9,
        );
        run_queries(&mut built, &db, 20);
        // Neighborhood sites (4..9) saw type 1/2 queries directly.
        let nbhd_queries: u64 = (4..=9)
            .filter_map(|a| built.sim.site(SiteAddr(a)).map(|s| s.stats.user_queries))
            .sum();
        assert!(nbhd_queries > 0);
    }

    #[test]
    fn block_owner_map_covers_all_blocks() {
        let db = small_db();
        for arch in Arch::ALL {
            let built = build_cluster(arch, &db, CostModel::default(), OaConfig::default(), 9);
            assert_eq!(
                built.block_owner.len(),
                db.all_block_paths().len(),
                "{arch:?}"
            );
        }
    }
}
