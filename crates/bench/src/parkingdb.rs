//! Synthetic Parking Space Finder databases (§5.1).
//!
//! The paper's base database models a small part of a nationwide service:
//! 2 cities × 3 neighborhoods × 20 blocks × 20 parking spaces = 2400
//! spaces under `usRegion NE / state PA / county Allegheny`. The "large"
//! variant (Fig. 11) multiplies neighborhoods, blocks and spaces by 2 each
//! for an 8× document.

use std::sync::Arc;

use irisnet_core::{IdPath, Service};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sensorxml::Document;

/// Database shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbParams {
    pub cities: usize,
    pub neighborhoods_per_city: usize,
    pub blocks_per_neighborhood: usize,
    pub spaces_per_block: usize,
}

impl DbParams {
    /// The paper's base database (2400 spaces).
    pub fn small() -> DbParams {
        DbParams {
            cities: 2,
            neighborhoods_per_city: 3,
            blocks_per_neighborhood: 20,
            spaces_per_block: 20,
        }
    }

    /// The 8× database of Fig. 11 (19200 spaces): double the
    /// neighborhoods, blocks and spaces.
    pub fn large() -> DbParams {
        DbParams {
            cities: 2,
            neighborhoods_per_city: 6,
            blocks_per_neighborhood: 40,
            spaces_per_block: 40,
        }
    }

    /// Total parking spaces.
    pub fn total_spaces(&self) -> usize {
        self.cities * self.neighborhoods_per_city * self.blocks_per_neighborhood
            * self.spaces_per_block
    }
}

const CITY_NAMES: &[&str] = &[
    "Pittsburgh",
    "Philadelphia",
    "Harrisburg",
    "Erie",
    "Altoona",
    "Scranton",
];

/// City names: the paper's named cities first, then synthetic `c7`, `c8`,
/// ... so the scale experiments can grow the hierarchy past the base
/// database without perturbing the documents small runs generate.
fn city_names(cities: usize) -> Vec<String> {
    (0..cities)
        .map(|ci| match CITY_NAMES.get(ci) {
            Some(name) => (*name).to_string(),
            None => format!("c{}", ci + 1),
        })
        .collect()
}

/// A generated master document plus path helpers.
pub struct ParkingDb {
    pub service: Arc<Service>,
    pub params: DbParams,
    pub master: Document,
    city_names: Vec<String>,
}

impl ParkingDb {
    /// Generates a database with deterministic pseudo-random availability
    /// and prices.
    pub fn generate(params: DbParams, seed: u64) -> ParkingDb {
        let city_names = city_names(params.cities);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut doc = Document::new();
        let us = doc.create_element("usRegion");
        doc.set_attr(us, "id", "NE");
        doc.set_root(us).expect("fresh document");
        let state = child(&mut doc, us, "state", "PA");
        let county = child(&mut doc, state, "county", "Allegheny");
        for city_name in &city_names {
            let city = child(&mut doc, county, "city", city_name);
            for ni in 0..params.neighborhoods_per_city {
                let n = child(&mut doc, city, "neighborhood", &format!("n{}", ni + 1));
                doc.set_attr(n, "zipcode", format!("152{:02}", ni + 1));
                for bi in 0..params.blocks_per_neighborhood {
                    let b = child(&mut doc, n, "block", &format!("{}", bi + 1));
                    for si in 0..params.spaces_per_block {
                        let sp = child(&mut doc, b, "parkingSpace", &format!("{}", si + 1));
                        let avail = doc.create_element("available");
                        doc.append_child(sp, avail);
                        let yes = rng.random_bool(0.5);
                        doc.set_text_content(avail, if yes { "yes" } else { "no" });
                        let price = doc.create_element("price");
                        doc.append_child(sp, price);
                        let p = [0, 25, 50][rng.random_range(0..3usize)];
                        doc.set_text_content(price, p.to_string());
                        let meter = doc.create_element("meterHours");
                        doc.append_child(sp, meter);
                        doc.set_text_content(meter, format!("{}", rng.random_range(1..=8)));
                    }
                }
            }
        }
        ParkingDb {
            service: Service::parking(),
            params,
            master: doc,
            city_names,
        }
    }

    /// Path of the document root node.
    pub fn root_path(&self) -> IdPath {
        IdPath::from_pairs([("usRegion", "NE")])
    }

    /// Path of the (single) county node.
    pub fn county_path(&self) -> IdPath {
        self.root_path()
            .child("state", "PA")
            .child("county", "Allegheny")
    }

    /// City name by index.
    pub fn city_name(&self, ci: usize) -> &str {
        &self.city_names[ci]
    }

    /// Path of city `ci`.
    pub fn city_path(&self, ci: usize) -> IdPath {
        self.county_path().child("city", self.city_names[ci].as_str())
    }

    /// Path of neighborhood `ni` of city `ci` (0-based indices).
    pub fn neighborhood_path(&self, ci: usize, ni: usize) -> IdPath {
        self.city_path(ci).child("neighborhood", format!("n{}", ni + 1))
    }

    /// Path of a block (0-based indices).
    pub fn block_path(&self, ci: usize, ni: usize, bi: usize) -> IdPath {
        self.neighborhood_path(ci, ni)
            .child("block", format!("{}", bi + 1))
    }

    /// Path of a parking space (0-based indices).
    pub fn space_path(&self, ci: usize, ni: usize, bi: usize, si: usize) -> IdPath {
        self.block_path(ci, ni, bi)
            .child("parkingSpace", format!("{}", si + 1))
    }

    /// All block paths in generation order.
    pub fn all_block_paths(&self) -> Vec<IdPath> {
        let mut out = Vec::new();
        for ci in 0..self.params.cities {
            for ni in 0..self.params.neighborhoods_per_city {
                for bi in 0..self.params.blocks_per_neighborhood {
                    out.push(self.block_path(ci, ni, bi));
                }
            }
        }
        out
    }

    /// All parking-space paths (one per sensor).
    pub fn all_space_paths(&self) -> Vec<IdPath> {
        let mut out = Vec::with_capacity(self.params.total_spaces());
        for ci in 0..self.params.cities {
            for ni in 0..self.params.neighborhoods_per_city {
                for bi in 0..self.params.blocks_per_neighborhood {
                    for si in 0..self.params.spaces_per_block {
                        out.push(self.space_path(ci, ni, bi, si));
                    }
                }
            }
        }
        out
    }
}

fn child(
    doc: &mut Document,
    parent: sensorxml::NodeId,
    tag: &str,
    id: &str,
) -> sensorxml::NodeId {
    let e = doc.create_element(tag);
    doc.set_attr(e, "id", id);
    doc.append_child(parent, e);
    e
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_db_has_2400_spaces() {
        let params = DbParams::small();
        assert_eq!(params.total_spaces(), 2400);
        let db = ParkingDb::generate(params, 1);
        // Count actual parkingSpace elements.
        let root = db.master.root().unwrap();
        let count = db
            .master
            .descendants(root)
            .filter(|&n| db.master.name(n) == "parkingSpace")
            .count();
        assert_eq!(count, 2400);
    }

    #[test]
    fn large_db_is_8x() {
        assert_eq!(DbParams::large().total_spaces(), 2400 * 8);
    }

    #[test]
    fn paths_resolve_in_master() {
        let db = ParkingDb::generate(DbParams::small(), 1);
        assert!(db.root_path().resolve(&db.master).is_some());
        assert!(db.block_path(1, 2, 19).resolve(&db.master).is_some());
        assert!(db.space_path(0, 0, 0, 0).resolve(&db.master).is_some());
        assert_eq!(db.all_block_paths().len(), 2 * 3 * 20);
        assert_eq!(db.all_space_paths().len(), 2400);
    }

    #[test]
    fn city_names_extend_past_the_named_set() {
        let db = ParkingDb::generate(
            DbParams {
                cities: 8,
                neighborhoods_per_city: 1,
                blocks_per_neighborhood: 1,
                spaces_per_block: 1,
            },
            1,
        );
        assert_eq!(db.city_name(0), "Pittsburgh");
        assert_eq!(db.city_name(6), "c7");
        assert!(db.city_path(7).resolve(&db.master).is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ParkingDb::generate(DbParams::small(), 7);
        let b = ParkingDb::generate(DbParams::small(), 7);
        assert!(sensorxml::unordered_eq(
            &a.master,
            a.master.root().unwrap(),
            &b.master,
            b.master.root().unwrap()
        ));
    }

    #[test]
    fn spaces_have_reading_fields() {
        let db = ParkingDb::generate(DbParams::small(), 3);
        let sp = db.space_path(0, 1, 5, 9).resolve(&db.master).unwrap();
        let avail = db.master.child_by_name(sp, "available").unwrap();
        let t = db.master.text_content(avail);
        assert!(t == "yes" || t == "no");
        let price = db.master.child_by_name(sp, "price").unwrap();
        assert!(["0", "25", "50"].contains(&db.master.text_content(price).as_str()));
    }
}
