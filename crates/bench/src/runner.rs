//! Experiment harness helpers: throughput runs and table formatting.

use simnet::{latency_percentiles, CostModel, DesCluster, Percentiles};

/// The calibrated cost model used by all throughput experiments.
///
/// Engine CPU is *measured from the real handler* and scaled by
/// `cpu_scale = 220`, which puts a type-1 local answer at ~30 ms — the
/// ballpark of the paper's 2 GHz P4 + Java 1.3 prototype (Fig. 11) — while
/// preserving the real relative costs of forwarding vs answering vs
/// gathering. Fixed costs cover message (de)construction and update
/// application (5 ms ⇒ the paper's 200 updates/s per OA).
pub fn paper_costs() -> CostModel {
    CostModel {
        net_latency: 0.001,
        msg_overhead: 0.003,
        query_cpu: 0.002,
        update_cpu: 0.005,
        cpu_scale: 220.0,
        dns_hop_latency: 0.002,
        doc_scan_cpu: 0.0,
    }
}

/// Results of one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Steady-state queries per second (completions after warmup).
    pub qps: f64,
    /// Latency percentiles over the measured window.
    pub latency: Percentiles,
    /// Total completed queries (including warmup).
    pub completed: usize,
    /// Fraction of failed queries.
    pub error_rate: f64,
}

/// Runs the simulator to `duration` (virtual seconds) and reports
/// steady-state throughput over `[warmup, duration]`.
pub fn run_throughput(sim: &mut DesCluster, duration: f64, warmup: f64) -> ThroughputResult {
    assert!(warmup < duration);
    sim.run_until(duration);
    let replies = sim.replies();
    let measured: Vec<_> = replies
        .iter()
        .filter(|r| r.completed_at >= warmup && r.completed_at <= duration)
        .collect();
    let errors = replies.iter().filter(|r| !r.ok).count();
    let lat: Vec<f64> = measured
        .iter()
        .map(|r| r.completed_at - r.posed_at)
        .collect();
    ThroughputResult {
        qps: measured.len() as f64 / (duration - warmup),
        latency: latency_percentiles(&lat),
        completed: replies.len(),
        error_rate: if replies.is_empty() {
            0.0
        } else {
            errors as f64 / replies.len() as f64
        },
    }
}

/// Formats one row of a fixed-width results table.
pub fn table_row(label: &str, values: &[f64]) -> String {
    let mut s = format!("{label:<50}");
    for v in values {
        s.push_str(&format!(" {v:>10.1}"));
    }
    s
}

/// Prints a table header plus separator.
pub fn table_header(label: &str, columns: &[&str]) -> String {
    let mut s = format!("{label:<50}");
    for c in columns {
        s.push_str(&format!(" {c:>10}"));
    }
    let len = s.len();
    s.push('\n');
    s.push_str(&"-".repeat(len));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting() {
        let h = table_header("Workload", &["QW-1", "QW-2"]);
        assert!(h.contains("QW-1"));
        assert!(h.contains("---"));
        let r = table_row("Architecture 4", &[61.25, 43.0]);
        assert!(r.contains("61.2") || r.contains("61.3"));
    }
}
