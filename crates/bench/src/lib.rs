//! # irisnet-bench
//!
//! Workload generators, the four sensor-database architectures of the
//! paper's Fig. 6, and the experiment harness reproducing every table and
//! figure of the evaluation (§5). The experiment binaries live in
//! `src/bin/exp_*.rs`; criterion micro-benches in `benches/`.

pub mod arch;
pub mod parkingdb;
pub mod runner;
pub mod workload;

pub use arch::{build_cluster, Arch, BuiltCluster};
pub use parkingdb::{DbParams, ParkingDb};
pub use runner::{run_throughput, table_row, ThroughputResult};
pub use workload::{QueryType, ScaleHierarchy, Workload};
