//! Wide-area deployment (paper §7: "we anticipate that these advantages
//! will only increase when IrisNet is deployed over hundreds of sites and
//! thousands of miles").
//!
//! Two metro regions, 2 ms apart internally and 50 ms apart from each
//! other: city Pittsburgh's sites in region A, city Philadelphia's in
//! region B, the hierarchy top in region A. Cross-city (type 4) queries
//! pay the wide-area link on every gather — unless caching keeps the
//! remote city's data nearby.

use irisdns::SiteAddr;
use irisnet_bench::runner::{paper_costs, run_throughput};
use irisnet_bench::{build_cluster, Arch, DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{CacheMode, OaConfig};
use simnet::ClientLoad;

const DURATION: f64 = 60.0;
const WARMUP: f64 = 20.0;
const WAN: f64 = 0.050;
const LAN: f64 = 0.002;

fn run_one(cache: CacheMode, qt: QueryType) -> (f64, f64) {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let cfg = OaConfig { cache, ..OaConfig::default() };
    let mut built = build_cluster(Arch::Hierarchical, &db, paper_costs(), cfg, 9);

    // Region A: site 1 (top), 2 (city P), 4..6 (P's neighborhoods).
    // Region B: site 3 (city Q), 7..9 (Q's neighborhoods).
    let region_a = [1u32, 2, 4, 5, 6].map(SiteAddr);
    let region_b = [3u32, 7, 8, 9].map(SiteAddr);
    for &a in &region_a {
        for &b in &region_b {
            built.sim.set_link_latency(a, b, WAN);
        }
    }
    for r in [&region_a[..], &region_b[..]] {
        for (i, &a) in r.iter().enumerate() {
            for &b in &r[i + 1..] {
                built.sim.set_link_latency(a, b, LAN);
            }
        }
    }

    let mut w = Workload::uniform(&db, qt, 61);
    built.sim.set_client_load(ClientLoad {
        clients: 8,
        think_time: 0.1,
        query_gen: Box::new(move |_| w.next_query()),
    });
    let res = run_throughput(&mut built.sim, DURATION, WARMUP);
    assert!(res.error_rate < 0.01);
    (res.latency.p50 * 1000.0, res.latency.p90 * 1000.0)
}

fn main() {
    println!("== Wide-area deployment: two regions 50 ms apart ==\n");
    println!(
        "{:<10} {:>18} {:>18} {:>18} {:>18}",
        "Workload", "no-cache p50 (ms)", "no-cache p90", "cached p50 (ms)", "cached p90"
    );
    println!("{}", "-".repeat(88));
    for qt in [QueryType::T3, QueryType::T4] {
        let (off50, off90) = run_one(CacheMode::Off, qt);
        let (on50, on90) = run_one(CacheMode::Aggressive, qt);
        println!(
            "{:<10} {:>18.0} {:>18.0} {:>18.0} {:>18.0}",
            qt.workload_name(),
            off50,
            off90,
            on50,
            on90
        );
    }
    println!("\nType 4 queries cross the 50 ms wide-area link to gather without");
    println!("caching; with caching the county site keeps both cities' data local");
    println!("and the wide-area hops disappear from the steady state.");
}
