//! Fig. 8 — Load balancing under a skewed workload (§5.3).
//!
//! 90% of type 1/2 queries target a single neighborhood. The *original*
//! hierarchical distribution keeps that neighborhood's 20 blocks on one
//! site; the *balanced* distribution spreads them across all nine sites.
//! Paper: the balanced distribution achieves ~4× the throughput.

use irisdns::SiteAddr;
use irisnet_bench::runner::run_throughput;
use irisnet_bench::{build_cluster, Arch, BuiltCluster, DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{CacheBudget, EvictionPolicy, OaConfig, OrganizingAgent};
use simnet::{ClientLoad, CostModel, DesCluster};

const DURATION: f64 = 40.0;
const WARMUP: f64 = 10.0;

fn costs() -> CostModel {
    irisnet_bench::runner::paper_costs()
}

/// Original Architecture-4 placement.
fn original(db: &ParkingDb) -> BuiltCluster {
    original_with(db, OaConfig::default())
}

fn original_with(db: &ParkingDb, cfg: OaConfig) -> BuiltCluster {
    build_cluster(Arch::Hierarchical, db, costs(), cfg, 9)
}

/// Architecture-4 placement with the hot neighborhood's blocks spread
/// round-robin across all nine sites.
fn balanced(db: &ParkingDb) -> BuiltCluster {
    let mut built = build_cluster(Arch::Hierarchical, db, costs(), OaConfig::default(), 9);
    // Rebuild from scratch: same as hierarchical, but blocks of (0,0) are
    // owned by sites 1..9 round-robin.
    let mut sim = DesCluster::new(costs());
    let hot = db.neighborhood_path(0, 0);

    // Recreate every agent with the amended placement.
    let mut agents: Vec<OrganizingAgent> = Vec::new();
    let config = OaConfig::default();
    // Site 1: root/state/county nodes.
    let top = OrganizingAgent::new(SiteAddr(1), db.service.clone(), config.clone());
    top.db_mut().bootstrap_owned(&db.master, &db.root_path(), false).unwrap();
    top.db_mut()
        .bootstrap_owned(&db.master, &db.root_path().child("state", "PA"), false)
        .unwrap();
    top.db_mut().bootstrap_owned(&db.master, &db.county_path(), false).unwrap();
    sim.dns.register(&db.service.dns_name(&db.root_path()), SiteAddr(1));
    agents.push(top);
    // Cities on 2..3.
    let mut next = 2u32;
    for ci in 0..db.params.cities {
        let a = OrganizingAgent::new(SiteAddr(next), db.service.clone(), config.clone());
        a.db_mut().bootstrap_owned(&db.master, &db.city_path(ci), false).unwrap();
        sim.dns.register(&db.service.dns_name(&db.city_path(ci)), SiteAddr(next));
        agents.push(a);
        next += 1;
    }
    // Neighborhoods on the rest; the hot one keeps only its node.
    for ci in 0..db.params.cities {
        for ni in 0..db.params.neighborhoods_per_city {
            let np = db.neighborhood_path(ci, ni);
            let a = OrganizingAgent::new(SiteAddr(next), db.service.clone(), config.clone());
            if np == hot {
                a.db_mut().bootstrap_owned(&db.master, &np, false).unwrap();
            } else {
                a.db_mut().bootstrap_owned(&db.master, &np, true).unwrap();
            }
            sim.dns.register(&db.service.dns_name(&np), SiteAddr(next));
            agents.push(a);
            next += 1;
        }
    }
    // Hot blocks round-robin over ALL sites.
    let total_sites = agents.len();
    for bi in 0..db.params.blocks_per_neighborhood {
        let bp = db.block_path(0, 0, bi);
        let site_idx = bi % total_sites;
        agents[site_idx]
            .db_mut()
            .bootstrap_owned(&db.master, &bp, true)
            .unwrap();
        let addr = agents[site_idx].addr;
        sim.dns.register(&db.service.dns_name(&bp), addr);
        built.block_owner.insert(bp, addr);
    }
    let sites: Vec<SiteAddr> = agents.iter().map(|a| a.addr).collect();
    for a in agents {
        sim.add_site(a);
    }
    BuiltCluster { sim, block_owner: built.block_owner, sites }
}

fn run(built: &mut BuiltCluster, mut w: Workload, label: &str) -> f64 {
    built.sim.set_client_load(ClientLoad {
        clients: 48,
        think_time: 0.02,
        query_gen: Box::new(move |_| w.next_query()),
    });
    let res = run_throughput(&mut built.sim, DURATION, WARMUP);
    assert!(res.error_rate < 0.01, "{label}: error rate {}", res.error_rate);
    res.qps
}

fn main() {
    println!("== Fig. 8: load balancing under 90% skew to one neighborhood ==\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10}",
        "Distribution", "QW-1", "QW-2", "QW-Mix2"
    );
    println!("{}", "-".repeat(60));
    // The third arm bounds every site's cache to ~8 blocks of local
    // information under LRU: skewed traffic concentrates on one
    // neighborhood, so the hot blocks stay resident and throughput should
    // track the unbounded original closely.
    let budgeted = OaConfig {
        eviction: EvictionPolicy::Lru { budget: CacheBudget::nodes(640) },
        ..OaConfig::default()
    };
    for (label, arm) in [("Original (Arch 4)", 0), ("Balanced", 1), ("Original + LRU 640n", 2)] {
        let mut row = format!("{label:<26}");
        for (wname, qt) in [("QW-1", Some(QueryType::T1)), ("QW-2", Some(QueryType::T2)), ("QW-Mix2", None)] {
            let db = ParkingDb::generate(DbParams::small(), 1);
            let w = match qt {
                Some(t) => Workload::uniform(&db, t, 21).with_skew(0, 0, 0.9),
                None => Workload::qw_mix2(&db, 22).with_skew(0, 0, 0.9),
            };
            let mut built = match arm {
                1 => balanced(&db),
                2 => original_with(&db, budgeted.clone()),
                _ => original(&db),
            };
            let qps = run(&mut built, w, wname);
            row.push_str(&format!(" {qps:>10.1}"));
        }
        println!("{row}");
    }
    println!("\n(paper: balanced distribution reaches ~4x the original's throughput;");
    println!(" the LRU-budgeted arm shows a bounded cache keeps the skewed hot set resident)");
}
