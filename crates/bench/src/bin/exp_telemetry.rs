//! Telemetry-plane experiment: overhead guard, scrape cost vs window
//! depth, and a forced-fault flight-recorder capture.
//!
//! Three sections, one JSON object on stdout:
//!
//! * `off_qps` / `on_qps` — the BENCH_PR2 hot-site workload (8 client
//!   threads × 8 queries, serial owner site) with no recorder vs the full
//!   `TelemetryRecorder` (windows + flight recorder + health FSM, spans
//!   not retained). Interleaved rounds, best-of like `obs_overhead`;
//!   `scripts/telemetry_smoke.sh` holds `telemetry_cost_pct` under its
//!   budget (default 5 %).
//! * `scrape` — per window depth (6 / 24 / 96 buckets): mean scrape
//!   latency and payload size against a warmed two-site cluster. The
//!   depth knob is the scrape's only size driver, so this is the
//!   EXPERIMENTS.md overhead-vs-depth table.
//! * `flight` — kills the remote site, degrades a query to
//!   `partial="true"`, scrapes the root site and writes the raw payload
//!   to argv[1] for jq-level validation; reports what the parsed payload
//!   contained.

use std::sync::Arc;
use std::time::{Duration, Instant};

use irisdns::SiteAddr;
use irisnet_bench::{DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{CacheMode, OaConfig, OrganizingAgent, RetryPolicy, Status};
use irisobs::{parse_payload, TelemetryConfig, TelemetryRecorder, WHAT_ALL};
use simnet::{LiveClient, LiveCluster};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 8;
const PASSES_PER_ROUND: usize = 10;
const SCRAPES_PER_DEPTH: usize = 50;

/// Shape for the two-site sections: one city, two neighborhoods, so the
/// uniform T3 stream reliably crosses the site-1 ↔ site-2 boundary.
fn two_site_params() -> DbParams {
    DbParams {
        cities: 1,
        neighborhoods_per_city: 2,
        blocks_per_neighborhood: 2,
        spaces_per_block: 2,
    }
}

fn mixes(db: &ParkingDb) -> Vec<Vec<String>> {
    (0..CLIENTS)
        .map(|t| {
            let mut w1 = Workload::uniform(db, QueryType::T1, 100 + t as u64);
            let mut w3 = Workload::uniform(db, QueryType::T3, 200 + t as u64);
            (0..QUERIES_PER_CLIENT)
                .map(|i| if i % 2 == 0 { w1.next_query() } else { w3.next_query() })
                .collect()
        })
        .collect()
}

fn hot_site(
    db: &Arc<ParkingDb>,
    rec: Option<&Arc<TelemetryRecorder>>,
) -> (LiveCluster, Vec<LiveClient>) {
    let mut cluster = LiveCluster::new(db.service.clone());
    if let Some(r) = rec {
        cluster.set_recorder(r.clone());
    }
    let oa = OrganizingAgent::new(SiteAddr(1), db.service.clone(), OaConfig::default());
    oa.db_mut().bootstrap_owned(&db.master, &db.root_path(), true).unwrap();
    cluster.register_owner(&db.root_path(), SiteAddr(1));
    cluster.add_site(oa);
    let clients = (0..CLIENTS).map(|_| cluster.client()).collect();
    (cluster, clients)
}

fn pass(clients: &[LiveClient], mixes: &[Vec<String>]) {
    std::thread::scope(|s| {
        for (cl, mix) in clients.iter().zip(mixes) {
            s.spawn(move || {
                for q in mix {
                    let r = cl
                        .pose_query_at(q, SiteAddr(1), Duration::from_secs(30))
                        .expect("hot-site reply");
                    assert!(r.ok, "query failed: {q}");
                }
            });
        }
    });
}

fn round(clients: &[LiveClient], mixes: &[Vec<String>]) -> f64 {
    let t0 = Instant::now();
    for _ in 0..PASSES_PER_ROUND {
        pass(clients, mixes);
    }
    (CLIENTS * QUERIES_PER_CLIENT * PASSES_PER_ROUND) as f64 / t0.elapsed().as_secs_f64()
}

/// Two-site split (site 2 owns neighborhood (0,1)); `cfg` controls cache
/// and retry policy.
fn two_site(
    db: &ParkingDb,
    rec: &Arc<TelemetryRecorder>,
    cfg: OaConfig,
) -> LiveCluster {
    let svc = db.service.clone();
    let mut cluster = LiveCluster::new(svc.clone());
    cluster.set_recorder(rec.clone());
    let oa1 = OrganizingAgent::new(SiteAddr(1), svc.clone(), cfg.clone());
    oa1.db_mut().bootstrap_owned(&db.master, &db.root_path(), true).unwrap();
    let carved = db.neighborhood_path(0, 1);
    oa1.db_mut().set_status_subtree(&carved, Status::Complete).unwrap();
    oa1.db_mut().evict(&carved).unwrap();
    let oa2 = OrganizingAgent::new(SiteAddr(2), svc.clone(), cfg);
    oa2.db_mut().bootstrap_owned(&db.master, &carved, true).unwrap();
    cluster.register_owner(&db.root_path(), SiteAddr(1));
    cluster.register_owner(&carved, SiteAddr(2));
    cluster.add_site(oa1);
    cluster.add_site(oa2);
    cluster
}

/// Mean scrape latency (µs) and payload bytes at one window depth,
/// measured against a warmed cluster.
fn scrape_at_depth(db: &ParkingDb, depth: usize) -> (f64, usize) {
    let rec = TelemetryRecorder::with_config(TelemetryConfig {
        window_depth: depth,
        ..TelemetryConfig::default()
    });
    let mut cluster = two_site(db, &rec, OaConfig::default());
    let mut w3 = Workload::uniform(db, QueryType::T3, 11);
    for _ in 0..32 {
        let r = cluster
            .pose_query_at(&w3.next_query(), SiteAddr(1), Duration::from_secs(30))
            .expect("warm reply");
        assert!(r.ok);
    }
    // A wall-clock warm run fills one 5s bucket no matter the depth; to
    // measure depth's effect on the payload, fill every retained bucket by
    // sampling at spaced synthetic timestamps (one counter bump each).
    let reg = rec.metrics();
    for i in 0..depth {
        reg.counter(1, "oa.user_queries").add(1);
        rec.plane().sample_site(1, 10_000.0 + (i as f64) * 5.0, reg);
    }
    let mut bytes = 0usize;
    let t0 = Instant::now();
    for _ in 0..SCRAPES_PER_DEPTH {
        let p = cluster
            .scrape_site(SiteAddr(1), WHAT_ALL, Duration::from_secs(10))
            .expect("scrape reply");
        bytes = p.len();
    }
    let micros = t0.elapsed().as_secs_f64() * 1e6 / SCRAPES_PER_DEPTH as f64;
    cluster.shutdown();
    (micros, bytes)
}

/// Forced-fault capture: kill site 2, degrade a cross-site query, scrape
/// the flight dump and write the raw payload to `path`.
fn flight_capture(db: &ParkingDb, path: &str) -> (usize, bool, String) {
    let rec = TelemetryRecorder::new();
    let cfg = OaConfig {
        cache: CacheMode::Off,
        retry: RetryPolicy::bounded(0.25, 1),
        ..OaConfig::default()
    };
    let mut cluster = two_site(db, &rec, cfg);
    let q = Workload::uniform(db, QueryType::T3, 11).next_query();
    let warm = cluster
        .pose_query_at(&q, SiteAddr(1), Duration::from_secs(30))
        .expect("warm reply");
    assert!(warm.ok && !warm.partial, "warm query degraded");
    drop(cluster.stop_site(SiteAddr(2)).expect("site 2 running"));
    let degraded = cluster
        .pose_query_at(&q, SiteAddr(1), Duration::from_secs(30))
        .expect("degraded reply");
    assert!(degraded.partial, "dead site did not degrade the answer");
    let payload = cluster
        .scrape_site(SiteAddr(1), WHAT_ALL, Duration::from_secs(10))
        .expect("scrape reply");
    std::fs::write(path, &payload).expect("write payload file");
    let health2 = rec.plane().health(2).label().to_string();
    cluster.shutdown();
    let parsed = parse_payload(&payload).expect("own payload parses");
    let partial_trace = parsed.traces.iter().any(|t| t.trigger.contains("partial"));
    (parsed.traces.len(), partial_trace, health2)
}

fn main() {
    let payload_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/exp_telemetry_payload.jsonl".to_string());
    let rounds: usize = std::env::var("TELEMETRY_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let db = Arc::new(ParkingDb::generate(DbParams::small(), 1));
    let mixes = mixes(&db);

    // Section 1: overhead A/B, interleaved rounds, best-of.
    let rec = TelemetryRecorder::new();
    let (off_cluster, off_clients) = hot_site(&db, None);
    let (on_cluster, on_clients) = hot_site(&db, Some(&rec));
    pass(&off_clients, &mixes);
    pass(&on_clients, &mixes);
    let mut off = Vec::with_capacity(rounds);
    let mut on = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        off.push(round(&off_clients, &mixes));
        on.push(round(&on_clients, &mixes));
    }
    off_cluster.shutdown();
    on_cluster.shutdown();
    let best = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
    let off_qps = best(&off);
    let on_qps = best(&on);
    let cost_pct = (off_qps / on_qps - 1.0) * 100.0;

    // Sections 2 and 3 run on the two-site topology.
    let fault_db = ParkingDb::generate(two_site_params(), 42);
    let depths = [6usize, 24, 96];
    let scraped: Vec<(usize, f64, usize)> = depths
        .iter()
        .map(|&d| {
            let (micros, bytes) = scrape_at_depth(&fault_db, d);
            (d, micros, bytes)
        })
        .collect();
    let (traces, partial_trace, health2) = flight_capture(&fault_db, &payload_path);

    println!("{{");
    println!("  \"workload\": \"hot_site serial_inline: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries x {PASSES_PER_ROUND} passes/round\",");
    println!("  \"rounds\": {rounds},");
    println!("  \"off_qps\": {off_qps:.1},");
    println!("  \"on_qps\": {on_qps:.1},");
    println!("  \"telemetry_cost_pct\": {cost_pct:.2},");
    println!("  \"scrape\": [");
    for (i, (d, micros, bytes)) in scraped.iter().enumerate() {
        let comma = if i + 1 < scraped.len() { "," } else { "" };
        println!(
            "    {{\"window_depth\": {d}, \"scrape_micros\": {micros:.1}, \"payload_bytes\": {bytes}}}{comma}"
        );
    }
    println!("  ],");
    println!("  \"flight\": {{");
    println!("    \"payload_file\": \"{payload_path}\",");
    println!("    \"traces\": {traces},");
    println!("    \"partial_trace_captured\": {partial_trace},");
    println!("    \"dead_site_health\": \"{health2}\"");
    println!("  }}");
    println!("}}");
}
