//! PR 7 — sharded-runtime scale experiment: a 10,000-site hierarchy on
//! one host, threads ∝ cores, answers byte-identical to a DES replay.
//!
//! Two parts, both over [`ScaleHierarchy`] (one site per neighborhood,
//! one per city, one for the region top) under a Zipf-skewed QW-Mix:
//!
//! 1. **Headline arm** (default 10,000 sites, auto shards): poses a fixed
//!    query sequence sequentially and byte-compares the canonical answers
//!    to a DES replay of the same sequence on identically bootstrapped
//!    agents; then drives closed-loop client threads while sampling
//!    `/proc/self/status` for the process's peak OS thread count — which
//!    must stay within the runtime's `thread_budget()` plus the clients
//!    and harness threads, i.e. *not* grow with the 10,000 sites.
//! 2. **Sweep**: qps and p50/p99 latency vs shard count × site count.
//!
//! Emits `BENCH_PR7.json` to the path after `--out` (stdout otherwise).
//! Env knobs (for `scale_smoke.sh`): `SCALE_HEADLINE_SITES`,
//! `SCALE_SITES`, `SCALE_SHARDS`, `SCALE_CLIENTS`, `SCALE_QUERIES`,
//! `SCALE_ZIPF`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use irisdns::SiteAddr;
use irisnet_bench::ScaleHierarchy;
use irisnet_core::{Endpoint, Message, OaConfig};
use simnet::{
    latency_percentiles, CostModel, DesCluster, Percentiles, ShardConfig, ShardedCluster,
};

const EQUIVALENCE_QUERIES: usize = 24;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("numeric list entry"))
            .collect(),
        Err(_) => default.to_vec(),
    }
}

/// Current OS thread count of this process (`Threads:` in
/// `/proc/self/status`); 0 where procfs is unavailable.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn canon(xml: &str) -> String {
    let doc = sensorxml::parse(xml).expect("answer parses");
    sensorxml::canonical_string(&doc, doc.root().unwrap())
}

fn start_cluster(h: &ScaleHierarchy, shards: usize) -> ShardedCluster {
    let mut cluster = ShardedCluster::with_config(
        h.db.service.clone(),
        ShardConfig { shards, workers_per_shard: 1, force_wire: false },
    );
    for (path, addr) in &h.owners {
        cluster.register_owner(path, *addr);
    }
    for a in h.make_agents(&OaConfig::default()) {
        cluster.add_site(a);
    }
    cluster.start();
    cluster
}

/// Closed-loop client phase: `clients` threads, `queries` poses each.
/// Returns (qps over the phase, per-query latency percentiles in ms).
fn drive_clients(
    cluster: &ShardedCluster,
    h: &ScaleHierarchy,
    clients: usize,
    queries: usize,
    zipf: f64,
) -> (f64, Percentiles) {
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let mut client = cluster.client();
            let mut w = h.workload(1000 + c as u64, zipf);
            std::thread::spawn(move || {
                let mut lat_ms = Vec::with_capacity(queries);
                for _ in 0..queries {
                    let q = w.next_query();
                    let r = client
                        .pose_query(&q, Duration::from_secs(60))
                        .expect("scale query timed out");
                    assert!(r.ok, "scale query failed: {q}: {}", r.answer_xml);
                    lat_ms.push(r.latency.as_secs_f64() * 1e3);
                }
                lat_ms
            })
        })
        .collect();
    let mut lat_ms: Vec<f64> = handles
        .into_iter()
        .flat_map(|jh| jh.join().expect("client thread"))
        .collect();
    let qps = lat_ms.len() as f64 / started.elapsed().as_secs_f64();
    lat_ms.sort_by(f64::total_cmp);
    (qps, latency_percentiles(&lat_ms))
}

/// The headline arm. Returns a JSON object string.
fn headline(sites: usize, clients: usize, queries: usize, zipf: f64) -> String {
    eprintln!("== headline: building {sites}-site hierarchy ==");
    let h = ScaleHierarchy::with_sites(sites, 1);
    let mut cluster = start_cluster(&h, 0);
    let shards = cluster.shard_count();
    let budget = cluster.thread_budget();

    // Fixed query sequence for the DES byte-comparison, posed while the
    // caches are cold so the replay sees the same states.
    let mut wq = h.workload(77, zipf);
    let sequence: Vec<String> = (0..EQUIVALENCE_QUERIES).map(|_| wq.next_query()).collect();
    let sharded: Vec<String> = sequence
        .iter()
        .map(|q| {
            let r = cluster.pose_query(q, Duration::from_secs(60)).expect("reply");
            assert!(r.ok, "equivalence query failed: {q}: {}", r.answer_xml);
            canon(&r.answer_xml)
        })
        .collect();

    // Throughput phase under a thread-count watch.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut peak = os_threads();
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(20));
                peak = peak.max(os_threads());
            }
            peak
        })
    };
    let (qps, lat) = drive_clients(&cluster, &h, clients, queries, zipf);
    stop.store(true, Ordering::Relaxed);
    let threads_observed = sampler.join().expect("sampler");
    cluster.shutdown();

    // DES replay: fresh agents from the same hierarchy, same sequence.
    eprintln!("== headline: DES replay of {EQUIVALENCE_QUERIES} queries ==");
    let mut sim = DesCluster::new(CostModel::default());
    for (path, addr) in &h.owners {
        sim.dns.register(&h.db.service.dns_name(path), *addr);
    }
    for a in h.make_agents(&OaConfig::default()) {
        sim.add_site(a);
    }
    for (i, q) in sequence.iter().enumerate() {
        sim.schedule_message(
            i as f64 * 50.0,
            SiteAddr(1),
            Message::UserQuery {
                qid: i as u64 + 1,
                text: q.clone(),
                endpoint: Endpoint(10_000 + i as u64),
            },
        );
    }
    sim.run_until(sequence.len() as f64 * 50.0 + 300.0);
    let mut replies = sim.take_unclaimed_detailed();
    replies.sort_by_key(|r| r.endpoint.0);
    assert_eq!(replies.len(), sequence.len(), "DES replay dropped replies");
    let des: Vec<String> = replies.iter().map(|r| canon(&r.answer_xml)).collect();
    let des_equivalent = sharded == des;
    assert!(des_equivalent, "sharded answers diverged from the DES replay");

    eprintln!(
        "headline: {sites} sites, {shards} shards, budget {budget} threads, \
         observed {threads_observed}, {qps:.1} qps"
    );
    format!(
        concat!(
            "{{\"sites\": {}, \"shards\": {}, \"workers_per_shard\": 1, ",
            "\"thread_budget\": {}, \"threads_observed\": {}, \"clients\": {}, ",
            "\"des_equivalent\": {}, \"equivalence_queries\": {}, ",
            "\"qps\": {:.1}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}"
        ),
        sites,
        shards,
        budget,
        threads_observed,
        clients,
        des_equivalent,
        EQUIVALENCE_QUERIES,
        qps,
        lat.p50,
        lat.p99,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str());

    let headline_sites = env_usize("SCALE_HEADLINE_SITES", 10_000);
    let sweep_sites = env_list("SCALE_SITES", &[111, 1021]);
    let sweep_shards = env_list("SCALE_SHARDS", &[1, 2, 4]);
    let clients = env_usize("SCALE_CLIENTS", 4);
    let queries = env_usize("SCALE_QUERIES", 40);
    let zipf = env_f64("SCALE_ZIPF", 1.1);
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let head = headline(headline_sites, clients, queries, zipf);

    println!(
        "\n{:>7} {:>7} {:>8} {:>9} {:>9}",
        "sites", "shards", "qps", "p50_ms", "p99_ms"
    );
    println!("{}", "-".repeat(46));
    let mut rows = Vec::new();
    for &sites in &sweep_sites {
        let h = ScaleHierarchy::with_sites(sites, 1);
        for &shards in &sweep_shards {
            let cluster = start_cluster(&h, shards);
            let budget = cluster.thread_budget();
            let (qps, lat) = drive_clients(&cluster, &h, clients, queries, zipf);
            cluster.shutdown();
            println!(
                "{:>7} {:>7} {:>8.1} {:>9.2} {:>9.2}",
                sites, shards, qps, lat.p50, lat.p99
            );
            rows.push(format!(
                concat!(
                    "    {{\"sites\": {}, \"shards\": {}, \"thread_budget\": {}, ",
                    "\"qps\": {:.1}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}"
                ),
                sites, shards, budget, qps, lat.p50, lat.p99,
            ));
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"generated_by\": \"exp_scale\",\n",
            "  \"workload\": \"QW-Mix, {} closed-loop clients x {} queries, ",
            "zipf s={} over (city,neighborhood) ranks\",\n",
            "  \"host_cores\": {},\n",
            "  \"headline\": {},\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        clients,
        queries,
        zipf,
        host_cores,
        head,
        rows.join(",\n")
    );
    if let Some(path) = out {
        std::fs::write(path, &json).expect("write scale json");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}
