//! §5.5 (text) — Effect of caching on query latency.
//!
//! Paper: "even for our local area set-up, query latencies are reduced by
//! 10–33% for type 3 and type 4 queries, and for the mixed workload. We
//! plan to study the latency savings for wide area networks, where the
//! impact of caching should be more pronounced."
//!
//! We run Architecture 4 with caching on/off under LAN (1 ms) and WAN
//! (40 ms) one-way latencies and report mean latency per workload.

use irisnet_bench::runner::{paper_costs, run_throughput};
use irisnet_bench::{build_cluster, Arch, DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{CacheMode, OaConfig};
use simnet::{ClientLoad, CostModel};

const DURATION: f64 = 60.0;
const WARMUP: f64 = 20.0;

fn run_one(cache: CacheMode, net_latency: f64, mk: impl FnOnce(&ParkingDb) -> Workload) -> f64 {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let costs = CostModel { net_latency, ..paper_costs() };
    let cfg = OaConfig { cache, ..OaConfig::default() };
    let mut built = build_cluster(Arch::Hierarchical, &db, costs, cfg, 9);
    let mut w = mk(&db);
    // Light load: latency, not saturation, is the quantity of interest.
    built.sim.set_client_load(ClientLoad {
        clients: 4,
        think_time: 0.2,
        query_gen: Box::new(move |_| w.next_query()),
    });
    let res = run_throughput(&mut built.sim, DURATION, WARMUP);
    assert!(res.error_rate < 0.01, "error rate {}", res.error_rate);
    res.latency.mean * 1000.0
}

fn main() {
    println!("== §5.5: query latency with and without caching (mean ms/query) ==\n");
    type WorkloadMk = Box<dyn Fn(&ParkingDb) -> Workload>;
    let workloads: Vec<(&str, WorkloadMk)> = vec![
        ("QW-3", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T3, 51))),
        ("QW-4", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T4, 52))),
        ("QW-Mix", Box::new(|db: &ParkingDb| Workload::qw_mix(db, 53))),
    ];
    for (net_label, lat) in [("LAN (1 ms)", 0.001), ("WAN (40 ms)", 0.040)] {
        println!("-- {net_label} --");
        println!(
            "{:<10} {:>14} {:>14} {:>10}",
            "Workload", "no caching", "caching", "saving"
        );
        for (name, mk) in &workloads {
            let off = run_one(CacheMode::Off, lat, |db| mk(db));
            let on = run_one(CacheMode::Aggressive, lat, |db| mk(db));
            println!(
                "{:<10} {:>12.1}ms {:>12.1}ms {:>9.0}%",
                name,
                off,
                on,
                (1.0 - on / off) * 100.0
            );
        }
        println!();
    }
    println!("(paper: 10-33% latency reduction for QW-3/QW-4/QW-Mix on a LAN;");
    println!(" larger savings expected in wide-area settings)");
}
