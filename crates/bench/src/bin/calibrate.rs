//! Calibration probe: measures real `OrganizingAgent::handle` CPU for the
//! message patterns the cost model charges, so `CostModel::cpu_scale` can
//! be chosen deliberately (see `runner::paper_costs`).

use std::time::Instant;

use irisdns::{AuthoritativeDns, SiteAddr};
use irisnet_bench::{DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{CacheMode, Endpoint, Message, OaConfig, OrganizingAgent, Outbound};

fn main() {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let mut dns = AuthoritativeDns::new();

    // --- T1 local answer at a neighborhood site (400 spaces) ---
    let mut oa = OrganizingAgent::new(SiteAddr(1), db.service.clone(), OaConfig::default());
    let np = db.neighborhood_path(0, 0);
    oa.db_mut().bootstrap_owned(&db.master, &np, true).unwrap();
    dns.register(&db.service.dns_name(&np), SiteAddr(1));
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']/city[@id='Pittsburgh']/neighborhood[@id='n1']/block[@id='3']/parkingSpace[available='yes']";
    for i in 0..5 {
        oa.handle(Message::UserQuery { qid: i, text: q.into(), endpoint: Endpoint(0) }, &mut dns, 0.0);
    }
    let n = 200;
    let t = Instant::now();
    for i in 0..n {
        oa.handle(Message::UserQuery { qid: 100 + i, text: q.into(), endpoint: Endpoint(0) }, &mut dns, 0.0);
    }
    println!("T1 local answer (nbhd site, 400 spaces): {:.3} ms", ms(t, n));

    // --- forwarded query at a previous owner ---
    let mut fw = OrganizingAgent::new(SiteAddr(2), db.service.clone(), OaConfig::default());
    fw.db_mut().bootstrap_owned(&db.master, &np, true).unwrap();
    let bp = db.block_path(0, 0, 2);
    let out = fw.handle(Message::Delegate { path: bp.clone(), to: SiteAddr(3) }, &mut dns, 0.0);
    let mut oa3 = OrganizingAgent::new(SiteAddr(3), db.service.clone(), OaConfig::default());
    if let Outbound::Send { msg, .. } = &out[0] {
        let out2 = oa3.handle(msg.clone(), &mut dns, 0.0);
        if let Outbound::Send { msg, .. } = &out2[0] {
            fw.handle(msg.clone(), &mut dns, 0.0);
        }
    }
    let t = Instant::now();
    for i in 0..n {
        fw.handle(Message::UserQuery { qid: 500 + i, text: q.into(), endpoint: Endpoint(0) }, &mut dns, 0.0);
    }
    println!("T1 forwarded query:                      {:.4} ms", ms(t, n));

    // --- T3 at a warmed city site: cache-served vs always-refresh ---
    for (label, hit_prob) in [("100% hits", 1.0), ("0% hits (refresh)", 0.0)] {
        // Fresh name store: earlier probes registered conflicting owners.
        let mut dns = AuthoritativeDns::new();
        let mut city = OrganizingAgent::new(
            SiteAddr(10),
            db.service.clone(),
            OaConfig { cache: CacheMode::Aggressive, cache_hit_prob: hit_prob, ..OaConfig::default() },
        );
        city.db_mut()
            .bootstrap_owned(&db.master, &db.city_path(0), false)
            .unwrap();
        dns.register(&db.service.dns_name(&db.city_path(0)), SiteAddr(10));
        let mut nbhds: Vec<OrganizingAgent> = Vec::new();
        for ni in 0..db.params.neighborhoods_per_city {
            let a = OrganizingAgent::new(
                SiteAddr(11 + ni as u32),
                db.service.clone(),
                OaConfig::default(),
            );
            a.db_mut().bootstrap_owned(&db.master, &db.neighborhood_path(0, ni), true)
                .unwrap();
            dns.register(
                &db.service.dns_name(&db.neighborhood_path(0, ni)),
                SiteAddr(11 + ni as u32),
            );
            nbhds.push(a);
        }
        let mut w = Workload::uniform(&db, QueryType::T3, 77);
        // Warm the cache through real message exchange, then measure the
        // city's own CPU per fresh query (including SubAnswer handling).
        let mut city_time = 0.0f64;
        let mut measure = false;
        let run_query = |city: &mut OrganizingAgent,
                             nbhds: &mut Vec<OrganizingAgent>,
                             dns: &mut AuthoritativeDns,
                             qid: u64,
                             text: String,
                             city_time: &mut f64,
                             measure: bool| {
            let mut inbox = vec![(
                SiteAddr(10),
                Message::UserQuery { qid, text, endpoint: Endpoint(0) },
            )];
            while let Some((to, m)) = inbox.pop() {
                let outs = if to == SiteAddr(10) {
                    let t0 = Instant::now();
                    let outs = city.handle(m, dns, 0.0);
                    if measure {
                        *city_time += t0.elapsed().as_secs_f64();
                    }
                    outs
                } else {
                    nbhds[(to.0 - 11) as usize].handle(m, dns, 0.0)
                };
                for o in outs {
                    if let Outbound::Send { to, msg } = o {
                        inbox.push((to, msg));
                    }
                }
            }
        };
        for i in 0..300u64 {
            let q = w.next_query_of(QueryType::T3);
            run_query(&mut city, &mut nbhds, &mut dns, 1000 + i, q, &mut city_time, measure);
        }
        measure = true;
        let m = 200u64;
        for i in 0..m {
            let q = w.next_query_of(QueryType::T3);
            run_query(&mut city, &mut nbhds, &mut dns, 5000 + i, q, &mut city_time, measure);
        }
        println!(
            "T3 warmed city CPU per query, {label:<18}: {:.3} ms",
            city_time * 1000.0 / m as f64
        );
        println!(
            "    city stats: subq_sent={} merges={} create={:.1}ms exec={:.1}ms extract={:.1}ms comm={:.1}ms arena={}",
            city.stats.subqueries_sent,
            city.stats.cache_merges,
            city.stats.time_create_xslt * 1000.0 / 500.0,
            city.stats.time_exec_xslt * 1000.0 / 500.0,
            city.stats.time_extract * 1000.0 / 500.0,
            city.stats.time_comm * 1000.0 / 500.0,
            city.db().doc().arena_len(),
        );
    }
}

fn ms(t: Instant, n: u64) -> f64 {
    t.elapsed().as_secs_f64() * 1000.0 / n as f64
}
