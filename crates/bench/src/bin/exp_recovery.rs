//! PR 8 — recovery-time microbenchmark for the durable storage plane.
//!
//! A single site owns the whole parking region with durability attached.
//! We push `n` sensor updates through the database (each one WAL-logged),
//! then model a crash by dropping the agent, re-open the store over the
//! surviving backend, and time `attach_durability` on a fresh agent:
//! snapshot parse + WAL-tail replay, exactly the restart path the
//! recovery tests exercise.
//!
//! Two modes per backend × tail-length cell:
//!
//! * `wal-tail`   — no snapshot after attach: all `n` records replay;
//! * `mid-snapshot` — one snapshot at `n/2`: the snapshot supersedes the
//!   first half, so only `n/2` records replay (sealed segments beyond the
//!   retention window are expired in O(1)).
//!
//! Emits `BENCH_PR8.json` to the path after `--out` (stdout otherwise).

use std::sync::Arc;

use irisdns::SiteAddr;
use irisnet_bench::{DbParams, ParkingDb};
use irisnet_core::{
    DurabilityConfig, FileBackend, MemoryBackend, OaConfig, OrganizingAgent, SiteStore,
    StorageBackend,
};

struct Row {
    backend: &'static str,
    mode: &'static str,
    updates: usize,
    wal_bytes: u64,
    records_replayed: u64,
    replay_ms: f64,
}

/// The piece that survives the crash: a shared in-memory store, or a
/// directory on disk. `open()` is the restart path.
enum Survivor {
    Mem(Arc<MemoryBackend>),
    Dir(std::path::PathBuf),
}

impl Survivor {
    fn new(kind: &str, dir: &std::path::Path) -> Survivor {
        match kind {
            "memory" => Survivor::Mem(Arc::new(MemoryBackend::new())),
            _ => Survivor::Dir(dir.to_path_buf()),
        }
    }

    fn open(&self) -> Box<dyn StorageBackend> {
        match self {
            Survivor::Mem(m) => Box::new(m.clone()),
            Survivor::Dir(d) => Box::new(FileBackend::new(d).expect("file backend")),
        }
    }
}

/// One crash/recovery cycle; `config.snapshot_every` is set beyond `n` so
/// only the explicit mid-run snapshot (if any) seals the tail.
fn cycle(db: &ParkingDb, backend: &'static str, mode: &'static str, n: usize) -> Row {
    let dir = std::env::temp_dir().join(format!("iris-exp-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config =
        DurabilityConfig { snapshot_every: u64::MAX, ..DurabilityConfig::default() };
    let survivor = Survivor::new(backend, &dir);

    let mut oa = OrganizingAgent::new(SiteAddr(1), db.service.clone(), OaConfig::default());
    oa.db_mut().bootstrap_owned(&db.master, &db.root_path(), true).unwrap();
    let (store, recovered) = SiteStore::open(survivor.open(), config).unwrap();
    oa.attach_durability(store, recovered, 0.0).unwrap();
    let wal = oa.wal().expect("wal attached");

    let spaces = db.all_space_paths();
    for i in 0..n {
        let path = &spaces[i % spaces.len()];
        let value = if i % 2 == 0 { "yes" } else { "no" };
        oa.db_mut()
            .apply_update(
                path,
                &[("available".to_string(), value.to_string())],
                i as f64,
            )
            .unwrap();
        if mode == "mid-snapshot" && i + 1 == n / 2 {
            wal.snapshot(&oa.db().snapshot_xml(), i as f64);
        }
    }
    assert_eq!(wal.appends(), n as u64, "one WAL record per update");
    let wal_bytes = wal.bytes();

    // Crash with amnesia: the agent and its in-memory database are gone.
    drop(oa);

    let (store, recovered) = SiteStore::open(survivor.open(), config).unwrap();
    let mut oa2 = OrganizingAgent::new(SiteAddr(1), db.service.clone(), OaConfig::default());
    let stats = oa2.attach_durability(store, recovered, n as f64).expect("recovery");
    assert!(stats.snapshot_loaded);
    let expected = if mode == "mid-snapshot" { n - n / 2 } else { n };
    assert_eq!(stats.records_replayed, expected as u64, "unexpected replay length");
    oa2.db().check_invariants(&db.master).expect("recovered invariants");

    let _ = std::fs::remove_dir_all(&dir);
    Row {
        backend,
        mode,
        updates: n,
        wal_bytes,
        records_replayed: stats.records_replayed,
        replay_ms: stats.replay_ms,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let params = DbParams {
        cities: 1,
        neighborhoods_per_city: 2,
        blocks_per_neighborhood: 4,
        spaces_per_block: 5,
    };
    let db = ParkingDb::generate(params, 1);

    println!("== PR 8: crash-recovery time (snapshot parse + WAL-tail replay) ==\n");
    println!(
        "{:>8} {:>13} {:>8} {:>11} {:>9} {:>10} {:>11}",
        "backend", "mode", "updates", "wal_bytes", "replayed", "replay_ms", "records/s"
    );
    println!("{}", "-".repeat(76));
    let mut rows = Vec::new();
    for &backend in &["memory", "file"] {
        for &mode in &["wal-tail", "mid-snapshot"] {
            for &n in &[256usize, 1024, 4096] {
                let r = cycle(&db, backend, mode, n);
                let rate = r.records_replayed as f64 / (r.replay_ms / 1000.0).max(1e-9);
                println!(
                    "{:>8} {:>13} {:>8} {:>11} {:>9} {:>10.2} {:>11.0}",
                    r.backend, r.mode, r.updates, r.wal_bytes, r.records_replayed,
                    r.replay_ms, rate
                );
                rows.push(format!(
                    concat!(
                        "    {{\"backend\": \"{}\", \"mode\": \"{}\", \"updates\": {}, ",
                        "\"wal_bytes\": {}, \"records_replayed\": {}, ",
                        "\"replay_ms\": {:.3}, \"records_per_s\": {:.0}}}"
                    ),
                    r.backend, r.mode, r.updates, r.wal_bytes, r.records_replayed,
                    r.replay_ms, rate
                ));
            }
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"generated_by\": \"exp_recovery\",\n",
            "  \"workload\": \"{} parking spaces, round-robin availability updates, ",
            "crash + attach_durability restart\",\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        params.total_spaces(),
        rows.join(",\n")
    );
    if let Some(path) = out {
        std::fs::write(&path, &json).expect("write recovery json");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}
