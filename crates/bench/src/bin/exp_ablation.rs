//! Ablation: subquery generalization (§3.3).
//!
//! "Even if the earlier queries have different predicates, our
//! generalization of subqueries may enable the later queries to use the
//! cached data." We alternate two predicate forms over the same blocks
//! (available='yes', then price='0') and compare the subqueries the
//! gathering sites must send with generalization on vs off.

use irisnet_bench::runner::paper_costs;
use irisnet_bench::{build_cluster, Arch, DbParams, ParkingDb};
use irisnet_core::{Endpoint, Message, OaConfig};

fn run(generalize: bool) -> (u64, usize) {
    let db = ParkingDb::generate(
        DbParams { cities: 2, neighborhoods_per_city: 3, blocks_per_neighborhood: 6, spaces_per_block: 5 },
        3,
    );
    let cfg = OaConfig { generalize_subqueries: generalize, ..OaConfig::default() };
    let mut built = build_cluster(Arch::Hierarchical, &db, paper_costs(), cfg, 9);

    // Alternate predicates over the same (neighborhood pair, block) set —
    // type 3 queries so the city sites gather and cache.
    let mut t = 0.0;
    let mut posed = 0usize;
    for round in 0..4 {
        for b in 1..=6 {
            let pred = if round % 2 == 0 { "available='yes'" } else { "price='0'" };
            let q = format!(
                "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
                 /city[@id='Pittsburgh']/neighborhood[@id='n1' or @id='n2']\
                 /block[@id='{b}']/parkingSpace[{pred}]"
            );
            t += 1.0;
            posed += 1;
            // Route to the city site (the LCA).
            let service = db.service.clone();
            let (_, _, name) = irisnet_core::routing::route_query(&q, &service).unwrap();
            let entry = built.sim.dns.lookup(&name).unwrap().addr;
            built.sim.schedule_message(
                t,
                entry,
                Message::UserQuery { qid: posed as u64, text: q, endpoint: Endpoint(0) },
            );
        }
    }
    built.sim.run_until(t + 100.0);
    let answers = built.sim.take_unclaimed_replies();
    assert_eq!(answers.len(), posed, "all queries answered");
    let total_sub: u64 = built
        .sites
        .iter()
        .filter_map(|&s| built.sim.site(s).map(|a| a.stats.subqueries_sent))
        .sum();
    (total_sub, posed)
}

fn main() {
    println!("== Ablation: subquery generalization (§3.3) ==\n");
    println!("4 rounds x 6 blocks of type-3 queries; rounds alternate between");
    println!("[available='yes'] and [price='0'] over the same blocks.\n");
    for (label, generalize) in [("generalized (paper)", true), ("literal (ablation)", false)] {
        let (subs, posed) = run(generalize);
        println!(
            "{label:<22} subqueries sent: {subs:>4}   ({:.2} per query over {posed} queries)",
            subs as f64 / posed as f64
        );
    }
    println!("\nWith generalization, round 2+ hits the cache (only the first round");
    println!("fetches). Literal subqueries cache only exact matches, so changing");
    println!("the predicate keeps refetching.");
}
