//! Overhead check for the observability plane on the hot-site workload
//! (the BENCH_PR2 scenario: 8 client threads × 8 queries against one
//! serial owner site).
//!
//! Two long-lived clusters, timed passes interleaved over several rounds
//! to cancel drift. Setup (DB bootstrap, thread spawn) and shutdown stay
//! outside the timed region, matching how `benches/hot_site.rs` measures
//! the BENCH_PR2 serial_inline baseline with criterion's `b.iter`.
//!
//! * `noop` — no recorder installed. This is the default production state;
//!   every instrumentation site reduces to one predictable branch. Its
//!   throughput is what `scripts/obs_smoke.sh` holds against the
//!   pre-instrumentation BENCH_PR2 baseline (<2 % regression budget).
//! * `traced` — a `MemRecorder` attached, full span recording. Reported
//!   for context; tracing is opt-in so it has no budget to meet.
//!
//! Prints one JSON object on stdout.

use std::sync::Arc;
use std::time::{Duration, Instant};

use irisdns::SiteAddr;
use irisnet_bench::{DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{OaConfig, OrganizingAgent};
use irisobs::MemRecorder;
use simnet::{LiveClient, LiveCluster};

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 8;
/// One timed round = this many consecutive 64-query passes. A single
/// pass is ~15 ms at baseline throughput — too short a window for a
/// stable wall-clock reading on a busy host; ~10 passes per reading
/// averages the scheduler noise without changing the workload shape.
const PASSES_PER_ROUND: usize = 10;

fn mixes(db: &ParkingDb) -> Vec<Vec<String>> {
    (0..CLIENTS)
        .map(|t| {
            let mut w1 = Workload::uniform(db, QueryType::T1, 100 + t as u64);
            let mut w3 = Workload::uniform(db, QueryType::T3, 200 + t as u64);
            (0..QUERIES_PER_CLIENT)
                .map(|i| if i % 2 == 0 { w1.next_query() } else { w3.next_query() })
                .collect()
        })
        .collect()
}

fn build(db: &Arc<ParkingDb>, rec: Option<&Arc<MemRecorder>>) -> (LiveCluster, Vec<LiveClient>) {
    let mut cluster = LiveCluster::new(db.service.clone());
    if let Some(r) = rec {
        cluster.set_recorder(r.clone());
    }
    let oa = OrganizingAgent::new(SiteAddr(1), db.service.clone(), OaConfig::default());
    oa.db_mut().bootstrap_owned(&db.master, &db.root_path(), true).unwrap();
    cluster.register_owner(&db.root_path(), SiteAddr(1));
    cluster.add_site(oa);
    let clients = (0..CLIENTS).map(|_| cluster.client()).collect();
    (cluster, clients)
}

/// One pass: 64 queries over 8 client threads against the serial site.
fn pass(clients: &[LiveClient], mixes: &[Vec<String>]) {
    std::thread::scope(|s| {
        for (cl, mix) in clients.iter().zip(mixes) {
            s.spawn(move || {
                for q in mix {
                    let r = cl
                        .pose_query_at(q, SiteAddr(1), Duration::from_secs(30))
                        .expect("hot-site reply");
                    assert!(r.ok, "query failed: {q}");
                }
            });
        }
    });
}

/// One timed round: `PASSES_PER_ROUND` consecutive passes, queries/sec.
fn round(clients: &[LiveClient], mixes: &[Vec<String>]) -> f64 {
    let t0 = Instant::now();
    for _ in 0..PASSES_PER_ROUND {
        pass(clients, mixes);
    }
    (CLIENTS * QUERIES_PER_CLIENT * PASSES_PER_ROUND) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let rounds: usize = std::env::var("OBS_OVERHEAD_ROUNDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let db = Arc::new(ParkingDb::generate(DbParams::small(), 1));
    let mixes = mixes(&db);

    let rec = MemRecorder::new();
    let (noop_cluster, noop_clients) = build(&db, None);
    let (traced_cluster, traced_clients) = build(&db, Some(&rec));

    // Warmup both paths (allocator, thread handoff, QEG skeleton cache).
    pass(&noop_clients, &mixes);
    pass(&traced_clients, &mixes);
    let _ = rec.take_spans();

    let mut noop = Vec::with_capacity(rounds);
    let mut traced = Vec::with_capacity(rounds);
    let mut spans_per_run = 0usize;
    // Interleave A/B so slow drift (thermal, background load) hits both.
    for _ in 0..rounds {
        noop.push(round(&noop_clients, &mixes));
        traced.push(round(&traced_clients, &mixes));
        spans_per_run = rec.take_spans().len() / PASSES_PER_ROUND;
    }
    noop_cluster.shutdown();
    traced_cluster.shutdown();

    // Best round, not median: throughput noise is one-sided (background
    // load only ever slows a round down), so max estimates the unloaded
    // capability — what the regression budget is actually about.
    let best = |v: &[f64]| v.iter().cloned().fold(f64::MIN, f64::max);
    let noop_qps = best(&noop);
    let traced_qps = best(&traced);
    let trace_cost_pct = (noop_qps / traced_qps - 1.0) * 100.0;
    let spans_per_query = spans_per_run as f64 / (CLIENTS * QUERIES_PER_CLIENT) as f64;

    println!("{{");
    println!("  \"workload\": \"hot_site serial_inline: {CLIENTS} clients x {QUERIES_PER_CLIENT} queries x {PASSES_PER_ROUND} passes/round\",");
    println!("  \"rounds\": {rounds},");
    println!("  \"noop_qps\": {noop_qps:.1},");
    println!("  \"traced_qps\": {traced_qps:.1},");
    println!("  \"tracing_cost_pct\": {trace_cost_pct:.2},");
    println!("  \"spans_per_query\": {spans_per_query:.2}");
    println!("}}");
}
