//! Fig. 7 — Query throughputs for the four architectures of Fig. 6,
//! under workloads QW-1..QW-4 and QW-Mix, with the background sensor
//! update stream that motivates distributing updates in the first place.
//!
//! Expected shape (paper):
//! * Architecture 1 (centralized) is worst everywhere (updates + queries
//!   saturate one machine);
//! * Architecture 2 roughly doubles Architecture 1 (updates offloaded);
//! * Architecture 3 is ~3× Architecture 2 on QW-1 (self-starting DNS
//!   routing) but no better elsewhere (central bottleneck);
//! * Architecture 4 trails Architecture 3 by ~25% on QW-1 (6 vs 8 query
//!   sites) and wins everything else, ≥60% ahead on QW-Mix.

use irisnet_bench::{build_cluster, Arch, DbParams, ParkingDb, QueryType, Workload};
use irisnet_bench::runner::run_throughput;
use irisnet_core::{Message, OaConfig};
use simnet::CostModel;

const DURATION: f64 = 40.0;
const WARMUP: f64 = 10.0;
/// Each of the 2400 spaces refreshes twice a minute: 80 updates/s total
/// (webcam-backed spots refresh frequently; this is what makes the
/// centralized architecture collapse, §5.2/§5.3).
const UPDATE_INTERVAL: f64 = 30.0;

fn costs() -> CostModel {
    irisnet_bench::runner::paper_costs()
}

fn run_one(arch: Arch, workload_name: &str, mk: impl FnOnce(&ParkingDb) -> Workload) -> f64 {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let mut built = build_cluster(arch, &db, costs(), OaConfig::default(), 9);

    // Background update stream to the block owners.
    let spaces = db.all_space_paths();
    let spb = db.params.spaces_per_block;
    let blocks = db.all_block_paths();
    let total_updates = (spaces.len() as f64 / UPDATE_INTERVAL * DURATION) as usize;
    for k in 0..total_updates {
        let idx = k % spaces.len();
        let at = k as f64 * UPDATE_INTERVAL / spaces.len() as f64;
        let owner = built.block_owner[&blocks[idx / spb]];
        built.sim.schedule_message(
            at,
            owner,
            Message::Update {
                path: spaces[idx].clone(),
                fields: vec![(
                    "available".to_string(),
                    if k % 2 == 0 { "yes" } else { "no" }.to_string(),
                )],
            },
        );
    }

    let mut w = mk(&db);
    built.sim.set_client_load(simnet::ClientLoad {
        clients: 48,
        think_time: 0.02,
        query_gen: Box::new(move |_| w.next_query()),
    });
    let res = run_throughput(&mut built.sim, DURATION, WARMUP);
    assert!(
        res.error_rate < 0.01,
        "{arch:?}/{workload_name}: error rate {}",
        res.error_rate
    );
    res.qps
}

fn main() {
    println!("== Fig. 7: query throughput by architecture and workload (queries/sec) ==\n");
    type WorkloadMk = Box<dyn Fn(&ParkingDb) -> Workload>;
    let workloads: Vec<(&str, WorkloadMk)> = vec![
        ("QW-1", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T1, 11))),
        ("QW-2", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T2, 12))),
        ("QW-3", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T3, 13))),
        ("QW-4", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T4, 14))),
        ("QW-Mix", Box::new(|db: &ParkingDb| Workload::qw_mix(db, 15))),
    ];

    print!("{:<46}", "Architecture");
    for (name, _) in &workloads {
        print!(" {name:>8}");
    }
    println!();
    println!("{}", "-".repeat(46 + 9 * workloads.len()));

    for arch in Arch::ALL {
        print!("{:<46}", arch.label());
        for (name, mk) in &workloads {
            let qps = run_one(arch, name, |db| mk(db));
            print!(" {qps:>8.1}");
        }
        println!();
    }
    println!("\n(closed loop, 48 clients, {}s run, {}s warmup, 40 updates/s background)", DURATION, WARMUP);
}
