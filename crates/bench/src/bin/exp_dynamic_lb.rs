//! Fig. 9 — Dynamic load balancing (§5.4).
//!
//! Clients pose type 1 queries, 90% of them against one fixed neighborhood
//! X. Starting at t=206s, the overloaded site delegates X's blocks to the
//! other sites one at a time (evenly until t=373s), while the system keeps
//! answering queries. Paper: average throughput roughly triples, with no
//! downtime.

use irisnet_bench::runner::run_throughput;
use irisnet_bench::{build_cluster, Arch, DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{Message, OaConfig};
use simnet::{throughput_series, ClientLoad, CostModel};

const DURATION: f64 = 600.0;
const MIGRATE_START: f64 = 206.0;
const MIGRATE_END: f64 = 373.0;

fn costs() -> CostModel {
    irisnet_bench::runner::paper_costs()
}

fn main() {
    println!("== Fig. 9: dynamic load balancing (throughput over time) ==\n");
    let db = ParkingDb::generate(DbParams::small(), 1);
    let mut built = build_cluster(Arch::Hierarchical, &db, costs(), OaConfig::default(), 9);
    // Clients re-resolve names every 30 s, so they pick up the new owners
    // (until then the old owner forwards, per §4).
    built.sim.set_client_dns_ttl(30.0);

    // The hot neighborhood (0,0) lives on one site; find it.
    let hot_site = built.block_owner[&db.block_path(0, 0, 0)];

    // Schedule the delegations: one block at a time, at even intervals,
    // round-robin over the *other* sites.
    let others: Vec<_> = built
        .sites
        .iter()
        .copied()
        .filter(|&s| s != hot_site)
        .collect();
    let blocks = db.params.blocks_per_neighborhood;
    let interval = (MIGRATE_END - MIGRATE_START) / blocks as f64;
    for bi in 0..blocks {
        let at = MIGRATE_START + bi as f64 * interval;
        let to = others[bi % others.len()];
        built.sim.schedule_message(
            at,
            hot_site,
            Message::Delegate { path: db.block_path(0, 0, bi), to },
        );
    }

    let mut w = Workload::uniform(&db, QueryType::T1, 31).with_skew(0, 0, 0.9);
    built.sim.set_client_load(ClientLoad {
        clients: 48,
        think_time: 0.02,
        query_gen: Box::new(move |_| w.next_query()),
    });
    let res = run_throughput(&mut built.sim, DURATION, 0.0);
    assert!(res.error_rate < 0.01, "error rate {}", res.error_rate);

    // The paper plots "queries finished in the preceding 5 sec".
    let completions: Vec<f64> = built.sim.replies().iter().map(|r| r.completed_at).collect();
    let series = throughput_series(&completions, 5.0, DURATION);
    println!("{:>8} {:>12}", "time (s)", "q/s (5s win)");
    for (t, qps) in series.iter().step_by(4) {
        let marker = if (MIGRATE_START..MIGRATE_END).contains(t) {
            "  <- migrating"
        } else {
            ""
        };
        println!("{t:>8.0} {qps:>12.1}{marker}");
    }

    let before: f64 = mean_qps(&series, 50.0, MIGRATE_START);
    let after: f64 = mean_qps(&series, MIGRATE_END + 20.0, DURATION);
    println!("\nsteady state before migration: {before:.1} q/s");
    println!("steady state after  migration: {after:.1} q/s");
    println!("speedup: {:.2}x  (paper: ~3x, queries answered throughout)", after / before);
    let min_during = series
        .iter()
        .filter(|(t, _)| (MIGRATE_START..MIGRATE_END).contains(t))
        .map(|&(_, q)| q)
        .fold(f64::INFINITY, f64::min);
    println!("minimum throughput during migration: {min_during:.1} q/s (no downtime)");
}

fn mean_qps(series: &[(f64, f64)], from: f64, to: f64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= from && *t < to)
        .map(|&(_, q)| q)
        .collect();
    vals.iter().sum::<f64>() / vals.len().max(1) as f64
}
