//! §5.2 — Handling sensor updates.
//!
//! Paper: "A single OA is typically able to handle 200 updates a second
//! in our current prototype. The total number of updates that can be
//! handled by the system scales linearly with the number of OAs among
//! which the data is distributed."
//!
//! We drive an open-loop update stream at increasing offered rates against
//! 1..8 OAs and report the sustained completion rate. The knee of each
//! curve is the capacity; it should sit at ~200/s per OA and scale
//! linearly.

use irisdns::SiteAddr;
use irisnet_bench::{DbParams, ParkingDb};
use irisnet_core::{Message, OaConfig, OrganizingAgent};
use simnet::{CostModel, DesCluster};

fn capacity_run(num_oas: usize, offered_rate: f64, duration: f64) -> f64 {
    let db = ParkingDb::generate(DbParams::small(), 1);
    // Calibrated to the paper's prototype: 5 ms of CPU per sensor update
    // (update + timestamping in the site database) ⇒ 200 updates/s per OA.
    let costs = CostModel {
        update_cpu: 0.005,
        msg_overhead: 0.0,
        ..CostModel::default()
    };
    let mut sim = DesCluster::new(costs);

    // Blocks spread over the OAs; each owns its subtree.
    let agents: Vec<OrganizingAgent> = (1..=num_oas as u32)
        .map(|a| OrganizingAgent::new(SiteAddr(a), db.service.clone(), OaConfig::default()))
        .collect();
    let blocks = db.all_block_paths();
    let mut owner_of = Vec::with_capacity(blocks.len());
    for (i, bp) in blocks.iter().enumerate() {
        let site = i % num_oas;
        agents[site]
            .db_mut()
            .bootstrap_owned(&db.master, bp, true)
            .expect("bootstrap block");
        owner_of.push(SiteAddr(site as u32 + 1));
    }
    for a in agents {
        let addr = a.addr;
        sim.dns.register(&db.service.dns_name(&db.root_path()), addr);
        sim.add_site(a);
    }

    // Open-loop updates round-robin over all spaces at the offered rate.
    let spaces = db.all_space_paths();
    let spb = db.params.spaces_per_block;
    let total = (offered_rate * duration) as usize;
    for k in 0..total {
        let at = k as f64 / offered_rate;
        let sp = &spaces[k % spaces.len()];
        let block_idx = (k % spaces.len()) / spb;
        let to = owner_of[block_idx];
        sim.schedule_message(
            at,
            to,
            Message::Update {
                path: sp.clone(),
                fields: vec![(
                    "available".to_string(),
                    if k % 2 == 0 { "yes" } else { "no" }.to_string(),
                )],
            },
        );
    }
    sim.run_until(duration);
    // Capacity = updates whose *service* completed within the horizon.
    let done = sim
        .update_completions
        .iter()
        .filter(|&&t| t <= duration)
        .count();
    done as f64 / duration
}

fn main() {
    println!("== §5.2: sensor update throughput ==");
    println!("(paper: ~200 updates/s per OA, scaling linearly with #OAs)\n");
    println!("{:>6} {:>14} {:>16} {:>14}", "OAs", "offered (/s)", "sustained (/s)", "per-OA (/s)");
    let duration = 30.0;
    for num_oas in [1usize, 2, 4, 8] {
        // Offer well past saturation to find the capacity.
        let offered = 400.0 * num_oas as f64;
        let sustained = capacity_run(num_oas, offered, duration);
        println!(
            "{:>6} {:>14.0} {:>16.1} {:>14.1}",
            num_oas,
            offered,
            sustained,
            sustained / num_oas as f64
        );
    }
    println!("\n(capacity per OA = 1 / update_cpu = 1 / 5ms = 200/s, matching the paper's");
    println!(" prototype; total capacity scales linearly with the number of OAs.)");
}
