//! Fig. 11 — Micro-benchmarks: where query processing time goes (§5.6).
//!
//! A type 1 query (one block) is artificially routed to the site owning
//! (i) the county, (ii) the city, (iii) the neighborhood — the
//! neighborhood is the owner of the data, so (iii) is what self-starting
//! routing does. Three settings, as in the paper:
//!
//! * small database, naive XSLT creation;
//! * small database, fast (precompiled-skeleton) XSLT creation;
//! * large (8×) database, fast creation.
//!
//! Reported: per-query breakdown across creating the XSLT program,
//! executing it, communication CPU (wire (de)serialization), and rest —
//! on the **live cluster** (real threads, real engine, wall-clock time).
//!
//! Expected shape (paper): routing to the owner cuts total time by >50%;
//! naive creation dominates the total (fast creation halves it); the 8×
//! database adds <20% per node.

use std::time::Duration;

use irisdns::SiteAddr;
use irisnet_bench::{DbParams, ParkingDb};
use irisnet_core::{CacheMode, OaConfig, OrganizingAgent, XsltCreation};
use simnet::LiveCluster;

struct Built {
    cluster: LiveCluster,
    county_site: SiteAddr,
    city_site: SiteAddr,
    nbhd_site: SiteAddr,
}

/// Hierarchical (Architecture 4) placement on the live cluster.
fn build(db: &ParkingDb, creation: XsltCreation) -> Built {
    // Caching is disabled so that every query pays its true routing cost
    // (the paper's micro-benchmark measures the gathering path, not the
    // cache).
    let config = OaConfig { creation, cache: CacheMode::Off, ..OaConfig::default() };
    let mut cluster = LiveCluster::new(db.service.clone());

    let top = OrganizingAgent::new(SiteAddr(1), db.service.clone(), config.clone());
    top.db_mut().bootstrap_owned(&db.master, &db.root_path(), false).unwrap();
    top.db_mut()
        .bootstrap_owned(&db.master, &db.root_path().child("state", "PA"), false)
        .unwrap();
    top.db_mut().bootstrap_owned(&db.master, &db.county_path(), false).unwrap();
    cluster.register_owner(&db.root_path(), SiteAddr(1));
    cluster.add_site(top);

    let mut next = 2u32;
    let mut city_site = SiteAddr(0);
    for ci in 0..db.params.cities {
        let addr = SiteAddr(next);
        next += 1;
        let a = OrganizingAgent::new(addr, db.service.clone(), config.clone());
        a.db_mut().bootstrap_owned(&db.master, &db.city_path(ci), false).unwrap();
        cluster.register_owner(&db.city_path(ci), addr);
        cluster.add_site(a);
        if ci == 0 {
            city_site = addr;
        }
    }
    let mut nbhd_site = SiteAddr(0);
    for ci in 0..db.params.cities {
        for ni in 0..db.params.neighborhoods_per_city {
            let addr = SiteAddr(next);
            next += 1;
            let a = OrganizingAgent::new(addr, db.service.clone(), config.clone());
            a.db_mut()
                .bootstrap_owned(&db.master, &db.neighborhood_path(ci, ni), true)
                .unwrap();
            cluster.register_owner(&db.neighborhood_path(ci, ni), addr);
            cluster.add_site(a);
            if ci == 0 && ni == 0 {
                nbhd_site = addr;
            }
        }
    }
    Built { cluster, county_site: SiteAddr(1), city_site, nbhd_site }
}

struct Breakdown {
    total_ms: f64,
    create_ms: f64,
    exec_ms: f64,
    comm_ms: f64,
    rest_ms: f64,
}

fn measure(db: &ParkingDb, creation: XsltCreation, level: usize, n: u64) -> Breakdown {
    let built = build(db, creation);
    let mut cluster = built.cluster;
    let target = [built.county_site, built.city_site, built.nbhd_site][level];
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
             /city[@id='Pittsburgh']/neighborhood[@id='n1']/block[@id='7']\
             /parkingSpace[available='yes']";
    // Short warmup (fast-path skeletons, allocator); the per-phase timers
    // are later rescaled by the total query count so warmup contamination
    // averages out.
    for _ in 0..3 {
        cluster.pose_query_at(q, target, Duration::from_secs(10)).expect("warmup reply");
    }
    let mut total = Duration::ZERO;
    for _ in 0..n {
        let r = cluster
            .pose_query_at(q, target, Duration::from_secs(10))
            .expect("reply");
        assert!(r.ok);
        total += r.latency;
    }
    let agents = cluster.shutdown();
    // Phase timers include the warmup queries; subtract proportionally by
    // counting all handled user queries.
    let queries: u64 = agents.iter().map(|a| a.stats.user_queries).sum();
    let scale = n as f64 / queries.max(1) as f64;
    let create: f64 = agents.iter().map(|a| a.stats.time_create_xslt).sum::<f64>() * scale;
    let exec: f64 = agents.iter().map(|a| a.stats.time_exec_xslt).sum::<f64>() * scale;
    let extract: f64 = agents.iter().map(|a| a.stats.time_extract).sum::<f64>() * scale;
    let comm: f64 = agents.iter().map(|a| a.stats.time_comm).sum::<f64>() * scale;
    let total_ms = total.as_secs_f64() * 1000.0 / n as f64;
    let create_ms = create * 1000.0 / n as f64;
    let exec_ms = (exec + extract) * 1000.0 / n as f64;
    let comm_ms = comm * 1000.0 / n as f64;
    Breakdown {
        total_ms,
        create_ms,
        exec_ms,
        comm_ms,
        rest_ms: (total_ms - create_ms - exec_ms - comm_ms).max(0.0),
    }
}

fn main() {
    println!("== Fig. 11: micro-benchmarks — query time breakdown (ms/query) ==");
    println!("(type 1 query injected at (i) county, (ii) city, (iii) neighborhood site)\n");
    let n = 200;
    let settings: Vec<(&str, DbParams, XsltCreation)> = vec![
        ("Small DB, naive XSLT creation", DbParams::small(), XsltCreation::Naive),
        ("Small DB, fast XSLT creation", DbParams::small(), XsltCreation::Fast),
        ("Large DB (8x), fast XSLT creation", DbParams::large(), XsltCreation::Fast),
    ];
    println!(
        "{:<36} {:>6} {:>9} {:>9} {:>9} {:>7} {:>8}",
        "Setting", "level", "create", "exec", "comm", "rest", "total"
    );
    println!("{}", "-".repeat(90));
    for (label, params, creation) in settings {
        let db = ParkingDb::generate(params, 1);
        for (li, lname) in ["(i)", "(ii)", "(iii)"].iter().enumerate() {
            let b = measure(&db, creation, li, n);
            println!(
                "{:<36} {:>6} {:>8.2}m {:>8.2}m {:>8.2}m {:>6.2}m {:>7.2}m",
                if li == 0 { label } else { "" },
                lname,
                b.create_ms,
                b.exec_ms,
                b.comm_ms,
                b.rest_ms,
                b.total_ms
            );
        }
    }
    println!("\n(live thread cluster, wall-clock; {n} queries per cell; exec includes");
    println!(" answer extraction; comm is wire XML (de)serialization CPU)");
}
