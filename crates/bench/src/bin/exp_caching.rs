//! Fig. 10 — Caching throughputs on Architecture 4 (§5.5).
//!
//! Four configurations: no caching; caching with 0% / 50% / 100% hit
//! probability (the hit probability is a per-query draw controlling
//! whether the query may use cached data — `OaConfig::cache_hit_prob`).
//!
//! Expected shape (paper):
//! * caching has minimal overhead (0% hits ≈ no caching);
//! * QW-1/QW-2 unaffected (those queries already land on the sites with
//!   the full data);
//! * QW-3/QW-4 throughput *drops* as the hit rate grows — the top-level
//!   sites answer everything themselves and become the bottleneck;
//! * the realistic QW-Mix *improves* (paper: up to 33%) because otherwise
//!   idle top-level sites absorb load from the lower-level sites.

use irisnet_bench::runner::{paper_costs, run_throughput};
use irisnet_bench::{build_cluster, Arch, DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{CacheMode, OaConfig};
use simnet::ClientLoad;

const DURATION: f64 = 60.0;
const WARMUP: f64 = 20.0;

fn config(mode: CacheMode, hit_prob: f64) -> OaConfig {
    OaConfig {
        cache: mode,
        cache_hit_prob: hit_prob,
        ..OaConfig::default()
    }
}

fn run_one(cfg: OaConfig, doc_scan_cpu: f64, mk: impl FnOnce(&ParkingDb) -> Workload) -> f64 {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let costs = simnet::CostModel { doc_scan_cpu, ..paper_costs() };
    let mut built = build_cluster(Arch::Hierarchical, &db, costs, cfg, 9);
    let mut w = mk(&db);
    built.sim.set_client_load(ClientLoad {
        clients: 48,
        think_time: 0.02,
        query_gen: Box::new(move |_| w.next_query()),
    });
    let res = run_throughput(&mut built.sim, DURATION, WARMUP);
    assert!(res.error_rate < 0.01, "error rate {}", res.error_rate);
    res.qps
}

fn main() {
    let configs: Vec<(&str, OaConfig)> = vec![
        ("No caching", config(CacheMode::Off, 1.0)),
        ("Caching, 0% hits", config(CacheMode::Aggressive, 0.0)),
        ("Caching, 50% hits", config(CacheMode::Aggressive, 0.5)),
        ("Caching, 100% hits", config(CacheMode::Aggressive, 1.0)),
    ];
    type WorkloadMk = Box<dyn Fn(&ParkingDb) -> Workload>;
    let workloads: Vec<(&str, WorkloadMk)> = vec![
        ("QW-1", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T1, 41))),
        ("QW-2", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T2, 42))),
        ("QW-3", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T3, 43))),
        ("QW-4", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T4, 44))),
        ("QW-Mix", Box::new(|db: &ParkingDb| Workload::qw_mix(db, 45))),
    ];

    // Two engine models: (a) this crate's engine, whose id-pinned
    // evaluation is nearly independent of document size; (b) the paper's
    // prototype (Xalan template matching scans the whole site document),
    // modelled by charging ~30 ms of CPU per 1000 stored nodes — the value
    // implied by Fig. 11's ~100 ms execution time on a ~3000-node
    // neighborhood fragment. The paper's bottleneck inversion for QW-3/4
    // appears under (b).
    for (title, scan) in [
        ("engine-measured costs (this implementation)", 0.0),
        ("document-scan costs (paper's Xalan prototype)", 0.030),
    ] {
        println!("== Fig. 10: caching throughputs, Architecture 4 — {title} ==\n");
        print!("{:<24}", "Configuration");
        for (name, _) in &workloads {
            print!(" {name:>8}");
        }
        println!();
        println!("{}", "-".repeat(24 + 9 * workloads.len()));
        for (label, cfg) in &configs {
            print!("{label:<24}");
            for (_, mk) in &workloads {
                let qps = run_one(cfg.clone(), scan, |db| mk(db));
                print!(" {qps:>8.1}");
            }
            println!();
        }
        println!();
    }
    println!("(closed loop, 48 clients, {DURATION}s run, {WARMUP}s warmup)");
}
