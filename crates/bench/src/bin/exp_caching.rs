//! Fig. 10 — Caching throughputs on Architecture 4 (§5.5).
//!
//! Four configurations: no caching; caching with 0% / 50% / 100% hit
//! probability (the hit probability is a per-query draw controlling
//! whether the query may use cached data — `OaConfig::cache_hit_prob`).
//!
//! Expected shape (paper):
//! * caching has minimal overhead (0% hits ≈ no caching);
//! * QW-1/QW-2 unaffected (those queries already land on the sites with
//!   the full data);
//! * QW-3/QW-4 throughput *drops* as the hit rate grows — the top-level
//!   sites answer everything themselves and become the bottleneck;
//! * the realistic QW-Mix *improves* (paper: up to 33%) because otherwise
//!   idle top-level sites absorb load from the lower-level sites.

use irisnet_bench::runner::{paper_costs, run_throughput};
use irisnet_bench::{build_cluster, Arch, DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{CacheBudget, CacheMode, EvictionPolicy, OaConfig};
use simnet::ClientLoad;

const DURATION: f64 = 60.0;
const WARMUP: f64 = 20.0;

fn config(mode: CacheMode, hit_prob: f64) -> OaConfig {
    OaConfig {
        cache: mode,
        cache_hit_prob: hit_prob,
        ..OaConfig::default()
    }
}

fn run_one(cfg: OaConfig, doc_scan_cpu: f64, mk: impl FnOnce(&ParkingDb) -> Workload) -> f64 {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let costs = simnet::CostModel { doc_scan_cpu, ..paper_costs() };
    let mut built = build_cluster(Arch::Hierarchical, &db, costs, cfg, 9);
    let mut w = mk(&db);
    built.sim.set_client_load(ClientLoad {
        clients: 48,
        think_time: 0.02,
        query_gen: Box::new(move |_| w.next_query()),
    });
    let res = run_throughput(&mut built.sim, DURATION, WARMUP);
    assert!(res.error_rate < 0.01, "error rate {}", res.error_rate);
    res.qps
}

/// PR 6 — fixed-memory-budget sweep: hit rate, evictions and latency vs
/// node budget for each bounded eviction policy, under a Zipf-skewed
/// QW-Mix (the multi-site T3/T4 queries concentrate on the hot
/// neighborhoods, so a budget that holds the hot set keeps the hit rate).
///
/// Emits JSON (for `BENCH_PR6.json`) to the path given after
/// `--budget-sweep`, or stdout-only when omitted. Duration/warmup are
/// env-tunable (`CACHE_SWEEP_DURATION`, `CACHE_SWEEP_WARMUP`) so the
/// smoke script can run a short pass.
fn budget_sweep(out_path: Option<&str>) {
    let duration: f64 = std::env::var("CACHE_SWEEP_DURATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DURATION);
    let warmup: f64 = std::env::var("CACHE_SWEEP_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or((duration / 3.0).min(WARMUP));
    let zipf_s = 1.1;

    type PolicyMk = Box<dyn Fn(CacheBudget) -> EvictionPolicy>;
    let policies: Vec<(&str, PolicyMk)> = vec![
        ("lru", Box::new(|b| EvictionPolicy::Lru { budget: b })),
        ("heat", Box::new(|b| EvictionPolicy::HeatWeighted { budget: b })),
        (
            "segment",
            Box::new(|b| EvictionPolicy::SegmentAge { budget: b, max_age: f64::INFINITY }),
        ),
    ];
    // Node budgets per site. A block unit is ~81 nodes, a neighborhood
    // ~1621, so the sweep spans "a couple of blocks" to "several
    // neighborhoods"; 0 = unlimited (KeepForever-equivalent occupancy).
    let budgets: [usize; 4] = [160, 640, 2560, 10240];

    println!("== PR 6: cache budget sweep (QW-Mix, zipf s={zipf_s}, {duration}s) ==\n");
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9} {:>9} {:>8} {:>9} {:>9}",
        "Policy", "budget", "qps", "hit_rate", "hits", "misses", "evict", "p50_ms", "p99_ms"
    );
    println!("{}", "-".repeat(88));

    let mut rows = Vec::new();
    for (pname, mk_policy) in &policies {
        for &budget in &budgets {
            let db = ParkingDb::generate(DbParams::small(), 1);
            let cfg = OaConfig {
                cache: CacheMode::Aggressive,
                cache_hit_prob: 1.0,
                eviction: mk_policy(CacheBudget::nodes(budget)),
                ..OaConfig::default()
            };
            let mut built = build_cluster(Arch::Hierarchical, &db, paper_costs(), cfg, 9);
            let mut w = Workload::qw_mix(&db, 45).with_zipf(zipf_s);
            built.sim.set_client_load(ClientLoad {
                clients: 48,
                think_time: 0.02,
                query_gen: Box::new(move |_| w.next_query()),
            });
            let res = run_throughput(&mut built.sim, duration, warmup);
            assert!(res.error_rate < 0.01, "error rate {}", res.error_rate);
            let cs = built.sim.cache_stats_total();
            println!(
                "{:<10} {:>8} {:>8.1} {:>9.3} {:>9} {:>9} {:>8} {:>9.1} {:>9.1}",
                pname,
                budget,
                res.qps,
                cs.hit_rate(),
                cs.hits,
                cs.misses,
                cs.evictions,
                res.latency.p50 * 1e3,
                res.latency.p99 * 1e3,
            );
            rows.push(format!(
                concat!(
                    "    {{\"policy\": \"{}\", \"budget_nodes\": {}, \"qps\": {:.1}, ",
                    "\"hit_rate\": {:.4}, \"hits\": {}, \"partial_matches\": {}, ",
                    "\"misses\": {}, \"evictions\": {}, \"admission_rejects\": {}, ",
                    "\"sweeps\": {}, \"sweep_examined\": {}, ",
                    "\"p50_ms\": {:.2}, \"p99_ms\": {:.2}}}"
                ),
                pname,
                budget,
                res.qps,
                cs.hit_rate(),
                cs.hits,
                cs.partial_matches,
                cs.misses,
                cs.evictions,
                cs.admission_rejects,
                cs.sweeps,
                cs.sweep_examined,
                res.latency.p50 * 1e3,
                res.latency.p99 * 1e3,
            ));
        }
    }

    let json = format!(
        concat!(
            "{{\n  \"generated_by\": \"exp_caching --budget-sweep\",\n",
            "  \"workload\": \"QW-Mix, 48 closed-loop clients, zipf s={} over ",
            "(city,neighborhood) ranks\",\n",
            "  \"cluster\": \"Architecture 4 (hierarchical), 9 sites, small db (2400 spaces)\",\n",
            "  \"duration_s\": {}, \"warmup_s\": {},\n",
            "  \"budget_units\": \"stored local-information nodes per site\",\n",
            "  \"results\": [\n{}\n  ]\n}}\n"
        ),
        zipf_s,
        duration,
        warmup,
        rows.join(",\n")
    );
    if let Some(path) = out_path {
        std::fs::write(path, &json).expect("write sweep json");
        println!("\nwrote {path}");
    } else {
        println!("\n{json}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--budget-sweep") {
        let out = args
            .iter()
            .position(|a| a == "--budget-sweep")
            .and_then(|i| args.get(i + 1))
            .map(|s| s.as_str());
        budget_sweep(out);
        return;
    }
    let configs: Vec<(&str, OaConfig)> = vec![
        ("No caching", config(CacheMode::Off, 1.0)),
        ("Caching, 0% hits", config(CacheMode::Aggressive, 0.0)),
        ("Caching, 50% hits", config(CacheMode::Aggressive, 0.5)),
        ("Caching, 100% hits", config(CacheMode::Aggressive, 1.0)),
    ];
    type WorkloadMk = Box<dyn Fn(&ParkingDb) -> Workload>;
    let workloads: Vec<(&str, WorkloadMk)> = vec![
        ("QW-1", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T1, 41))),
        ("QW-2", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T2, 42))),
        ("QW-3", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T3, 43))),
        ("QW-4", Box::new(|db: &ParkingDb| Workload::uniform(db, QueryType::T4, 44))),
        ("QW-Mix", Box::new(|db: &ParkingDb| Workload::qw_mix(db, 45))),
    ];

    // Two engine models: (a) this crate's engine, whose id-pinned
    // evaluation is nearly independent of document size; (b) the paper's
    // prototype (Xalan template matching scans the whole site document),
    // modelled by charging ~30 ms of CPU per 1000 stored nodes — the value
    // implied by Fig. 11's ~100 ms execution time on a ~3000-node
    // neighborhood fragment. The paper's bottleneck inversion for QW-3/4
    // appears under (b).
    for (title, scan) in [
        ("engine-measured costs (this implementation)", 0.0),
        ("document-scan costs (paper's Xalan prototype)", 0.030),
    ] {
        println!("== Fig. 10: caching throughputs, Architecture 4 — {title} ==\n");
        print!("{:<24}", "Configuration");
        for (name, _) in &workloads {
            print!(" {name:>8}");
        }
        println!();
        println!("{}", "-".repeat(24 + 9 * workloads.len()));
        for (label, cfg) in &configs {
            print!("{label:<24}");
            for (_, mk) in &workloads {
                let qps = run_one(cfg.clone(), scan, |db| mk(db));
                print!(" {qps:>8.1}");
            }
            println!();
        }
        println!();
    }
    println!("(closed loop, 48 clients, {DURATION}s run, {WARMUP}s warmup)");
}
