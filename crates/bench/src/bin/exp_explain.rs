//! End-to-end demonstration of the observability plane: runs the two-site
//! cache-fill-then-hit scenario in the DES with a recorder attached, dumps
//! the trace + metrics as JSONL, round-trips the dump through the parser,
//! and prints the `query explain` report for every user query.
//!
//! Usage: exp_explain [out.jsonl]
//!
//! `scripts/obs_smoke.sh` drives this and validates the JSONL output.

use irisdns::SiteAddr;
use irisnet_bench::{DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{Endpoint, Message, OaConfig, OrganizingAgent, Status};
use irisobs::{check_well_formed, dump_jsonl, parse_spans, render_explain, MemRecorder};
use simnet::{CostModel, DesCluster};

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "obs_trace.jsonl".into());

    let db = ParkingDb::generate(
        DbParams {
            cities: 1,
            neighborhoods_per_city: 2,
            blocks_per_neighborhood: 2,
            spaces_per_block: 2,
        },
        42,
    );
    let svc = db.service.clone();
    let carved = db.neighborhood_path(0, 1);

    let mut sim = DesCluster::new(CostModel::default());
    let rec = MemRecorder::new();
    sim.set_recorder(rec.clone());

    let oa1 = OrganizingAgent::new(SiteAddr(1), svc.clone(), OaConfig::default());
    oa1.db_mut().bootstrap_owned(&db.master, &db.root_path(), true).unwrap();
    oa1.db_mut().set_status_subtree(&carved, Status::Complete).unwrap();
    oa1.db_mut().evict(&carved).unwrap();
    let oa2 = OrganizingAgent::new(SiteAddr(2), svc.clone(), OaConfig::default());
    oa2.db_mut().bootstrap_owned(&db.master, &carved, true).unwrap();
    sim.dns.register(&svc.dns_name(&db.root_path()), SiteAddr(1));
    sim.dns.register(&svc.dns_name(&carved), SiteAddr(2));
    sim.add_site(oa1);
    sim.add_site(oa2);

    // The same spanning query twice (fill, then hit), plus one narrow query.
    let t3 = Workload::uniform(&db, QueryType::T3, 11).next_query();
    let t1 = Workload::uniform(&db, QueryType::T1, 7).next_query();
    for (i, q) in [t3.clone(), t3, t1].iter().enumerate() {
        sim.schedule_message(
            i as f64 * 50.0,
            SiteAddr(1),
            Message::UserQuery {
                qid: i as u64 + 1,
                text: q.clone(),
                endpoint: Endpoint(10_000 + i as u64),
            },
        );
    }
    sim.run_until(300.0);
    let replies = sim.take_unclaimed_detailed();
    assert_eq!(replies.len(), 3, "expected 3 replies, got {}", replies.len());

    // Export: spans + the metrics registry (agent counters published first).
    sim.publish_metrics();
    let spans = rec.take_spans();
    let dump = dump_jsonl(&spans, &rec.metrics().snapshot());
    std::fs::write(&out_path, &dump).expect("write JSONL dump");

    // Round-trip: the file we just wrote parses back into the same spans
    // and still passes every structural invariant.
    let reread = std::fs::read_to_string(&out_path).expect("re-read dump");
    let parsed = parse_spans(&reread).expect("parse dumped spans");
    assert_eq!(parsed.len(), spans.len(), "span count changed in round-trip");
    assert_eq!(parsed, spans, "spans changed in round-trip");
    let forest = check_well_formed(&parsed).expect("round-tripped forest well-formed");
    println!(
        "roundtrip ok: {} spans, {} query traces, {} transfer traces -> {}",
        spans.len(),
        forest.queries.len(),
        forest.transfers.len(),
        out_path
    );
    println!();

    for tree in &forest.queries {
        println!("{}", render_explain(tree));
        println!();
    }
}
