//! Query workloads (§5.1).
//!
//! * **Type 1** — one block, exact path (LCA = block);
//! * **Type 2** — two blocks of one neighborhood (LCA = neighborhood);
//! * **Type 3** — two blocks of two neighborhoods in one city (LCA = city);
//! * **Type 4** — two blocks of two different cities (LCA = county);
//! * **QW-Mix** — 40% / 40% / 15% / 5%;
//! * **QW-Mix2** — 50% / 50% of types 1 and 2 (Fig. 8);
//! * skewed variants direct a fraction of type 1/2 queries at one fixed
//!   neighborhood (§5.3–5.4).

use irisdns::SiteAddr;
use irisnet_core::{IdPath, OaConfig, OrganizingAgent};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::parkingdb::{DbParams, ParkingDb};

/// The paper's four query types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryType {
    T1,
    T2,
    T3,
    T4,
}

impl QueryType {
    /// All types in order.
    pub const ALL: [QueryType; 4] = [QueryType::T1, QueryType::T2, QueryType::T3, QueryType::T4];

    /// Workload label as used in the paper ("QW-1" ... "QW-4").
    pub fn workload_name(self) -> &'static str {
        match self {
            QueryType::T1 => "QW-1",
            QueryType::T2 => "QW-2",
            QueryType::T3 => "QW-3",
            QueryType::T4 => "QW-4",
        }
    }
}

/// Where a fraction of queries is concentrated (skew experiments).
#[derive(Debug, Clone, Copy)]
pub struct Skew {
    pub city: usize,
    pub neighborhood: usize,
    /// Fraction of queries targeting the fixed neighborhood.
    pub fraction: f64,
}

/// A deterministic query stream.
pub struct Workload {
    rng: SmallRng,
    mix: Vec<(QueryType, f64)>,
    skew: Option<Skew>,
    /// Rank-based CDF over (city, neighborhood) pairs; when set, type 1/2
    /// targets are drawn Zipf-distributed instead of uniformly.
    zipf_cdf: Option<Vec<f64>>,
    cities: usize,
    neighborhoods: usize,
    blocks: usize,
    city_names: Vec<String>,
}

impl Workload {
    fn base(db: &ParkingDb, mix: Vec<(QueryType, f64)>, seed: u64) -> Workload {
        Workload {
            rng: SmallRng::seed_from_u64(seed),
            mix,
            skew: None,
            zipf_cdf: None,
            cities: db.params.cities,
            neighborhoods: db.params.neighborhoods_per_city,
            blocks: db.params.blocks_per_neighborhood,
            city_names: (0..db.params.cities)
                .map(|ci| db.city_name(ci).to_string())
                .collect(),
        }
    }

    /// A single-type workload (QW-1 ... QW-4).
    pub fn uniform(db: &ParkingDb, qt: QueryType, seed: u64) -> Workload {
        Workload::base(db, vec![(qt, 1.0)], seed)
    }

    /// QW-Mix: 40% T1, 40% T2, 15% T3, 5% T4.
    pub fn qw_mix(db: &ParkingDb, seed: u64) -> Workload {
        Workload::base(
            db,
            vec![
                (QueryType::T1, 0.40),
                (QueryType::T2, 0.40),
                (QueryType::T3, 0.15),
                (QueryType::T4, 0.05),
            ],
            seed,
        )
    }

    /// QW-Mix2: 50% T1, 50% T2 (Fig. 8).
    pub fn qw_mix2(db: &ParkingDb, seed: u64) -> Workload {
        Workload::base(
            db,
            vec![(QueryType::T1, 0.5), (QueryType::T2, 0.5)],
            seed,
        )
    }

    /// Directs `fraction` of type 1/2 queries at one fixed neighborhood.
    pub fn with_skew(mut self, city: usize, neighborhood: usize, fraction: f64) -> Workload {
        self.skew = Some(Skew { city, neighborhood, fraction });
        self
    }

    /// Zipf-distributes type 1/2 neighborhood targets with exponent `s`.
    ///
    /// Neighborhoods are ranked in row-major (city, neighborhood) order,
    /// rank `k` drawn with probability `∝ 1/k^s` — the smooth popularity
    /// curve the cache-budget experiments sweep, in contrast to
    /// [`Workload::with_skew`]'s single hot spot. `s = 0` degenerates to
    /// uniform; takes precedence over `with_skew` when both are set.
    pub fn with_zipf(mut self, s: f64) -> Workload {
        let n = self.cities * self.neighborhoods;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        self.zipf_cdf = Some(cdf);
        self
    }

    fn draw_zipf_rank(&mut self) -> Option<usize> {
        self.zipf_cdf.as_ref()?;
        let x: f64 = self.rng.random_range(0.0..1.0);
        let cdf = self.zipf_cdf.as_ref().unwrap();
        Some(cdf.partition_point(|&p| p < x).min(cdf.len() - 1))
    }

    fn draw_type(&mut self) -> QueryType {
        let x: f64 = self.rng.random_range(0.0..1.0);
        let mut acc = 0.0;
        for &(qt, w) in &self.mix {
            acc += w;
            if x < acc {
                return qt;
            }
        }
        self.mix.last().map(|&(qt, _)| qt).unwrap_or(QueryType::T1)
    }

    fn draw_neighborhood(&mut self) -> (usize, usize) {
        if let Some(rank) = self.draw_zipf_rank() {
            return (rank / self.neighborhoods, rank % self.neighborhoods);
        }
        if let Some(s) = self.skew {
            if self.rng.random_bool(s.fraction) {
                return (s.city, s.neighborhood);
            }
        }
        (
            self.rng.random_range(0..self.cities),
            self.rng.random_range(0..self.neighborhoods),
        )
    }

    fn prefix(&self, ci: usize) -> String {
        format!(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']/city[@id='{}']",
            self.city_names[ci]
        )
    }

    /// Produces the next query text.
    pub fn next_query(&mut self) -> String {
        let qt = self.draw_type();
        self.next_query_of(qt)
    }

    /// Produces a query of a specific type (used by tests and latency
    /// breakdowns).
    pub fn next_query_of(&mut self, qt: QueryType) -> String {
        match qt {
            QueryType::T1 => {
                let (ci, ni) = self.draw_neighborhood();
                let b = self.rng.random_range(0..self.blocks) + 1;
                format!(
                    "{}/neighborhood[@id='n{}']/block[@id='{}']/parkingSpace[available='yes']",
                    self.prefix(ci),
                    ni + 1,
                    b
                )
            }
            QueryType::T2 => {
                let (ci, ni) = self.draw_neighborhood();
                let b1 = self.rng.random_range(0..self.blocks) + 1;
                let mut b2 = self.rng.random_range(0..self.blocks) + 1;
                if b2 == b1 {
                    b2 = b1 % self.blocks + 1;
                }
                format!(
                    "{}/neighborhood[@id='n{}']/block[@id='{}' or @id='{}']/parkingSpace[available='yes']",
                    self.prefix(ci),
                    ni + 1,
                    b1,
                    b2
                )
            }
            QueryType::T3 => {
                // Under a Zipf popularity curve the first neighborhood is
                // drawn from it, so the multi-site (cacheable) queries
                // concentrate on the hot set like the single-site ones.
                let (ci, n1) = if self.zipf_cdf.is_some() {
                    let (c, n) = self.draw_neighborhood();
                    (c, n + 1)
                } else {
                    (
                        self.rng.random_range(0..self.cities),
                        self.rng.random_range(0..self.neighborhoods) + 1,
                    )
                };
                let mut n2 = self.rng.random_range(0..self.neighborhoods) + 1;
                if n2 == n1 {
                    n2 = n1 % self.neighborhoods + 1;
                }
                let b = self.rng.random_range(0..self.blocks) + 1;
                format!(
                    "{}/neighborhood[@id='n{}' or @id='n{}']/block[@id='{}']/parkingSpace[available='yes']",
                    self.prefix(ci),
                    n1,
                    n2,
                    b
                )
            }
            QueryType::T4 => {
                let (c1, n) = if self.zipf_cdf.is_some() {
                    let (c, n) = self.draw_neighborhood();
                    (c, n + 1)
                } else {
                    (
                        self.rng.random_range(0..self.cities),
                        self.rng.random_range(0..self.neighborhoods) + 1,
                    )
                };
                let mut c2 = self.rng.random_range(0..self.cities);
                if c2 == c1 {
                    c2 = (c1 + 1) % self.cities;
                }
                let b = self.rng.random_range(0..self.blocks) + 1;
                format!(
                    "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
                     /city[@id='{}' or @id='{}']/neighborhood[@id='n{}']/block[@id='{}']\
                     /parkingSpace[available='yes']",
                    self.city_names[c1], self.city_names[c2], n, b
                )
            }
        }
    }
}

/// A hierarchy shape that scales to thousands of sites: one site for the
/// region top (root / state / county nodes), one per city, one per
/// neighborhood subtree — the paper's Fig. 6(iv) placement with the
/// fanouts as free parameters instead of the fixed nine sites. The same
/// placement drives both substrates: [`ScaleHierarchy::make_agents`]
/// builds a fresh, identically bootstrapped agent set each call, so a
/// sharded-runtime run and its DES replay start from the same state.
pub struct ScaleHierarchy {
    pub db: ParkingDb,
    /// DNS registrations, `(ownership root, owner)`, top-first. Site
    /// addresses are dense from 1, so `addr % shards` spreads the
    /// hierarchy evenly over a sharded runtime.
    pub owners: Vec<(IdPath, SiteAddr)>,
}

impl ScaleHierarchy {
    /// Derives a database shape whose site count is exactly `sites`
    /// (`1 + cities + cities × neighborhoods`): cities ≈ √sites, the
    /// remainder folded into the neighborhood fanout of the last city.
    /// Small block/space fanouts keep the leaf documents light so the
    /// headline runs are bounded by site count, not document size.
    pub fn params_for_sites(sites: usize) -> DbParams {
        assert!(sites >= 7, "need at least 2 cities of 2 neighborhoods");
        let mut cities = ((sites as f64).sqrt() as usize).max(2);
        // Largest neighborhood fanout that fits, then shrink the city
        // count until the grid `1 + c + c*n` can reach `sites` exactly.
        loop {
            let n = (sites - 1 - cities) / cities;
            if n >= 2 && 1 + cities + cities * n == sites {
                return DbParams {
                    cities,
                    neighborhoods_per_city: n,
                    blocks_per_neighborhood: 2,
                    spaces_per_block: 2,
                };
            }
            cities -= 1;
            assert!(cities >= 2, "no grid of {sites} sites");
        }
    }

    /// Builds the placement for a generated database.
    pub fn build(params: DbParams, seed: u64) -> ScaleHierarchy {
        let db = ParkingDb::generate(params, seed);
        let mut owners = vec![(db.root_path(), SiteAddr(1))];
        let mut next = 2u32;
        for ci in 0..params.cities {
            owners.push((db.city_path(ci), SiteAddr(next)));
            next += 1;
        }
        for ci in 0..params.cities {
            for ni in 0..params.neighborhoods_per_city {
                owners.push((db.neighborhood_path(ci, ni), SiteAddr(next)));
                next += 1;
            }
        }
        ScaleHierarchy { db, owners }
    }

    /// Convenience: exactly `sites` sites.
    pub fn with_sites(sites: usize, seed: u64) -> ScaleHierarchy {
        ScaleHierarchy::build(ScaleHierarchy::params_for_sites(sites), seed)
    }

    pub fn site_count(&self) -> usize {
        self.owners.len()
    }

    /// Constructs and bootstraps one agent per site: skeleton nodes on the
    /// top and city sites, full subtrees on the neighborhood sites.
    /// Callable repeatedly — each call yields an identical fresh set.
    pub fn make_agents(&self, config: &OaConfig) -> Vec<OrganizingAgent> {
        let db = &self.db;
        let mut agents = Vec::with_capacity(self.site_count());
        let top = OrganizingAgent::new(SiteAddr(1), db.service.clone(), config.clone());
        top.db_mut()
            .bootstrap_owned(&db.master, &db.root_path(), false)
            .expect("root");
        top.db_mut()
            .bootstrap_owned(&db.master, &db.root_path().child("state", "PA"), false)
            .expect("state");
        top.db_mut()
            .bootstrap_owned(&db.master, &db.county_path(), false)
            .expect("county");
        agents.push(top);
        for (path, addr) in &self.owners[1..] {
            let a = OrganizingAgent::new(*addr, db.service.clone(), config.clone());
            let full_subtree = path.last().map(|(t, _)| t == "neighborhood").unwrap_or(false);
            a.db_mut()
                .bootstrap_owned(&db.master, path, full_subtree)
                .expect("bootstrap site");
            agents.push(a);
        }
        agents
    }

    /// The QW-Mix stream over this database, leaf heat Zipf-skewed with
    /// exponent `zipf` (0 = uniform).
    pub fn workload(&self, seed: u64, zipf: f64) -> Workload {
        Workload::qw_mix(&self.db, seed).with_zipf(zipf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parkingdb::DbParams;
    use irisnet_core::routing::route_query;

    fn db() -> ParkingDb {
        ParkingDb::generate(DbParams::small(), 1)
    }

    #[test]
    fn scale_params_hit_exact_site_counts() {
        for sites in [7, 13, 111, 1021, 10_000] {
            let p = ScaleHierarchy::params_for_sites(sites);
            assert_eq!(
                1 + p.cities + p.cities * p.neighborhoods_per_city,
                sites,
                "{p:?}"
            );
            assert_eq!(ScaleHierarchy::with_sites(sites, 1).site_count(), sites);
        }
    }

    #[test]
    fn scale_hierarchy_answers_on_des() {
        use irisnet_core::{Endpoint, Message};
        use simnet::{CostModel, DesCluster};

        let h = ScaleHierarchy::with_sites(13, 3);
        let mut sim = DesCluster::new(CostModel::default());
        for (path, addr) in &h.owners {
            sim.dns.register(&h.db.service.dns_name(path), *addr);
        }
        let agents = h.make_agents(&OaConfig::default());
        assert_eq!(agents.len(), 13);
        for a in agents {
            sim.add_site(a);
        }
        let mut w = h.workload(9, 0.8);
        for (i, qt) in [QueryType::T1, QueryType::T3, QueryType::T4]
            .into_iter()
            .enumerate()
        {
            sim.schedule_message(
                i as f64 * 50.0,
                SiteAddr(1),
                Message::UserQuery {
                    qid: i as u64 + 1,
                    text: w.next_query_of(qt),
                    endpoint: Endpoint(10_000 + i as u64),
                },
            );
        }
        sim.run_until(200.0);
        let replies = sim.take_unclaimed_detailed();
        assert_eq!(replies.len(), 3);
        for r in &replies {
            assert!(r.ok && !r.partial, "scale hierarchy query failed: {}", r.answer_xml);
        }
    }

    #[test]
    fn type1_routes_to_block() {
        let db = db();
        let mut w = Workload::uniform(&db, QueryType::T1, 5);
        for _ in 0..20 {
            let q = w.next_query_of(QueryType::T1);
            let (_, path, _) = route_query(&q, &db.service).unwrap();
            assert_eq!(path.last().map(|(t, _)| t.to_string()), Some("block".into()));
        }
    }

    #[test]
    fn type2_routes_to_neighborhood() {
        let db = db();
        let mut w = Workload::uniform(&db, QueryType::T2, 5);
        let q = w.next_query_of(QueryType::T2);
        let (_, path, _) = route_query(&q, &db.service).unwrap();
        assert_eq!(path.last().map(|(t, _)| t.to_string()), Some("neighborhood".into()));
    }

    #[test]
    fn type3_routes_to_city_and_type4_to_county() {
        let db = db();
        let mut w = Workload::uniform(&db, QueryType::T3, 5);
        let (_, p3, _) = route_query(&w.next_query_of(QueryType::T3), &db.service).unwrap();
        assert_eq!(p3.last().map(|(t, _)| t.to_string()), Some("city".into()));
        let (_, p4, _) = route_query(&w.next_query_of(QueryType::T4), &db.service).unwrap();
        assert_eq!(p4.last().map(|(t, _)| t.to_string()), Some("county".into()));
    }

    #[test]
    fn queries_parse_and_answer_on_master() {
        // Every generated query must evaluate without error on the master.
        let db = db();
        let mut w = Workload::qw_mix(&db, 99);
        for _ in 0..40 {
            let q = w.next_query();
            let e = sensorxpath::parse(&q).unwrap();
            let v = sensorxpath::evaluate_at(
                &e,
                &db.master,
                sensorxpath::XNode::Node(db.master.root().unwrap()),
            )
            .unwrap();
            assert!(v.as_nodes().is_some());
        }
    }

    #[test]
    fn mix_distribution_roughly_matches() {
        let db = db();
        let mut w = Workload::qw_mix(&db, 123);
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            match w.draw_type() {
                QueryType::T1 => counts[0] += 1,
                QueryType::T2 => counts[1] += 1,
                QueryType::T3 => counts[2] += 1,
                QueryType::T4 => counts[3] += 1,
            }
        }
        assert!((counts[0] as f64 - 800.0).abs() < 120.0, "{counts:?}");
        assert!((counts[1] as f64 - 800.0).abs() < 120.0, "{counts:?}");
        assert!((counts[2] as f64 - 300.0).abs() < 90.0, "{counts:?}");
        assert!((counts[3] as f64 - 100.0).abs() < 60.0, "{counts:?}");
    }

    #[test]
    fn skew_concentrates_targets() {
        let db = db();
        let mut w = Workload::uniform(&db, QueryType::T1, 42).with_skew(0, 0, 0.9);
        let mut hits = 0;
        for _ in 0..1000 {
            let q = w.next_query_of(QueryType::T1);
            if q.contains("city[@id='Pittsburgh']/neighborhood[@id='n1']") {
                hits += 1;
            }
        }
        // 90% skew plus ~1/6 of the uniform remainder.
        assert!(hits > 850, "hits: {hits}");
    }

    #[test]
    fn zipf_concentrates_on_low_ranks() {
        let db = db();
        let mut w = Workload::uniform(&db, QueryType::T1, 42).with_zipf(1.2);
        let mut rank0 = 0;
        for _ in 0..1000 {
            let q = w.next_query_of(QueryType::T1);
            if q.contains("city[@id='Pittsburgh']/neighborhood[@id='n1']") {
                rank0 += 1;
            }
        }
        // Rank 1 of a 1.2-exponent Zipf over the small db's neighborhoods
        // should draw well over a third of the traffic; uniform would get
        // ~1/6th.
        assert!(rank0 > 350, "rank-0 draws: {rank0}");
    }

    #[test]
    fn zipf_zero_is_roughly_uniform() {
        let db = db();
        let mut w = Workload::uniform(&db, QueryType::T1, 7).with_zipf(0.0);
        let mut rank0 = 0;
        for _ in 0..1200 {
            let q = w.next_query_of(QueryType::T1);
            if q.contains("city[@id='Pittsburgh']/neighborhood[@id='n1']") {
                rank0 += 1;
            }
        }
        let n = (db.params.cities * db.params.neighborhoods_per_city) as f64;
        let expect = 1200.0 / n;
        assert!((rank0 as f64 - expect).abs() < expect * 0.5, "rank-0 draws: {rank0}");
    }

    #[test]
    fn deterministic_streams() {
        let db = db();
        let mut a = Workload::qw_mix(&db, 7);
        let mut b = Workload::qw_mix(&db, 7);
        for _ in 0..50 {
            assert_eq!(a.next_query(), b.next_query());
        }
    }

    #[test]
    fn t2_blocks_are_distinct() {
        let db = db();
        let mut w = Workload::uniform(&db, QueryType::T2, 11);
        for _ in 0..100 {
            let q = w.next_query_of(QueryType::T2);
            let ids: Vec<&str> = q
                .match_indices("block[@id='")
                .map(|(i, _)| {
                    let rest = &q[i + 11..];
                    &rest[..rest.find('\'').unwrap()]
                })
                .collect();
            // Query text has the two block ids inside one predicate.
            let seg = q.split("block[").nth(1).unwrap();
            let _ = ids;
            let id1 = seg.split('\'').nth(1).unwrap();
            let id2 = seg.split('\'').nth(3).unwrap();
            assert_ne!(id1, id2, "query: {q}");
        }
    }
}
