//! Criterion benches for the XML/XPath/XSLT substrates in isolation —
//! regression guards for the engines the QEG pipeline is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use irisnet_bench::{DbParams, ParkingDb};
use sensorxslt::{compile, parse_stylesheet};

fn bench_xml(c: &mut Criterion) {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let root = db.master.root().unwrap();
    let text = sensorxml::serialize(&db.master, root);
    c.bench_function("xml/parse_master_2400_spaces", |b| {
        b.iter(|| sensorxml::parse(black_box(&text)).unwrap())
    });
    c.bench_function("xml/serialize_master_2400_spaces", |b| {
        b.iter(|| sensorxml::serialize(black_box(&db.master), root))
    });
    c.bench_function("xml/canonical_block", |b| {
        let block = db.block_path(0, 0, 0).resolve(&db.master).unwrap();
        b.iter(|| sensorxml::canonical_string(black_box(&db.master), block))
    });
    c.bench_function("xml/deep_copy_block", |b| {
        let block = db.block_path(0, 0, 0).resolve(&db.master).unwrap();
        b.iter(|| {
            let mut dst = sensorxml::Document::new();
            db.master.deep_copy_into(black_box(block), &mut dst)
        })
    });
}

fn bench_xpath_engine(c: &mut Criterion) {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let root = db.master.root().unwrap();
    let ctx_node = sensorxpath::XNode::Node(root);

    for (label, q) in [
        ("descendant_sweep", "//parkingSpace[available='yes']"),
        (
            "nested_min_price",
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
             /city[@id='Pittsburgh']/neighborhood[@id='n1']/block[@id='1']\
             /parkingSpace[not(price > ../parkingSpace/price)]",
        ),
        ("count_aggregate", "count(//parkingSpace[price='0'])"),
    ] {
        let expr = sensorxpath::parse(q).unwrap();
        c.bench_function(&format!("xpath/{label}"), |b| {
            b.iter(|| sensorxpath::evaluate_at(black_box(&expr), &db.master, ctx_node).unwrap())
        });
    }
}

fn bench_xslt_engine(c: &mut Criterion) {
    let sheet_text = r#"<xsl:stylesheet version="1.0">
        <xsl:template match="/">
          <summary><xsl:apply-templates select="//neighborhood"/></summary>
        </xsl:template>
        <xsl:template match="neighborhood">
          <n id="{@id}" free="{count(block/parkingSpace[available='yes'])}"/>
        </xsl:template>
      </xsl:stylesheet>"#;
    c.bench_function("xslt/parse_stylesheet", |b| {
        b.iter(|| parse_stylesheet(black_box(sheet_text)).unwrap())
    });
    let sheet = parse_stylesheet(sheet_text).unwrap();
    c.bench_function("xslt/compile", |b| {
        b.iter_batched(
            || sheet.clone(),
            |s| compile(s).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    let compiled = compile(sheet).unwrap();
    let db = ParkingDb::generate(DbParams::small(), 1);
    c.bench_function("xslt/apply_summary_over_master", |b| {
        b.iter(|| sensorxslt::apply(black_box(&compiled), &db.master).unwrap())
    });
}

criterion_group!(benches, bench_xml, bench_xpath_engine, bench_xslt_engine);
criterion_main!(benches);
