//! Criterion micro-benchmarks for the query-processing pipeline — the
//! per-operation counterpart of Fig. 11, plus the ablations DESIGN.md
//! calls out (naive vs fast XSLT creation, subsumption coalescing, DNS
//! cache on/off).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use irisdns::{AuthoritativeDns, CachingResolver, DnsName, SiteAddr};
use irisnet_bench::{DbParams, ParkingDb};
use irisnet_core::qeg::{plan_query, QegFactory};
use irisnet_core::{IdPath, SiteDatabase, XsltCreation};

const Q1: &str = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
    /city[@id='Pittsburgh']/neighborhood[@id='n1']/block[@id='7']\
    /parkingSpace[available='yes']";

/// A type 3 query (two neighborhoods of one city, LCA = city).
const Q3: &str = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
    /city[@id='Pittsburgh']/neighborhood[@id='n1' or @id='n2']/block[@id='7']\
    /parkingSpace[available='yes']";

fn nbhd_db(params: DbParams) -> (ParkingDb, SiteDatabase) {
    let db = ParkingDb::generate(params, 1);
    let mut site = SiteDatabase::new(db.service.clone());
    site.bootstrap_owned(&db.master, &db.neighborhood_path(0, 0), true)
        .expect("bootstrap");
    (db, site)
}

/// A site owning the entire database (the worst case for sibling scans).
fn root_db(params: DbParams) -> (ParkingDb, SiteDatabase) {
    let db = ParkingDb::generate(params, 1);
    let mut site = SiteDatabase::new(db.service.clone());
    site.bootstrap_owned(&db.master, &db.root_path(), true)
        .expect("bootstrap");
    (db, site)
}

fn bench_idpath_resolution(c: &mut Criterion) {
    // Indexed sibling lookup vs the linear scan it replaced, resolving full
    // root-to-space id paths on the base (2,400 spaces) and Fig. 11 8x
    // (19,200 spaces) master documents. A large stride walks the paths so
    // every iteration hits a different block.
    for (label, params) in [("2400", DbParams::small()), ("19200", DbParams::large())] {
        let db = ParkingDb::generate(params, 1);
        let paths = db.all_space_paths();
        c.bench_function(&format!("idpath/resolve_indexed_{label}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 997) % paths.len();
                black_box(&paths[i]).resolve(&db.master).unwrap()
            })
        });
        c.bench_function(&format!("idpath/resolve_linear_{label}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 997) % paths.len();
                black_box(&paths[i]).resolve_linear(&db.master).unwrap()
            })
        });
    }
}

fn bench_xpath(c: &mut Criterion) {
    c.bench_function("xpath/parse_type1_query", |b| {
        b.iter(|| sensorxpath::parse(black_box(Q1)).unwrap())
    });

    // Id-path resolution through the evaluator: the indexed fast path
    // (IndexedStep hints, as the optimizer emits them) vs the linear
    // scan-then-filter baseline (same optimized expression with the hints
    // stripped). This is the per-step predicate machinery the sibling index
    // bypasses, measured end to end on a fully id-pinned space query.
    const QSPACE: &str = "/usRegion[@id='NE']/state[@id='PA']\
        /county[@id='Allegheny']/city[@id='Pittsburgh']/neighborhood[@id='n3']\
        /block[@id='17']/parkingSpace[@id='23']";
    for (label, params) in [("2400", DbParams::small()), ("19200", DbParams::large())] {
        let db = ParkingDb::generate(params, 1);
        let root = sensorxpath::XNode::Node(db.master.root().unwrap());
        let hinted = sensorxpath::optimize(&sensorxpath::parse(QSPACE).unwrap());
        let mut stripped = hinted.clone();
        sensorxpath::strip_index_hints(&mut stripped);
        c.bench_function(&format!("xpath/idpath_eval_indexed_{label}"), |b| {
            b.iter(|| sensorxpath::evaluate_at(black_box(&hinted), &db.master, root).unwrap())
        });
        c.bench_function(&format!("xpath/idpath_eval_scan_{label}"), |b| {
            b.iter(|| sensorxpath::evaluate_at(black_box(&stripped), &db.master, root).unwrap())
        });
    }

    let (db, _) = nbhd_db(DbParams::small());
    let expr = sensorxpath::parse(Q1).unwrap();
    let root = db.master.root().unwrap();
    c.bench_function("xpath/eval_type1_on_master_2400", |b| {
        b.iter(|| {
            sensorxpath::evaluate_at(
                black_box(&expr),
                &db.master,
                sensorxpath::XNode::Node(root),
            )
            .unwrap()
        })
    });
}

fn bench_qeg_creation(c: &mut Criterion) {
    // The Fig. 11 "Creating the XSLT query" dimension.
    let (db, _) = nbhd_db(DbParams::small());
    let expr = sensorxpath::parse(Q1).unwrap();
    let plan = plan_query(&expr, &db.service).unwrap();

    let naive = QegFactory::new(db.service.clone(), XsltCreation::Naive);
    c.bench_function("qeg/create_naive", |b| {
        b.iter(|| naive.create(black_box(&plan)).unwrap())
    });

    let fast = QegFactory::new(db.service.clone(), XsltCreation::Fast);
    fast.create(&plan).unwrap(); // prime the skeleton
    c.bench_function("qeg/create_fast_patched", |b| {
        b.iter(|| fast.create(black_box(&plan)).unwrap())
    });
}

fn bench_qeg_execution(c: &mut Criterion) {
    // The Fig. 11 "Executing the XSLT query" dimension, small vs large DB.
    for (label, params) in [("small", DbParams::small()), ("large8x", DbParams::large())] {
        let (db, site) = nbhd_db(params);
        let expr = sensorxpath::parse(Q1).unwrap();
        let plan = plan_query(&expr, &db.service).unwrap();
        let fast = QegFactory::new(db.service.clone(), XsltCreation::Fast);
        let prog = fast.create(&plan).unwrap();
        c.bench_function(&format!("qeg/execute_nbhd_{label}"), |b| {
            b.iter(|| prog.execute(black_box(&site), 0.0).unwrap())
        });
    }

    // Type 1 and type 3 queries executed against a site owning the whole
    // database — the deep id-pinned descent the sibling index accelerates.
    // The `_scan` variants run the same compiled program with its index
    // hints stripped: the pre-index baseline.
    for (label, params) in [("small", DbParams::small()), ("large8x", DbParams::large())] {
        let (db, site) = root_db(params);
        let fast = QegFactory::new(db.service.clone(), XsltCreation::Fast);
        for (qlabel, q) in [("t1", Q1), ("t3", Q3)] {
            let expr = sensorxpath::parse(q).unwrap();
            let plan = plan_query(&expr, &db.service).unwrap();
            let prog = fast.create(&plan).unwrap();
            c.bench_function(&format!("qeg/execute_{qlabel}_root_{label}"), |b| {
                b.iter(|| prog.execute(black_box(&site), 0.0).unwrap())
            });
            let mut scan = prog.clone();
            for e in &mut scan.compiled.parsed {
                sensorxpath::strip_index_hints(e);
            }
            c.bench_function(&format!("qeg/execute_{qlabel}_root_{label}_scan"), |b| {
                b.iter(|| scan.execute(black_box(&site), 0.0).unwrap())
            });
        }
    }
}

fn bench_fragment_ops(c: &mut Criterion) {
    let (db, owner) = nbhd_db(DbParams::small());
    let block = db.block_path(0, 0, 3);
    let frag = owner.export_subtrees(std::slice::from_ref(&block)).unwrap();

    c.bench_function("fragment/export_block_subtree", |b| {
        b.iter(|| owner.export_subtrees(black_box(std::slice::from_ref(&block))).unwrap())
    });

    c.bench_function("fragment/merge_block_into_cache", |b| {
        b.iter_batched(
            || {
                let mut cache = SiteDatabase::new(db.service.clone());
                cache
                    .bootstrap_owned(&db.master, &db.neighborhood_path(0, 1), true)
                    .unwrap();
                cache
            },
            |mut cache| cache.merge_fragment(black_box(&frag)).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });

    let frag_root = frag.root().unwrap();
    c.bench_function("fragment/serialize_block_wire", |b| {
        b.iter(|| sensorxml::serialize(black_box(&frag), frag_root))
    });
    let wire = sensorxml::serialize(&frag, frag_root);
    c.bench_function("fragment/parse_block_wire", |b| {
        b.iter(|| sensorxml::parse(black_box(&wire)).unwrap())
    });

    let mut owner2 = owner.clone();
    let sp = block.child("parkingSpace", "1");
    c.bench_function("fragment/apply_update", |b| {
        let mut ts = 0.0f64;
        b.iter(|| {
            ts += 1.0;
            owner2
                .apply_update(
                    black_box(&sp),
                    &[("available".to_string(), "yes".to_string())],
                    ts,
                )
                .unwrap()
        })
    });

    // Ablation: subsumption coalescing of a fully-covered block.
    let spaces: Vec<IdPath> = (0..db.params.spaces_per_block)
        .map(|si| block.child("parkingSpace", format!("{}", si + 1)))
        .collect();
    c.bench_function("fragment/coalesce_covering_20_spaces", |b| {
        b.iter(|| owner.coalesce_covering_paths(black_box(&spaces)))
    });
}

fn bench_dns(c: &mut Criterion) {
    let db = ParkingDb::generate(DbParams::small(), 1);
    let mut auth = AuthoritativeDns::new();
    for bp in db.all_block_paths() {
        auth.register(&db.service.dns_name(&bp), SiteAddr(1));
    }
    let name = db.service.dns_name(&db.block_path(1, 2, 15));
    c.bench_function("dns/authoritative_lookup", |b| {
        b.iter(|| auth.lookup(black_box(&name)).unwrap())
    });

    // Ablation: resolver caching on vs off (cold every time).
    let mut cached = CachingResolver::new(3600.0);
    cached.resolve(&name, &auth, 0.0).unwrap();
    c.bench_function("dns/resolver_cached", |b| {
        b.iter(|| cached.resolve(black_box(&name), &auth, 1.0).unwrap())
    });
    let mut uncached = CachingResolver::new(0.0);
    c.bench_function("dns/resolver_uncached", |b| {
        b.iter(|| uncached.resolve(black_box(&name), &auth, 1.0).unwrap())
    });

    c.bench_function("dns/name_from_id_path", |b| {
        b.iter(|| {
            DnsName::from_id_path(
                black_box(&["NE", "PA", "Allegheny", "Pittsburgh"]),
                "parking.intel-iris.net",
            )
        })
    });
}

criterion_group!(
    benches,
    bench_xpath,
    bench_idpath_resolution,
    bench_qeg_creation,
    bench_qeg_execution,
    bench_fragment_ops,
    bench_dns
);
criterion_main!(benches);
