//! Hot-site throughput: concurrent client threads hammer a single owner
//! site with a read-mostly t1/t3 mix while the site's read-worker pool
//! grows (1/2/4/8 workers). The number that matters is queries/second vs
//! worker count — the intra-site scaling the read/mutation split buys.
//! `scripts/bench_smoke.sh` folds these means into BENCH_PR2.json.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use irisdns::SiteAddr;
use irisnet_bench::{DbParams, ParkingDb, QueryType, Workload};
use irisnet_core::{OaConfig, OrganizingAgent};
use simnet::LiveCluster;

/// Client threads × queries each per measured iteration. bench_smoke.sh
/// divides these 64 queries by the mean iteration time to get queries/sec.
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 8;

fn bench_hot_site(c: &mut Criterion) {
    let db = Arc::new(ParkingDb::generate(DbParams::small(), 1));

    // Deterministic per-client query sequences: alternating fully-specified
    // t1 and two-neighborhood t3 queries, all answered by the one owner.
    let mixes: Vec<Vec<String>> = (0..CLIENTS)
        .map(|t| {
            let mut w1 = Workload::uniform(&db, QueryType::T1, 100 + t as u64);
            let mut w3 = Workload::uniform(&db, QueryType::T3, 200 + t as u64);
            (0..QUERIES_PER_CLIENT)
                .map(|i| if i % 2 == 0 { w1.next_query() } else { w3.next_query() })
                .collect()
        })
        .collect();

    for workers in [0usize, 1, 2, 4, 8] {
        let mut cluster = LiveCluster::new(db.service.clone());
        let oa = OrganizingAgent::new(SiteAddr(1), db.service.clone(), OaConfig::default());
        oa.db_mut().bootstrap_owned(&db.master, &db.root_path(), true).unwrap();
        cluster.register_owner(&db.root_path(), SiteAddr(1));
        cluster.add_site_with_workers(oa, workers);
        let clients: Vec<_> = (0..CLIENTS).map(|_| cluster.client()).collect();

        c.bench_function(&format!("hot_site/mix_w{workers}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for (cl, mix) in clients.iter().zip(&mixes) {
                        s.spawn(move || {
                            for q in mix {
                                let r = cl
                                    .pose_query_at(q, SiteAddr(1), Duration::from_secs(30))
                                    .expect("hot-site reply");
                                assert!(r.ok, "query failed: {q}");
                            }
                        });
                    }
                });
            })
        });
        cluster.shutdown();
    }
}

criterion_group!(benches, bench_hot_site);
criterion_main!(benches);
