//! Source-level stylesheet IR.
//!
//! Every XPath embedded in a stylesheet (a `select`, `test`, pattern
//! predicate or `{...}` attribute value template) lives as *text* in the
//! stylesheet's slot table and is referenced by [`ExprSlot`]. Compilation
//! parses all slots; [`crate::Compiled::patch_slots`] re-parses selected
//! slots only — the mechanism behind the paper's fast XSLT creation (§4).

use std::fmt::Write as _;

use sensorxml::serialize::{push_escaped_attr, push_escaped_text};

/// Index into a [`Stylesheet`]'s expression slot table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprSlot(pub usize);

/// One step of a match pattern (matched right-to-left against the node and
/// its ancestors).
#[derive(Debug, Clone, PartialEq)]
pub struct PatternStep {
    /// Element name, `*`, `text()` or `node()` — reusing the XPath node
    /// test vocabulary.
    pub test: sensorxpath::NodeTest,
    /// Predicates on this pattern step.
    pub predicates: Vec<ExprSlot>,
}

/// A match pattern: `a/b[pred]`, `*`, `/`, `text()`, ...
///
/// Patterns are a restricted form of location paths: child-axis steps only,
/// matched from the right (the rightmost step must match the node itself,
/// each step to the left must match the respective ancestor). An absolute
/// pattern additionally anchors the leftmost step at the root.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    pub absolute: bool,
    /// Empty + absolute = the pattern `/` (document node).
    pub steps: Vec<PatternStep>,
}

impl Pattern {
    /// The pattern `/` matching the document node.
    pub fn root() -> Pattern {
        Pattern { absolute: true, steps: Vec::new() }
    }

    /// A single-step pattern matching elements by name.
    pub fn element(name: impl Into<String>) -> Pattern {
        Pattern {
            absolute: false,
            steps: vec![PatternStep {
                test: sensorxpath::NodeTest::Name(name.into()),
                predicates: Vec::new(),
            }],
        }
    }

    /// A single-step wildcard pattern `*`.
    pub fn any_element() -> Pattern {
        Pattern {
            absolute: false,
            steps: vec![PatternStep {
                test: sensorxpath::NodeTest::Any,
                predicates: Vec::new(),
            }],
        }
    }

    /// A `text()` pattern.
    pub fn text() -> Pattern {
        Pattern {
            absolute: false,
            steps: vec![PatternStep {
                test: sensorxpath::NodeTest::Text,
                predicates: Vec::new(),
            }],
        }
    }

    /// Default XSLT priority: `*`/`node()` = -0.5, plain name or `text()` =
    /// 0, anything with predicates or multiple steps = 0.5.
    pub fn default_priority(&self) -> f64 {
        if self.steps.len() > 1 || self.steps.iter().any(|s| !s.predicates.is_empty()) {
            return 0.5;
        }
        match self.steps.first() {
            None => -0.5, // `/`
            Some(s) => match s.test {
                sensorxpath::NodeTest::Any | sensorxpath::NodeTest::Node => -0.5,
                _ => 0.0,
            },
        }
    }
}

/// A piece of an attribute value template: literal text or `{expr}`.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPart {
    Literal(String),
    Expr(ExprSlot),
}

/// An XSLT instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Literal text output.
    Text(String),
    /// `<xsl:value-of select=.../>` — string value of the expression.
    ValueOf(ExprSlot),
    /// `<xsl:copy-of select=.../>` — deep copy of a node-set (attribute
    /// nodes become attributes of the current output element), or text for
    /// scalars.
    CopyOf(ExprSlot),
    /// `<xsl:copy>` — shallow copy of the context node (no attributes, per
    /// XSLT 1.0), body instantiated inside.
    Copy(Vec<Instruction>),
    /// A literal result element (or `<xsl:element name>` with a static
    /// name): attributes carry value templates.
    Element {
        name: String,
        attrs: Vec<(String, Vec<AttrPart>)>,
        body: Vec<Instruction>,
    },
    /// `<xsl:attribute name=...>` with a value template body.
    Attribute { name: String, value: Vec<AttrPart> },
    /// `<xsl:apply-templates select=... mode=.../>`; `select` defaults to
    /// the children of the context node.
    ApplyTemplates {
        select: Option<ExprSlot>,
        mode: Option<String>,
    },
    /// `<xsl:if test=...>`.
    If { test: ExprSlot, body: Vec<Instruction> },
    /// `<xsl:choose>` with `(test, body)` branches and an optional
    /// `otherwise`.
    Choose {
        branches: Vec<(ExprSlot, Vec<Instruction>)>,
        otherwise: Vec<Instruction>,
    },
    /// `<xsl:for-each select=...>`.
    ForEach { select: ExprSlot, body: Vec<Instruction> },
    /// `<xsl:variable name=... select=.../>` — binds in the remainder of
    /// the current body.
    Variable { name: String, select: ExprSlot },
}

/// A template rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    pub pattern: Pattern,
    pub mode: Option<String>,
    /// Explicit priority; defaults to [`Pattern::default_priority`].
    pub priority: Option<f64>,
    pub body: Vec<Instruction>,
}

/// A stylesheet: template rules plus the expression slot table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stylesheet {
    pub templates: Vec<Template>,
    /// XPath sources referenced by [`ExprSlot`].
    pub exprs: Vec<String>,
}

impl Stylesheet {
    /// Creates an empty stylesheet.
    pub fn new() -> Stylesheet {
        Stylesheet::default()
    }

    /// Interns an XPath source string, returning its slot.
    pub fn slot(&mut self, source: impl Into<String>) -> ExprSlot {
        self.exprs.push(source.into());
        ExprSlot(self.exprs.len() - 1)
    }

    /// Adds a template and returns its index.
    pub fn add_template(&mut self, t: Template) -> usize {
        self.templates.push(t);
        self.templates.len() - 1
    }

    /// Serializes to standard `<xsl:...>` text (re-parseable by
    /// [`crate::parse_stylesheet`]). Used by the *naive* QEG path, which —
    /// like the paper's unoptimized prototype — generates stylesheet text
    /// and pays full parse + compile cost per query.
    pub fn to_xml_text(&self) -> String {
        let mut out = String::new();
        out.push_str("<xsl:stylesheet version=\"1.0\">\n");
        for t in &self.templates {
            out.push_str("<xsl:template match=\"");
            push_escaped_attr(&mut out, &self.pattern_text(&t.pattern));
            out.push('"');
            if let Some(m) = &t.mode {
                let _ = write!(out, " mode=\"{m}\"");
            }
            if let Some(p) = t.priority {
                let _ = write!(out, " priority=\"{p}\"");
            }
            out.push('>');
            self.body_text(&t.body, &mut out);
            out.push_str("</xsl:template>\n");
        }
        out.push_str("</xsl:stylesheet>\n");
        out
    }

    fn pattern_text(&self, p: &Pattern) -> String {
        if p.steps.is_empty() {
            return "/".to_string();
        }
        let mut s = String::new();
        if p.absolute {
            s.push('/');
        }
        for (i, step) in p.steps.iter().enumerate() {
            if i > 0 {
                s.push('/');
            }
            let _ = write!(s, "{}", step.test);
            for &pred in &step.predicates {
                let _ = write!(s, "[{}]", self.exprs[pred.0]);
            }
        }
        s
    }

    fn attr_value_text(&self, parts: &[AttrPart], out: &mut String) {
        for part in parts {
            match part {
                AttrPart::Literal(s) => {
                    // `{`/`}` must be doubled in attribute value templates.
                    for ch in s.chars() {
                        match ch {
                            '{' => out.push_str("{{"),
                            '}' => out.push_str("}}"),
                            _ => {
                                let mut buf = String::new();
                                push_escaped_attr(&mut buf, &ch.to_string());
                                out.push_str(&buf);
                            }
                        }
                    }
                }
                AttrPart::Expr(slot) => {
                    out.push('{');
                    push_escaped_attr(out, &self.exprs[slot.0]);
                    out.push('}');
                }
            }
        }
    }

    fn body_text(&self, body: &[Instruction], out: &mut String) {
        for instr in body {
            match instr {
                Instruction::Text(t) => push_escaped_text(out, t),
                Instruction::ValueOf(slot) => {
                    out.push_str("<xsl:value-of select=\"");
                    push_escaped_attr(out, &self.exprs[slot.0]);
                    out.push_str("\"/>");
                }
                Instruction::CopyOf(slot) => {
                    out.push_str("<xsl:copy-of select=\"");
                    push_escaped_attr(out, &self.exprs[slot.0]);
                    out.push_str("\"/>");
                }
                Instruction::Copy(body) => {
                    out.push_str("<xsl:copy>");
                    self.body_text(body, out);
                    out.push_str("</xsl:copy>");
                }
                Instruction::Element { name, attrs, body } => {
                    let _ = write!(out, "<{name}");
                    for (an, av) in attrs {
                        let _ = write!(out, " {an}=\"");
                        self.attr_value_text(av, out);
                        out.push('"');
                    }
                    out.push('>');
                    self.body_text(body, out);
                    let _ = write!(out, "</{name}>");
                }
                Instruction::Attribute { name, value } => {
                    let _ = write!(out, "<xsl:attribute name=\"{name}\" value=\"");
                    self.attr_value_text(value, out);
                    out.push_str("\"/>");
                }
                Instruction::ApplyTemplates { select, mode } => {
                    out.push_str("<xsl:apply-templates");
                    if let Some(slot) = select {
                        out.push_str(" select=\"");
                        push_escaped_attr(out, &self.exprs[slot.0]);
                        out.push('"');
                    }
                    if let Some(m) = mode {
                        let _ = write!(out, " mode=\"{m}\"");
                    }
                    out.push_str("/>");
                }
                Instruction::If { test, body } => {
                    out.push_str("<xsl:if test=\"");
                    push_escaped_attr(out, &self.exprs[test.0]);
                    out.push_str("\">");
                    self.body_text(body, out);
                    out.push_str("</xsl:if>");
                }
                Instruction::Choose { branches, otherwise } => {
                    out.push_str("<xsl:choose>");
                    for (test, body) in branches {
                        out.push_str("<xsl:when test=\"");
                        push_escaped_attr(out, &self.exprs[test.0]);
                        out.push_str("\">");
                        self.body_text(body, out);
                        out.push_str("</xsl:when>");
                    }
                    if !otherwise.is_empty() {
                        out.push_str("<xsl:otherwise>");
                        self.body_text(otherwise, out);
                        out.push_str("</xsl:otherwise>");
                    }
                    out.push_str("</xsl:choose>");
                }
                Instruction::ForEach { select, body } => {
                    out.push_str("<xsl:for-each select=\"");
                    push_escaped_attr(out, &self.exprs[select.0]);
                    out.push_str("\">");
                    self.body_text(body, out);
                    out.push_str("</xsl:for-each>");
                }
                Instruction::Variable { name, select } => {
                    let _ = write!(out, "<xsl:variable name=\"{name}\" select=\"");
                    push_escaped_attr(out, &self.exprs[select.0]);
                    out.push_str("\"/>");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_interning() {
        let mut s = Stylesheet::new();
        let a = s.slot("@id");
        let b = s.slot("block");
        assert_eq!(a, ExprSlot(0));
        assert_eq!(b, ExprSlot(1));
        assert_eq!(s.exprs, vec!["@id".to_string(), "block".to_string()]);
    }

    #[test]
    fn default_priorities() {
        assert_eq!(Pattern::root().default_priority(), -0.5);
        assert_eq!(Pattern::any_element().default_priority(), -0.5);
        assert_eq!(Pattern::element("a").default_priority(), 0.0);
        assert_eq!(Pattern::text().default_priority(), 0.0);
        let mut s = Stylesheet::new();
        let pred = s.slot("@id = '1'");
        let p = Pattern {
            absolute: false,
            steps: vec![PatternStep {
                test: sensorxpath::NodeTest::Name("a".into()),
                predicates: vec![pred],
            }],
        };
        assert_eq!(p.default_priority(), 0.5);
    }

    #[test]
    fn to_xml_text_emits_templates() {
        let mut s = Stylesheet::new();
        let sel = s.slot("block");
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: Some("step1".into()),
            priority: None,
            body: vec![
                Instruction::Text("hi".into()),
                Instruction::ApplyTemplates {
                    select: Some(sel),
                    mode: Some("step2".into()),
                },
            ],
        });
        let text = s.to_xml_text();
        assert!(text.contains("match=\"neighborhood\""));
        assert!(text.contains("mode=\"step1\""));
        assert!(text.contains("select=\"block\""));
        assert!(text.contains("hi"));
    }
}
