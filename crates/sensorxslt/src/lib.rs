//! # sensorxslt
//!
//! A template-matching XSLT engine (a focused subset of XSLT 1.0) over
//! [`sensorxml`] documents, with XPath provided by [`sensorxpath`].
//!
//! The IrisNet paper (SIGMOD 2003) evaluates XPATH queries over fragmented
//! documents by *compiling each XPATH query into an XSLT program* and
//! running it against the site's fragment (§3.5). Two properties of that
//! design shape this crate:
//!
//! * **An explicit compile stage.** A [`Stylesheet`] is source-level IR
//!   with every embedded XPath held as *text* in a slot table; [`compile()`](fn@crate::compile)
//!   parses all slots and builds the template dispatch index. The paper's
//!   §4 optimization ("Speeding up XSLT processing") precompiles a skeleton
//!   once and then patches only the query-dependent expressions — that is
//!   [`Compiled::patch_slots`], which reparses only the named slots.
//! * **Supported instruction set**: `template` (match/mode/priority),
//!   `apply-templates`, `value-of`, `copy-of`, `copy`, `element`,
//!   `attribute` (with `{...}` value templates), `if`, `choose`/`when`/
//!   `otherwise`, `for-each`, `variable`, and literal result elements/text.
//!   This is exactly the vocabulary query-evaluate-gather programs need.
//!
//! Stylesheets can be built programmatically (the fast path) or parsed from
//! standard `<xsl:...>` text ([`parse_stylesheet`], the naive path), and a
//! programmatic stylesheet can be serialized back to XSLT text
//! ([`Stylesheet::to_xml_text`]).

pub mod compile;
pub mod error;
pub mod exec;
pub mod ir;
pub mod parse;

pub use compile::{compile, Compiled};
pub use error::{XsltError, XsltResult};
pub use exec::{apply, apply_with_options, ExecOptions};
pub use ir::{
    AttrPart, ExprSlot, Instruction, Pattern, PatternStep, Stylesheet, Template,
};
pub use parse::parse_stylesheet;
