//! Parsing textual `<xsl:...>` stylesheets into the IR.
//!
//! This is the **naive creation** path of the paper's Fig. 11: generating
//! stylesheet text for each query and paying XML parse + pattern parse +
//! XPath compile cost every time. The fast path bypasses this module
//! entirely (programmatic IR + [`crate::Compiled::patch_slots`]).

use sensorxml::{Document, NodeId, NodeKind, ParseOptions};
use sensorxpath::{Axis, Expr};

use crate::error::{XsltError, XsltResult};
use crate::ir::{AttrPart, Instruction, Pattern, PatternStep, Stylesheet, Template};

/// Parses stylesheet text into a [`Stylesheet`].
pub fn parse_stylesheet(text: &str) -> XsltResult<Stylesheet> {
    let doc = sensorxml::parse_with_options(
        text,
        ParseOptions { trim_whitespace_text: true },
    )?;
    let root = doc.require_root()?;
    if doc.name(root) != "xsl:stylesheet" && doc.name(root) != "xsl:transform" {
        return Err(XsltError::Stylesheet(format!(
            "root element must be xsl:stylesheet, found `{}`",
            doc.name(root)
        )));
    }
    let mut sheet = Stylesheet::new();
    for t in doc.child_elements(root) {
        if doc.name(t) != "xsl:template" {
            return Err(XsltError::Stylesheet(format!(
                "expected xsl:template, found `{}`",
                doc.name(t)
            )));
        }
        let match_src = doc
            .attr(t, "match")
            .ok_or_else(|| XsltError::Stylesheet("xsl:template requires match".into()))?;
        let pattern = parse_pattern(match_src, &mut sheet)?;
        let mode = doc.attr(t, "mode").map(String::from);
        let priority = match doc.attr(t, "priority") {
            Some(p) => Some(p.parse::<f64>().map_err(|_| {
                XsltError::Stylesheet(format!("bad priority `{p}`"))
            })?),
            None => None,
        };
        let body = parse_body(&doc, t, &mut sheet)?;
        sheet.add_template(Template { pattern, mode, priority, body });
    }
    Ok(sheet)
}

/// Parses a match pattern (`/`, `name`, `*`, `text()`, `a/b[pred]`).
pub fn parse_pattern(src: &str, sheet: &mut Stylesheet) -> XsltResult<Pattern> {
    let trimmed = src.trim();
    if trimmed == "/" {
        return Ok(Pattern::root());
    }
    let expr = sensorxpath::parse(trimmed)?;
    let Expr::Path(path) = expr else {
        return Err(XsltError::Stylesheet(format!("`{src}` is not a pattern")));
    };
    let mut steps = Vec::with_capacity(path.steps.len());
    for s in &path.steps {
        if s.axis != Axis::Child {
            return Err(XsltError::Stylesheet(format!(
                "patterns support child steps only, found `{}::`",
                s.axis.name()
            )));
        }
        let predicates = s
            .predicates
            .iter()
            .map(|p| sheet.slot(p.to_string()))
            .collect();
        steps.push(PatternStep { test: s.test.clone(), predicates });
    }
    Ok(Pattern { absolute: path.absolute, steps })
}

fn parse_body(doc: &Document, parent: NodeId, sheet: &mut Stylesheet) -> XsltResult<Vec<Instruction>> {
    let mut out = Vec::new();
    for &c in doc.children(parent) {
        match doc.kind(c) {
            NodeKind::Text(t) => out.push(Instruction::Text(t.clone())),
            NodeKind::Element(_) => out.push(parse_instruction(doc, c, sheet)?),
        }
    }
    Ok(out)
}

fn required_attr(doc: &Document, el: NodeId, name: &str) -> XsltResult<String> {
    doc.attr(el, name).map(String::from).ok_or_else(|| {
        XsltError::Stylesheet(format!("`{}` requires attribute `{name}`", doc.name(el)))
    })
}

fn parse_instruction(doc: &Document, el: NodeId, sheet: &mut Stylesheet) -> XsltResult<Instruction> {
    let name = doc.name(el);
    match name {
        "xsl:value-of" => Ok(Instruction::ValueOf(
            sheet.slot(required_attr(doc, el, "select")?),
        )),
        "xsl:copy-of" => Ok(Instruction::CopyOf(
            sheet.slot(required_attr(doc, el, "select")?),
        )),
        "xsl:copy" => Ok(Instruction::Copy(parse_body(doc, el, sheet)?)),
        "xsl:apply-templates" => Ok(Instruction::ApplyTemplates {
            select: doc.attr(el, "select").map(|s| sheet.slot(s.to_string())),
            mode: doc.attr(el, "mode").map(String::from),
        }),
        "xsl:if" => Ok(Instruction::If {
            test: sheet.slot(required_attr(doc, el, "test")?),
            body: parse_body(doc, el, sheet)?,
        }),
        "xsl:choose" => {
            let mut branches = Vec::new();
            let mut otherwise = Vec::new();
            for b in doc.child_elements(el) {
                match doc.name(b) {
                    "xsl:when" => {
                        let test = sheet.slot(required_attr(doc, b, "test")?);
                        branches.push((test, parse_body(doc, b, sheet)?));
                    }
                    "xsl:otherwise" => {
                        otherwise = parse_body(doc, b, sheet)?;
                    }
                    other => {
                        return Err(XsltError::Stylesheet(format!(
                            "unexpected `{other}` inside xsl:choose"
                        )))
                    }
                }
            }
            Ok(Instruction::Choose { branches, otherwise })
        }
        "xsl:for-each" => Ok(Instruction::ForEach {
            select: sheet.slot(required_attr(doc, el, "select")?),
            body: parse_body(doc, el, sheet)?,
        }),
        "xsl:variable" => Ok(Instruction::Variable {
            name: required_attr(doc, el, "name")?,
            select: sheet.slot(required_attr(doc, el, "select")?),
        }),
        "xsl:attribute" => {
            let attr_name = required_attr(doc, el, "name")?;
            // Two forms: value="AVT" (compact, used by generated sheets) or
            // text content (standard XSLT).
            let value = match doc.attr(el, "value") {
                Some(v) => parse_avt(v, sheet)?,
                None => vec![AttrPart::Literal(doc.text_content(el))],
            };
            Ok(Instruction::Attribute { name: attr_name, value })
        }
        "xsl:element" => Ok(Instruction::Element {
            name: required_attr(doc, el, "name")?,
            attrs: Vec::new(),
            body: parse_body(doc, el, sheet)?,
        }),
        "xsl:text" => Ok(Instruction::Text(doc.text_content(el))),
        other if other.starts_with("xsl:") => Err(XsltError::Stylesheet(format!(
            "unsupported instruction `{other}`"
        ))),
        _ => {
            // Literal result element; attributes are value templates.
            let mut attrs = Vec::new();
            for a in doc.attrs(el) {
                attrs.push((a.name.clone(), parse_avt(&a.value, sheet)?));
            }
            Ok(Instruction::Element {
                name: name.to_string(),
                attrs,
                body: parse_body(doc, el, sheet)?,
            })
        }
    }
}

/// Parses an attribute value template: `{expr}` parts alternate with
/// literal text; `{{` and `}}` escape braces.
pub fn parse_avt(src: &str, sheet: &mut Stylesheet) -> XsltResult<Vec<AttrPart>> {
    let mut parts = Vec::new();
    let mut literal = String::new();
    let mut chars = src.chars().peekable();
    while let Some(ch) = chars.next() {
        match ch {
            '{' => {
                if chars.peek() == Some(&'{') {
                    chars.next();
                    literal.push('{');
                    continue;
                }
                if !literal.is_empty() {
                    parts.push(AttrPart::Literal(std::mem::take(&mut literal)));
                }
                let mut expr = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '}' {
                        closed = true;
                        break;
                    }
                    expr.push(c);
                }
                if !closed {
                    return Err(XsltError::Stylesheet(format!(
                        "unterminated `{{` in value template `{src}`"
                    )));
                }
                parts.push(AttrPart::Expr(sheet.slot(expr)));
            }
            '}' => {
                if chars.peek() == Some(&'}') {
                    chars.next();
                    literal.push('}');
                } else {
                    return Err(XsltError::Stylesheet(format!(
                        "stray `}}` in value template `{src}`"
                    )));
                }
            }
            c => literal.push(c),
        }
    }
    if !literal.is_empty() {
        parts.push(AttrPart::Literal(literal));
    }
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::exec::apply;
    use sensorxml::serialize;

    #[test]
    fn parse_and_run_textual_stylesheet() {
        let sheet = parse_stylesheet(
            r#"<xsl:stylesheet version="1.0">
                 <xsl:template match="/">
                   <answer><xsl:apply-templates select="city/neighborhood"/></answer>
                 </xsl:template>
                 <xsl:template match="neighborhood">
                   <n name="{@id}"><xsl:value-of select="count(block)"/></n>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let c = compile(sheet).unwrap();
        let input = sensorxml::parse(
            r#"<city><neighborhood id="Oakland"><block/><block/></neighborhood><neighborhood id="Etna"/></city>"#,
        )
        .unwrap();
        let out = apply(&c, &input).unwrap();
        assert_eq!(
            serialize(&out, out.root().unwrap()),
            r#"<result><answer><n name="Oakland">2</n><n name="Etna">0</n></answer></result>"#
        );
    }

    #[test]
    fn roundtrip_through_to_xml_text() {
        let original = parse_stylesheet(
            r#"<xsl:stylesheet version="1.0">
                 <xsl:template match="a" mode="m">
                   <xsl:choose>
                     <xsl:when test="@s='1'"><one/></xsl:when>
                     <xsl:otherwise><xsl:copy><xsl:copy-of select="@*"/></xsl:copy></xsl:otherwise>
                   </xsl:choose>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let text = original.to_xml_text();
        let reparsed = parse_stylesheet(&text).unwrap();
        // Template structure survives (slot numbering may differ, so
        // compare behaviourally).
        let input = sensorxml::parse(r#"<a s="2" x="y"/>"#).unwrap();
        let o1 = apply(&compile(original).unwrap(), &input).unwrap();
        let o2 = apply(&compile(reparsed).unwrap(), &input).unwrap();
        assert!(sensorxml::unordered_eq(
            &o1,
            o1.root().unwrap(),
            &o2,
            o2.root().unwrap()
        ));
    }

    #[test]
    fn pattern_forms() {
        let mut s = Stylesheet::new();
        assert_eq!(parse_pattern("/", &mut s).unwrap(), Pattern::root());
        assert_eq!(parse_pattern("a", &mut s).unwrap(), Pattern::element("a"));
        assert_eq!(parse_pattern("*", &mut s).unwrap(), Pattern::any_element());
        assert_eq!(parse_pattern("text()", &mut s).unwrap(), Pattern::text());
        let p = parse_pattern("a/b[@id='1']", &mut s).unwrap();
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[1].predicates.len(), 1);
        // Non-child axes rejected.
        assert!(parse_pattern("ancestor::a", &mut s).is_err());
        assert!(parse_pattern("1 + 2", &mut s).is_err());
    }

    #[test]
    fn avt_forms() {
        let mut s = Stylesheet::new();
        let parts = parse_avt("pre-{@id}-post", &mut s).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], AttrPart::Literal("pre-".into()));
        assert!(matches!(parts[1], AttrPart::Expr(_)));
        let esc = parse_avt("a{{b}}c", &mut s).unwrap();
        assert_eq!(esc, vec![AttrPart::Literal("a{b}c".into())]);
        assert!(parse_avt("{unclosed", &mut s).is_err());
        assert!(parse_avt("stray}", &mut s).is_err());
    }

    #[test]
    fn errors_on_bad_structure() {
        assert!(parse_stylesheet("<notxsl/>").is_err());
        assert!(parse_stylesheet(
            "<xsl:stylesheet><xsl:template/></xsl:stylesheet>"
        )
        .is_err());
        assert!(parse_stylesheet(
            "<xsl:stylesheet><xsl:template match='a'><xsl:unknown/></xsl:template></xsl:stylesheet>"
        )
        .is_err());
        assert!(parse_stylesheet(
            "<xsl:stylesheet><bogus match='a'/></xsl:stylesheet>"
        )
        .is_err());
    }

    #[test]
    fn xsl_attribute_and_element_forms() {
        let sheet = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="a">
                   <xsl:element name="wrap">
                     <xsl:attribute name="tag" value="{@id}-v"/>
                   </xsl:element>
                 </xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let c = compile(sheet).unwrap();
        let input = sensorxml::parse(r#"<a id="7"/>"#).unwrap();
        let out = apply(&c, &input).unwrap();
        assert_eq!(
            serialize(&out, out.root().unwrap()),
            r#"<result><wrap tag="7-v"/></result>"#
        );
    }
}
