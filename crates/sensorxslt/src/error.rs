//! Error types for stylesheet parsing, compilation and execution.

use std::fmt;

/// Result alias used throughout the crate.
pub type XsltResult<T> = Result<T, XsltError>;

/// An error raised by the XSLT layer.
#[derive(Debug, Clone, PartialEq)]
pub enum XsltError {
    /// The stylesheet XML was malformed.
    Xml(sensorxml::XmlError),
    /// An embedded XPath failed to parse or evaluate.
    XPath(sensorxpath::XPathError),
    /// The stylesheet structure was invalid (unknown instruction, missing
    /// required attribute, bad pattern, ...).
    Stylesheet(String),
    /// An [`crate::ir::ExprSlot`] index was out of range.
    BadSlot(usize),
    /// Template recursion exceeded the safety limit.
    RecursionLimit,
}

impl fmt::Display for XsltError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsltError::Xml(e) => write!(f, "stylesheet XML error: {e}"),
            XsltError::XPath(e) => write!(f, "embedded XPath error: {e}"),
            XsltError::Stylesheet(msg) => write!(f, "invalid stylesheet: {msg}"),
            XsltError::BadSlot(i) => write!(f, "expression slot {i} out of range"),
            XsltError::RecursionLimit => write!(f, "template recursion limit exceeded"),
        }
    }
}

impl std::error::Error for XsltError {}

impl From<sensorxml::XmlError> for XsltError {
    fn from(e: sensorxml::XmlError) -> Self {
        XsltError::Xml(e)
    }
}

impl From<sensorxpath::XPathError> for XsltError {
    fn from(e: sensorxpath::XPathError) -> Self {
        XsltError::XPath(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(XsltError::Stylesheet("x".into()).to_string().contains("invalid"));
        assert!(XsltError::BadSlot(3).to_string().contains("3"));
        assert!(XsltError::RecursionLimit.to_string().contains("recursion"));
    }
}
