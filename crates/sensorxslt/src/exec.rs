//! The stylesheet executor.
//!
//! Execution applies templates starting from the document node in the
//! requested mode, writing into a fresh output [`Document`]. Built-in rules
//! mirror XSLT 1.0: unmatched elements/document recurse into children in
//! the same mode; unmatched text copies itself to output.

use sensorxml::{Document, NodeId};
use sensorxpath::eval::{evaluate, EvalContext};
use sensorxpath::{Expr, Value, Vars, XNode};

use crate::compile::Compiled;
use crate::error::{XsltError, XsltResult};
use crate::ir::{AttrPart, Instruction, Pattern};

/// Knobs for one execution.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Value of the `now()` extension function (query-time, for consistency
    /// predicates). NaN if unset.
    pub now: f64,
    /// Mode to start in (`None` = default mode).
    pub start_mode: Option<String>,
    /// Template recursion limit.
    pub max_depth: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        // Deep enough for any sensor hierarchy while staying well inside
        // the native stack even in debug builds (each template level costs
        // several interpreter frames).
        ExecOptions { now: f64::NAN, start_mode: None, max_depth: 128 }
    }
}

/// Runs a compiled stylesheet against `input` with default options.
pub fn apply(compiled: &Compiled, input: &Document) -> XsltResult<Document> {
    apply_with_options(compiled, input, ExecOptions::default())
}

/// Runs a compiled stylesheet against `input`.
///
/// The output document gets a synthetic `<result>` root so that template
/// bodies may emit zero or many top-level nodes (the QEG post-processor
/// unwraps it).
pub fn apply_with_options(
    compiled: &Compiled,
    input: &Document,
    options: ExecOptions,
) -> XsltResult<Document> {
    let (mut out, out_root) = Document::with_root("result");
    let mut exec = Exec {
        compiled,
        input,
        out: &mut out,
        options,
        depth: 0,
    };
    let start_mode = exec.options.start_mode.clone();
    exec.apply_templates_to(&[XNode::Document], start_mode.as_deref(), out_root, &Vars::new())?;
    Ok(out)
}

struct Exec<'a> {
    compiled: &'a Compiled,
    input: &'a Document,
    out: &'a mut Document,
    options: ExecOptions,
    depth: usize,
}

impl Exec<'_> {
    fn eval(&self, slot: crate::ir::ExprSlot, node: XNode, vars: &Vars) -> XsltResult<Value> {
        let expr = self.compiled.expr(slot)?;
        Ok(self.eval_expr(expr, node, vars)?)
    }

    fn eval_expr(&self, expr: &Expr, node: XNode, vars: &Vars) -> Result<Value, sensorxpath::XPathError> {
        let mut ctx = EvalContext::new(self.input, node, vars);
        ctx.now = self.options.now;
        evaluate(expr, &ctx)
    }

    /// Selects nodes and applies the best matching template to each.
    fn apply_templates_to(
        &mut self,
        nodes: &[XNode],
        mode: Option<&str>,
        out_parent: NodeId,
        vars: &Vars,
    ) -> XsltResult<()> {
        self.depth += 1;
        if self.depth > self.options.max_depth {
            return Err(XsltError::RecursionLimit);
        }
        for &n in nodes {
            match self.best_template(n, mode, vars)? {
                Some(t_idx) => {
                    let body = &self.compiled.sheet.templates[t_idx].body;
                    self.run_body(body, n, out_parent, &mut vars.clone())?;
                }
                None => self.builtin_rule(n, mode, out_parent, vars)?,
            }
        }
        self.depth -= 1;
        Ok(())
    }

    fn builtin_rule(
        &mut self,
        n: XNode,
        mode: Option<&str>,
        out_parent: NodeId,
        vars: &Vars,
    ) -> XsltResult<()> {
        match n {
            XNode::Document => {
                if let Some(r) = self.input.root() {
                    self.apply_templates_to(&[XNode::Node(r)], mode, out_parent, vars)?;
                }
            }
            XNode::Node(id) => {
                if self.input.is_text(id) {
                    let text = self.input.text(id).unwrap_or_default().to_string();
                    let t = self.out.create_text(text);
                    self.out.append_child(out_parent, t);
                } else {
                    let children: Vec<XNode> = self
                        .input
                        .children(id)
                        .iter()
                        .map(|&c| XNode::Node(c))
                        .collect();
                    self.apply_templates_to(&children, mode, out_parent, vars)?;
                }
            }
            XNode::Attr(..) => {
                let t = self.out.create_text(n.string_value(self.input));
                self.out.append_child(out_parent, t);
            }
        }
        Ok(())
    }

    /// Finds the highest-priority matching template (last declared wins
    /// ties, as in XSLT's "last in import order").
    fn best_template(&self, n: XNode, mode: Option<&str>, vars: &Vars) -> XsltResult<Option<usize>> {
        let name = match n {
            XNode::Node(id) if self.input.is_element(id) => Some(self.input.name(id)),
            _ => None,
        };
        let cands = self.compiled.candidates(mode, name);
        let mut best: Option<(f64, usize)> = None;
        for i in cands {
            let t = &self.compiled.sheet.templates[i];
            if self.pattern_matches(&t.pattern, n, vars)? {
                let p = self.compiled.priority(i);
                let better = match best {
                    None => true,
                    Some((bp, bi)) => p > bp || (p == bp && i > bi),
                };
                if better {
                    best = Some((p, i));
                }
            }
        }
        Ok(best.map(|(_, i)| i))
    }

    fn pattern_matches(&self, pat: &Pattern, n: XNode, vars: &Vars) -> XsltResult<bool> {
        if pat.steps.is_empty() {
            // Pattern `/`.
            return Ok(pat.absolute && n == XNode::Document);
        }
        // Match right-to-left against the node and its ancestors.
        let mut cur = n;
        for (i, step) in pat.steps.iter().rev().enumerate() {
            if i > 0 {
                match self.parent_of(cur) {
                    Some(p) => cur = p,
                    None => return Ok(false),
                }
            }
            if !self.step_matches(step, cur, vars)? {
                return Ok(false);
            }
        }
        if pat.absolute {
            // The leftmost step's parent must be the document node.
            return Ok(matches!(self.parent_of(cur), Some(XNode::Document)));
        }
        Ok(true)
    }

    fn parent_of(&self, n: XNode) -> Option<XNode> {
        match n {
            XNode::Document => None,
            XNode::Attr(id, _) => Some(XNode::Node(id)),
            XNode::Node(id) => match self.input.parent(id) {
                Some(p) => Some(XNode::Node(p)),
                None if self.input.root() == Some(id) => Some(XNode::Document),
                None => None,
            },
        }
    }

    fn step_matches(
        &self,
        step: &crate::ir::PatternStep,
        n: XNode,
        vars: &Vars,
    ) -> XsltResult<bool> {
        use sensorxpath::NodeTest;
        let ok = match n {
            XNode::Document => false,
            XNode::Attr(..) => false,
            XNode::Node(id) => match &step.test {
                NodeTest::Name(want) => {
                    self.input.is_element(id) && self.input.name(id) == want
                }
                NodeTest::Any => self.input.is_element(id),
                NodeTest::Text => self.input.is_text(id),
                NodeTest::Node => true,
            },
        };
        if !ok {
            return Ok(false);
        }
        for &pred in &step.predicates {
            if !self.eval(pred, n, vars)?.boolean() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn run_body(
        &mut self,
        body: &[Instruction],
        node: XNode,
        out_parent: NodeId,
        vars: &mut Vars,
    ) -> XsltResult<()> {
        for instr in body {
            self.run_instr(instr, node, out_parent, vars)?;
        }
        Ok(())
    }

    fn run_instr(
        &mut self,
        instr: &Instruction,
        node: XNode,
        out_parent: NodeId,
        vars: &mut Vars,
    ) -> XsltResult<()> {
        match instr {
            Instruction::Text(t) => {
                let tn = self.out.create_text(t.clone());
                self.out.append_child(out_parent, tn);
            }
            Instruction::ValueOf(slot) => {
                let v = self.eval(*slot, node, vars)?;
                let s = v.string(self.input);
                if !s.is_empty() {
                    let tn = self.out.create_text(s);
                    self.out.append_child(out_parent, tn);
                }
            }
            Instruction::CopyOf(slot) => {
                let v = self.eval(*slot, node, vars)?;
                self.copy_value(&v, out_parent)?;
            }
            Instruction::Copy(body) => {
                let new = match node {
                    XNode::Node(id) => {
                        if self.input.is_element(id) {
                            let e = self.out.create_element(self.input.name(id).to_string());
                            self.out.append_child(out_parent, e);
                            Some(e)
                        } else {
                            let tn = self
                                .out
                                .create_text(self.input.text(id).unwrap_or_default().to_string());
                            self.out.append_child(out_parent, tn);
                            None
                        }
                    }
                    XNode::Attr(id, idx) => {
                        let a = &self.input.attrs(id)[idx as usize];
                        self.out.set_attr(out_parent, a.name.clone(), a.value.clone());
                        None
                    }
                    XNode::Document => Some(out_parent),
                };
                if let Some(e) = new {
                    self.run_body(body, node, e, &mut vars.clone())?;
                }
            }
            Instruction::Element { name, attrs, body } => {
                let e = self.out.create_element(name.clone());
                self.out.append_child(out_parent, e);
                for (an, av) in attrs {
                    let val = self.attr_value(av, node, vars)?;
                    self.out.set_attr(e, an.clone(), val);
                }
                self.run_body(body, node, e, &mut vars.clone())?;
            }
            Instruction::Attribute { name, value } => {
                let val = self.attr_value(value, node, vars)?;
                self.out.set_attr(out_parent, name.clone(), val);
            }
            Instruction::ApplyTemplates { select, mode } => {
                let nodes: Vec<XNode> = match select {
                    Some(slot) => {
                        let v = self.eval(*slot, node, vars)?;
                        match v {
                            Value::Nodes(ns) => ns,
                            _ => {
                                return Err(XsltError::Stylesheet(
                                    "apply-templates select must yield a node-set".into(),
                                ))
                            }
                        }
                    }
                    None => match node {
                        XNode::Node(id) => self
                            .input
                            .children(id)
                            .iter()
                            .map(|&c| XNode::Node(c))
                            .collect(),
                        XNode::Document => {
                            self.input.root().map(XNode::Node).into_iter().collect()
                        }
                        XNode::Attr(..) => Vec::new(),
                    },
                };
                self.apply_templates_to(&nodes, mode.as_deref(), out_parent, vars)?;
            }
            Instruction::If { test, body } => {
                if self.eval(*test, node, vars)?.boolean() {
                    self.run_body(body, node, out_parent, &mut vars.clone())?;
                }
            }
            Instruction::Choose { branches, otherwise } => {
                for (test, body) in branches {
                    if self.eval(*test, node, vars)?.boolean() {
                        return self.run_body(body, node, out_parent, &mut vars.clone());
                    }
                }
                self.run_body(otherwise, node, out_parent, &mut vars.clone())?;
            }
            Instruction::ForEach { select, body } => {
                let v = self.eval(*select, node, vars)?;
                let Value::Nodes(ns) = v else {
                    return Err(XsltError::Stylesheet(
                        "for-each select must yield a node-set".into(),
                    ));
                };
                for n in ns {
                    self.run_body(body, n, out_parent, &mut vars.clone())?;
                }
            }
            Instruction::Variable { name, select } => {
                let v = self.eval(*select, node, vars)?;
                vars.insert(name.clone(), v);
            }
        }
        Ok(())
    }

    fn attr_value(&self, parts: &[AttrPart], node: XNode, vars: &Vars) -> XsltResult<String> {
        let mut out = String::new();
        for p in parts {
            match p {
                AttrPart::Literal(s) => out.push_str(s),
                AttrPart::Expr(slot) => {
                    let v = self.eval(*slot, node, vars)?;
                    out.push_str(&v.string(self.input));
                }
            }
        }
        Ok(out)
    }

    fn copy_value(&mut self, v: &Value, out_parent: NodeId) -> XsltResult<()> {
        match v {
            Value::Nodes(ns) => {
                for n in ns {
                    match *n {
                        XNode::Node(id) => {
                            let c = self.input.deep_copy_into(id, self.out);
                            self.out.append_child(out_parent, c);
                        }
                        XNode::Attr(id, idx) => {
                            if let Some(a) = self.input.attrs(id).get(idx as usize) {
                                self.out
                                    .set_attr(out_parent, a.name.clone(), a.value.clone());
                            }
                        }
                        XNode::Document => {
                            if let Some(r) = self.input.root() {
                                let c = self.input.deep_copy_into(r, self.out);
                                self.out.append_child(out_parent, c);
                            }
                        }
                    }
                }
            }
            other => {
                let s = other.string(self.input);
                if !s.is_empty() {
                    let t = self.out.create_text(s);
                    self.out.append_child(out_parent, t);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::ir::{Pattern, PatternStep, Stylesheet, Template};
    use sensorxml::{parse, serialize, unordered_eq};

    fn input() -> Document {
        parse(
            r#"<city id="Pittsburgh">
                 <neighborhood id="Oakland" status="owned">
                   <block id="1"><sp id="a">yes</sp><sp id="b">no</sp></block>
                 </neighborhood>
                 <neighborhood id="Shadyside" status="incomplete"/>
               </city>"#,
        )
        .unwrap()
    }

    fn run(sheet: Stylesheet, doc: &Document) -> Document {
        let c = compile(sheet).unwrap();
        apply(&c, doc).unwrap()
    }

    fn result_xml(out: &Document) -> String {
        serialize(out, out.root().unwrap())
    }

    #[test]
    fn builtin_rules_copy_text_through() {
        // No templates at all: built-ins walk the tree and emit text.
        let out = run(Stylesheet::new(), &input());
        assert_eq!(result_xml(&out), "<result>yesno</result>");
    }

    #[test]
    fn simple_template_with_value_of() {
        let mut s = Stylesheet::new();
        let sel = s.slot("@id");
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: None,
            priority: None,
            body: vec![
                Instruction::Element {
                    name: "n".into(),
                    attrs: vec![],
                    body: vec![Instruction::ValueOf(sel)],
                },
            ],
        });
        let out = run(s, &input());
        assert_eq!(result_xml(&out), "<result><n>Oakland</n><n>Shadyside</n></result>");
    }

    #[test]
    fn copy_with_copied_attrs_via_copy_of() {
        let mut s = Stylesheet::new();
        let attrs = s.slot("@*");
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: None,
            priority: None,
            body: vec![Instruction::Copy(vec![Instruction::CopyOf(attrs)])],
        });
        let out = run(s, &input());
        let expected = parse(
            r#"<result><neighborhood id="Oakland" status="owned"/><neighborhood id="Shadyside" status="incomplete"/></result>"#,
        )
        .unwrap();
        assert!(unordered_eq(
            &out,
            out.root().unwrap(),
            &expected,
            expected.root().unwrap()
        ));
    }

    #[test]
    fn choose_on_status() {
        let mut s = Stylesheet::new();
        let owned = s.slot("@status = 'owned'");
        let incomplete = s.slot("@status = 'incomplete'");
        let idsel = s.slot("@id");
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: None,
            priority: None,
            body: vec![Instruction::Choose {
                branches: vec![
                    (
                        owned,
                        vec![Instruction::Element {
                            name: "have".into(),
                            attrs: vec![(
                                "id".into(),
                                vec![AttrPart::Expr(idsel)],
                            )],
                            body: vec![],
                        }],
                    ),
                    (
                        incomplete,
                        vec![Instruction::Element {
                            name: "asksubquery".into(),
                            attrs: vec![("id".into(), vec![AttrPart::Expr(idsel)])],
                            body: vec![],
                        }],
                    ),
                ],
                otherwise: vec![Instruction::Text("?".into())],
            }],
        });
        let out = run(s, &input());
        assert_eq!(
            result_xml(&out),
            r#"<result><have id="Oakland"/><asksubquery id="Shadyside"/></result>"#
        );
    }

    #[test]
    fn modes_route_templates() {
        let mut s = Stylesheet::new();
        let sel_n = s.slot("neighborhood");
        s.add_template(Template {
            pattern: Pattern::element("city"),
            mode: None,
            priority: None,
            body: vec![Instruction::ApplyTemplates {
                select: Some(sel_n),
                mode: Some("deep".into()),
            }],
        });
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: Some("deep".into()),
            priority: None,
            body: vec![Instruction::Text("D".into())],
        });
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: None,
            priority: None,
            body: vec![Instruction::Text("WRONG".into())],
        });
        let out = run(s, &input());
        assert_eq!(result_xml(&out), "<result>DD</result>");
    }

    #[test]
    fn for_each_and_variables() {
        let mut s = Stylesheet::new();
        let blocks = s.slot("neighborhood/block/sp");
        let v = s.slot("@id");
        let use_v = s.slot("$cur");
        s.add_template(Template {
            pattern: Pattern::element("city"),
            mode: None,
            priority: None,
            body: vec![Instruction::ForEach {
                select: blocks,
                body: vec![
                    Instruction::Variable { name: "cur".into(), select: v },
                    Instruction::Element {
                        name: "spot".into(),
                        attrs: vec![("name".into(), vec![
                            AttrPart::Literal("sp-".into()),
                            AttrPart::Expr(use_v),
                        ])],
                        body: vec![],
                    },
                ],
            }],
        });
        let out = run(s, &input());
        assert_eq!(
            result_xml(&out),
            r#"<result><spot name="sp-a"/><spot name="sp-b"/></result>"#
        );
    }

    #[test]
    fn priority_tie_broken_by_declaration_order() {
        let mut s = Stylesheet::new();
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: None,
            priority: None,
            body: vec![Instruction::Text("first".into())],
        });
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: None,
            priority: None,
            body: vec![Instruction::Text("second".into())],
        });
        let out = run(s, &input());
        assert_eq!(result_xml(&out), "<result>secondsecond</result>");
    }

    #[test]
    fn explicit_priority_wins() {
        let mut s = Stylesheet::new();
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: None,
            priority: Some(10.0),
            body: vec![Instruction::Text("high".into())],
        });
        s.add_template(Template {
            pattern: Pattern::element("neighborhood"),
            mode: None,
            priority: None,
            body: vec![Instruction::Text("low".into())],
        });
        let out = run(s, &input());
        assert_eq!(result_xml(&out), "<result>highhigh</result>");
    }

    #[test]
    fn multi_step_pattern_requires_ancestry() {
        let mut s = Stylesheet::new();
        // Matches sp only under block.
        s.add_template(Template {
            pattern: Pattern {
                absolute: false,
                steps: vec![
                    PatternStep {
                        test: sensorxpath::NodeTest::Name("block".into()),
                        predicates: vec![],
                    },
                    PatternStep {
                        test: sensorxpath::NodeTest::Name("sp".into()),
                        predicates: vec![],
                    },
                ],
            },
            mode: None,
            priority: None,
            body: vec![Instruction::Text("S".into())],
        });
        let out = run(s, &input());
        assert_eq!(result_xml(&out), "<result>SS</result>");
    }

    #[test]
    fn pattern_with_predicate() {
        let mut s = Stylesheet::new();
        let pred = s.slot("@id = 'Oakland'");
        s.add_template(Template {
            pattern: Pattern {
                absolute: false,
                steps: vec![PatternStep {
                    test: sensorxpath::NodeTest::Name("neighborhood".into()),
                    predicates: vec![pred],
                }],
            },
            mode: None,
            priority: None,
            body: vec![Instruction::Text("O".into())],
        });
        let out = run(s, &input());
        // Shadyside falls through to built-in (no text below it).
        assert_eq!(result_xml(&out), "<result>O</result>");
    }

    #[test]
    fn absolute_root_pattern() {
        let mut s = Stylesheet::new();
        s.add_template(Template {
            pattern: Pattern::root(),
            mode: None,
            priority: None,
            body: vec![Instruction::Text("R".into())],
        });
        let out = run(s, &input());
        assert_eq!(result_xml(&out), "<result>R</result>");
    }

    #[test]
    fn recursion_limit_enforced() {
        let mut s = Stylesheet::new();
        let self_sel = s.slot(".");
        s.add_template(Template {
            pattern: Pattern::element("city"),
            mode: None,
            priority: None,
            body: vec![Instruction::ApplyTemplates {
                select: Some(self_sel),
                mode: None,
            }],
        });
        let c = compile(s).unwrap();
        assert!(matches!(apply(&c, &input()), Err(XsltError::RecursionLimit)));
    }

    #[test]
    fn now_function_threaded_through() {
        let mut s = Stylesheet::new();
        let test = s.slot("now() = 123");
        s.add_template(Template {
            pattern: Pattern::element("city"),
            mode: None,
            priority: None,
            body: vec![Instruction::If { test, body: vec![Instruction::Text("T".into())] }],
        });
        let c = compile(s).unwrap();
        let out = apply_with_options(
            &c,
            &input(),
            ExecOptions { now: 123.0, ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(result_xml(&out), "<result>T</result>");
    }
}
