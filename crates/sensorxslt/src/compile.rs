//! Stylesheet compilation: parse all expression slots, index templates.
//!
//! [`compile`] is the expensive step the paper measures ("Creating the XSLT
//! query", Fig. 11). [`Compiled::patch_slots`] implements the §4
//! optimization: keep the compiled skeleton and re-parse only the
//! query-dependent slots.

use std::collections::HashMap;

use sensorxpath::{Expr, NodeTest};

use crate::error::{XsltError, XsltResult};
use crate::ir::{ExprSlot, Pattern, Stylesheet};

/// A compiled stylesheet: the IR plus parsed expressions and a template
/// dispatch index.
#[derive(Debug, Clone)]
pub struct Compiled {
    pub sheet: Stylesheet,
    /// Parsed expressions, parallel to `sheet.exprs`.
    pub parsed: Vec<Expr>,
    /// Template indices by `(mode, element name)`; `None` name buckets hold
    /// templates whose leading test is not a plain name (wildcards, text(),
    /// node(), `/`), which must be considered for every node.
    index: HashMap<(Option<String>, Option<String>), Vec<usize>>,
}

/// Compiles a stylesheet: parses every expression slot and builds the
/// dispatch index.
pub fn compile(sheet: Stylesheet) -> XsltResult<Compiled> {
    let mut parsed = Vec::with_capacity(sheet.exprs.len());
    for src in &sheet.exprs {
        let mut e = sensorxpath::parse(src)?;
        sensorxpath::mark_index_hints(&mut e);
        parsed.push(e);
    }
    let mut index: HashMap<(Option<String>, Option<String>), Vec<usize>> = HashMap::new();
    for (i, t) in sheet.templates.iter().enumerate() {
        let name = leading_name(&t.pattern);
        index.entry((t.mode.clone(), name)).or_default().push(i);
    }
    Ok(Compiled { sheet, parsed, index })
}

fn leading_name(p: &Pattern) -> Option<String> {
    match p.steps.last().map(|s| &s.test) {
        Some(NodeTest::Name(n)) => Some(n.clone()),
        _ => None,
    }
}

impl Compiled {
    /// Re-parses only the given slots with new sources — the fast path for
    /// per-query stylesheet creation (paper §4). The template structure and
    /// all other parsed expressions are reused as-is.
    pub fn patch_slots(&mut self, updates: &[(ExprSlot, String)]) -> XsltResult<()> {
        for (slot, src) in updates {
            let i = slot.0;
            if i >= self.parsed.len() {
                return Err(XsltError::BadSlot(i));
            }
            let mut e = sensorxpath::parse(src)?;
            sensorxpath::mark_index_hints(&mut e);
            self.parsed[i] = e;
            self.sheet.exprs[i] = src.clone();
        }
        Ok(())
    }

    /// The parsed expression for a slot.
    pub fn expr(&self, slot: ExprSlot) -> XsltResult<&Expr> {
        self.parsed.get(slot.0).ok_or(XsltError::BadSlot(slot.0))
    }

    /// Candidate template indices for a node with element name `name` (or
    /// `None` for text/document nodes) in `mode`.
    pub fn candidates(&self, mode: Option<&str>, name: Option<&str>) -> Vec<usize> {
        let mut out = Vec::new();
        let mode_key = mode.map(|s| s.to_string());
        if let Some(n) = name {
            if let Some(v) = self.index.get(&(mode_key.clone(), Some(n.to_string()))) {
                out.extend_from_slice(v);
            }
        }
        if let Some(v) = self.index.get(&(mode_key, None)) {
            out.extend_from_slice(v);
        }
        out
    }

    /// Effective priority of template `i`.
    pub fn priority(&self, i: usize) -> f64 {
        let t = &self.sheet.templates[i];
        t.priority.unwrap_or_else(|| t.pattern.default_priority())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Instruction, PatternStep, Template};

    fn sheet_with(patterns: Vec<(Pattern, Option<&str>)>) -> Stylesheet {
        let mut s = Stylesheet::new();
        for (p, mode) in patterns {
            s.add_template(Template {
                pattern: p,
                mode: mode.map(String::from),
                priority: None,
                body: vec![Instruction::Text("x".into())],
            });
        }
        s
    }

    #[test]
    fn compile_parses_all_slots() {
        let mut s = Stylesheet::new();
        let a = s.slot("@id = '1'");
        let b = s.slot("block/parkingSpace");
        let c = compile(s).unwrap();
        assert!(c.expr(a).is_ok());
        assert!(c.expr(b).is_ok());
        assert!(matches!(c.expr(ExprSlot(99)), Err(XsltError::BadSlot(99))));
    }

    #[test]
    fn compile_rejects_bad_xpath() {
        let mut s = Stylesheet::new();
        s.slot("@id = ");
        assert!(matches!(compile(s), Err(XsltError::XPath(_))));
    }

    #[test]
    fn candidates_by_name_and_wildcard() {
        let s = sheet_with(vec![
            (Pattern::element("a"), None),
            (Pattern::any_element(), None),
            (Pattern::element("a"), Some("m")),
            (Pattern::text(), None),
        ]);
        let c = compile(s).unwrap();
        // name buckets plus the None bucket (wildcard + text template).
        assert_eq!(c.candidates(None, Some("a")), vec![0, 1, 3]);
        assert_eq!(c.candidates(Some("m"), Some("a")), vec![2]);
        assert_eq!(c.candidates(None, Some("zzz")), vec![1, 3]);
        assert_eq!(c.candidates(None, None), vec![1, 3]);
    }

    #[test]
    fn patch_slots_reparses_only_targets() {
        let mut s = Stylesheet::new();
        let a = s.slot("true()");
        let b = s.slot("false()");
        let mut c = compile(s).unwrap();
        c.patch_slots(&[(a, "@id = 'patched'".to_string())]).unwrap();
        assert_eq!(c.sheet.exprs[a.0], "@id = 'patched'");
        assert_eq!(c.sheet.exprs[b.0], "false()");
        assert_eq!(c.expr(a).unwrap().as_id_equals(), Some("patched"));
        // Bad patches are rejected.
        assert!(matches!(
            c.patch_slots(&[(ExprSlot(42), "x".into())]),
            Err(XsltError::BadSlot(42))
        ));
        assert!(matches!(
            c.patch_slots(&[(b, "][".into())]),
            Err(XsltError::XPath(_))
        ));
    }

    #[test]
    fn priority_defaults_and_overrides() {
        let mut s = Stylesheet::new();
        s.add_template(Template {
            pattern: Pattern::element("a"),
            mode: None,
            priority: Some(3.5),
            body: vec![],
        });
        s.add_template(Template {
            pattern: Pattern {
                absolute: false,
                steps: vec![PatternStep {
                    test: NodeTest::Name("b".into()),
                    predicates: vec![],
                }],
            },
            mode: None,
            priority: None,
            body: vec![],
        });
        let c = compile(s).unwrap();
        assert_eq!(c.priority(0), 3.5);
        assert_eq!(c.priority(1), 0.0);
    }
}
