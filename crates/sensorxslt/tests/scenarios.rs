//! Scenario tests for the XSLT engine: QEG-shaped stylesheets, report
//! generation, identity-style transforms, patching behaviour.

use sensorxml::{parse, serialize, unordered_eq};
use sensorxslt::{compile, parse_stylesheet, ExecOptions};

fn input() -> sensorxml::Document {
    parse(
        r#"<city id="P" status="owned">
             <neighborhood id="n1" status="owned">
               <block id="1" status="owned">
                 <parkingSpace id="1" status="owned"><available>yes</available></parkingSpace>
                 <parkingSpace id="2" status="owned"><available>no</available></parkingSpace>
               </block>
               <block id="2" status="incomplete"/>
             </neighborhood>
             <neighborhood id="n2" status="id-complete">
               <block id="1" status="incomplete"/>
             </neighborhood>
           </city>"#,
    )
    .unwrap()
}

#[test]
fn qeg_like_status_walk() {
    // A hand-written miniature of the generated QEG program: walk the
    // hierarchy, copy ids, and emit asks for incomplete nodes.
    let sheet = parse_stylesheet(
        r#"<xsl:stylesheet version="1.0">
             <xsl:template match="/"><xsl:apply-templates select="city"/></xsl:template>
             <xsl:template match="*">
               <xsl:choose>
                 <xsl:when test="@status='incomplete'">
                   <ask tag="{name()}" id="{@id}"/>
                 </xsl:when>
                 <xsl:otherwise>
                   <xsl:copy>
                     <xsl:copy-of select="@id"/>
                     <xsl:apply-templates select="*[@status]"/>
                   </xsl:copy>
                 </xsl:otherwise>
               </xsl:choose>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let out = sensorxslt::apply(&compile(sheet).unwrap(), &input()).unwrap();
    let xml = serialize(&out, out.root().unwrap());
    assert!(xml.contains(r#"<ask tag="block" id="2"/>"#));
    assert!(xml.contains(r#"<ask tag="block" id="1"/>"#)); // under n2
    assert!(xml.contains(r#"<parkingSpace id="1""#) || xml.contains(r#"<parkingSpace id="1"/>"#));
}

#[test]
fn report_with_aggregates_and_for_each() {
    let sheet = parse_stylesheet(
        r#"<xsl:stylesheet version="1.0">
             <xsl:template match="/">
               <report total="{count(//parkingSpace)}">
                 <xsl:for-each select="//neighborhood">
                   <row id="{@id}" blocks="{count(block)}"
                        free="{count(block/parkingSpace[available='yes'])}"/>
                 </xsl:for-each>
               </report>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let out = sensorxslt::apply(&compile(sheet).unwrap(), &input()).unwrap();
    let xml = serialize(&out, out.root().unwrap());
    assert!(xml.contains(r#"<report total="2">"#));
    assert!(xml.contains(r#"<row id="n1" blocks="2" free="1"/>"#));
    assert!(xml.contains(r#"<row id="n2" blocks="1" free="0"/>"#));
}

#[test]
fn identity_transform_via_copy() {
    let sheet = parse_stylesheet(
        r#"<xsl:stylesheet version="1.0">
             <xsl:template match="*">
               <xsl:copy>
                 <xsl:copy-of select="@*"/>
                 <xsl:apply-templates/>
               </xsl:copy>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let doc = input();
    let out = sensorxslt::apply(&compile(sheet).unwrap(), &doc).unwrap();
    // The <result> wrapper holds an identical copy of the input.
    let root = out.root().unwrap();
    let copied = out.child_elements(root).next().unwrap();
    assert!(unordered_eq(&doc, doc.root().unwrap(), &out, copied));
}

#[test]
fn variables_scope_within_template_body() {
    let sheet = parse_stylesheet(
        r#"<xsl:stylesheet version="1.0">
             <xsl:template match="/">
               <xsl:variable name="n" select="count(//parkingSpace)"/>
               <out a="{$n}">
                 <xsl:for-each select="//block[@id='1'][@status='owned']">
                   <xsl:variable name="n" select="count(parkingSpace)"/>
                   <inner b="{$n}"/>
                 </xsl:for-each>
                 <xsl:value-of select="$n"/>
               </out>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let out = sensorxslt::apply(&compile(sheet).unwrap(), &input()).unwrap();
    let xml = serialize(&out, out.root().unwrap());
    // Outer $n = 2 everywhere outside the for-each; inner shadows with 2
    // (block 1 has two spaces) without leaking.
    assert!(xml.contains(r#"<out a="2">"#), "{xml}");
    assert!(xml.contains(r#"<inner b="2"/>"#), "{xml}");
    assert!(xml.contains("2</out>"), "{xml}");
}

#[test]
fn patch_slots_changes_behaviour_without_recompiling_structure() {
    let mut sheet = sensorxslt::Stylesheet::new();
    let pred = sheet.slot("@id='1'");
    let sel = sheet.slot("//block");
    sheet.add_template(sensorxslt::Template {
        pattern: sensorxslt::Pattern::root(),
        mode: None,
        priority: None,
        body: vec![sensorxslt::Instruction::ForEach {
            select: sel,
            body: vec![sensorxslt::Instruction::If {
                test: pred,
                body: vec![sensorxslt::Instruction::Text("HIT;".into())],
            }],
        }],
    });
    let mut compiled = compile(sheet).unwrap();
    let doc = input();
    let run = |c: &sensorxslt::Compiled| {
        let out = sensorxslt::apply(c, &doc).unwrap();
        serialize(&out, out.root().unwrap())
    };
    assert_eq!(run(&compiled).matches("HIT;").count(), 2); // blocks id=1 twice
    compiled.patch_slots(&[(pred, "@id='2'".to_string())]).unwrap();
    assert_eq!(run(&compiled).matches("HIT;").count(), 1);
    compiled.patch_slots(&[(pred, "true()".to_string())]).unwrap();
    assert_eq!(run(&compiled).matches("HIT;").count(), 3);
}

#[test]
fn start_mode_selects_template_family() {
    let sheet = parse_stylesheet(
        r#"<xsl:stylesheet version="1.0">
             <xsl:template match="*" mode="a"><xsl:text>A</xsl:text></xsl:template>
             <xsl:template match="*" mode="b"><xsl:text>B</xsl:text></xsl:template>
             <xsl:template match="*">default</xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let compiled = compile(sheet).unwrap();
    let doc = input();
    for (mode, want) in [(Some("a"), "A"), (Some("b"), "B"), (None, "default")] {
        let out = sensorxslt::apply_with_options(
            &compiled,
            &doc,
            ExecOptions { start_mode: mode.map(String::from), ..ExecOptions::default() },
        )
        .unwrap();
        assert_eq!(serialize(&out, out.root().unwrap()), format!("<result>{want}</result>"));
    }
}

#[test]
fn now_function_in_generated_tests() {
    let sheet = parse_stylesheet(
        r#"<xsl:stylesheet version="1.0">
             <xsl:template match="/">
               <xsl:for-each select="//parkingSpace">
                 <xsl:if test="now() > 100"><fresh id="{@id}"/></xsl:if>
               </xsl:for-each>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let compiled = compile(sheet).unwrap();
    let doc = input();
    let out = sensorxslt::apply_with_options(
        &compiled,
        &doc,
        ExecOptions { now: 150.0, ..ExecOptions::default() },
    )
    .unwrap();
    assert_eq!(serialize(&out, out.root().unwrap()).matches("<fresh").count(), 2);
    let out2 = sensorxslt::apply_with_options(
        &compiled,
        &doc,
        ExecOptions { now: 50.0, ..ExecOptions::default() },
    )
    .unwrap();
    assert_eq!(serialize(&out2, out2.root().unwrap()), "<result/>");
}
