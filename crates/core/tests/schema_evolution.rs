//! Schema evolution end to end (§4 "Schema changes"): local changes at the
//! owner, transient inconsistency at caches, convergence through normal
//! refresh — plus DNS cleanup when IDable subtrees disappear.

use irisdns::{AuthoritativeDns, SiteAddr};
use irisnet_core::{
    Endpoint, IdPath, Message, OaConfig, OrganizingAgent, Outbound, Service, Status,
};

fn master() -> sensorxml::Document {
    sensorxml::parse(
        r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
             <neighborhood id="n1">
               <block id="1">
                 <parkingSpace id="1"><available>yes</available></parkingSpace>
               </block>
             </neighborhood>
           </city></county></state></usRegion>"#,
    )
    .unwrap()
}

fn block() -> IdPath {
    IdPath::from_pairs([
        ("usRegion", "NE"),
        ("state", "PA"),
        ("county", "A"),
        ("city", "P"),
        ("neighborhood", "n1"),
        ("block", "1"),
    ])
}

/// Owner on site 1, cache on site 2 (warmed via a real exchange).
fn setup() -> (OrganizingAgent, OrganizingAgent, AuthoritativeDns) {
    let svc = Service::parking();
    let owner = OrganizingAgent::new(SiteAddr(1), svc.clone(), OaConfig::default());
    owner
        .db_mut()
        .bootstrap_owned(&master(), &IdPath::from_pairs([("usRegion", "NE")]), true)
        .unwrap();
    let cache = OrganizingAgent::new(SiteAddr(2), svc.clone(), OaConfig::default());
    // Site 2 starts as a cache replica of the root's local ID information
    // (a legitimate C1/C2 cache copy), so queries posed there can walk the
    // hierarchy and gather.
    cache
        .db_mut()
        .bootstrap_cached(&master(), &IdPath::from_pairs([("usRegion", "NE")]), false)
        .unwrap();
    let mut dns = AuthoritativeDns::new();
    dns.register(&svc.dns_name(&IdPath::from_pairs([("usRegion", "NE")])), SiteAddr(1));
    (owner, cache, dns)
}

fn pump(
    owner: &mut OrganizingAgent,
    cache: &mut OrganizingAgent,
    dns: &mut AuthoritativeDns,
    entry: SiteAddr,
    text: &str,
    now: f64,
) -> String {
    let mut inbox = vec![(
        entry,
        Message::UserQuery { qid: 1, text: text.to_string(), endpoint: Endpoint(0) },
    )];
    let mut answer = None;
    while let Some((to, msg)) = inbox.pop() {
        let agent = if to == SiteAddr(1) { &mut *owner } else { &mut *cache };
        for o in agent.handle(msg, dns, now) {
            match o {
                Outbound::Send { to, msg } => inbox.push((to, msg)),
                Outbound::ReplyUser { answer_xml, ok, .. } => {
                    assert!(ok, "query failed: {answer_xml}");
                    answer = Some(answer_xml);
                }
            }
        }
    }
    answer.expect("an answer was produced")
}

const Q: &str = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
    /neighborhood[@id='n1']/block[@id='1']/parkingSpace";

#[test]
fn new_idable_node_reaches_stale_caches_via_freshness() {
    let (mut owner, mut cache, mut dns) = setup();
    // Warm the cache at t=0: the block (one space) is cached at site 2.
    // Site 2 owns nothing; route the query there explicitly.
    let a0 = pump(&mut owner, &mut cache, &mut dns, SiteAddr(2), Q, 0.0);
    assert_eq!(a0.matches("<parkingSpace").count(), 1);
    assert_eq!(cache.db().status_at(&block()), Some(Status::Complete));

    // The owner grows a new space (§4: addition of IDable nodes is done by
    // the owner of the parent).
    owner
        .db_mut()
        .schema_add_idable_child(&block(), "parkingSpace", "2", 10.0)
        .unwrap();
    owner
        .db_mut()
        .apply_update(
            &block().child("parkingSpace", "2"),
            &[("available".into(), "no".into())],
            10.0,
        )
        .unwrap();

    // The cache is now transiently inconsistent: a plain query against it
    // still answers with one space (the paper accepts this).
    let a1 = pump(&mut owner, &mut cache, &mut dns, SiteAddr(2), Q, 11.0);
    assert_eq!(a1.matches("<parkingSpace").count(), 1);

    // A freshness-bounded query forces the refresh and converges.
    let strict = format!("{Q}[@timestamp > now() - 5]");
    let a2 = pump(&mut owner, &mut cache, &mut dns, SiteAddr(2), &strict, 12.0);
    assert_eq!(a2.matches("<parkingSpace").count(), 2, "answer: {a2}");
    // And the cache itself has converged for subsequent plain queries.
    let a3 = pump(&mut owner, &mut cache, &mut dns, SiteAddr(2), Q, 13.0);
    assert_eq!(a3.matches("<parkingSpace").count(), 2);
}

#[test]
fn removed_idable_node_disappears_after_refresh() {
    let (mut owner, mut cache, mut dns) = setup();
    let a0 = pump(&mut owner, &mut cache, &mut dns, SiteAddr(2), Q, 0.0);
    assert_eq!(a0.matches("<parkingSpace").count(), 1);

    owner
        .db_mut()
        .schema_remove_idable_child(&block(), "parkingSpace", "1", 15.0)
        .unwrap();
    // DNS cleanup for the removed subtree (no-op here because spaces have
    // no dedicated records, but the API is exercised end to end).
    let name = owner.service.dns_name(&block().child("parkingSpace", "1"));
    dns.remove_subtree(&name);

    let strict = format!("{Q}[@timestamp > now() - 5]");
    let a1 = pump(&mut owner, &mut cache, &mut dns, SiteAddr(2), &strict, 20.0);
    assert_eq!(a1.matches("<parkingSpace").count(), 0, "answer: {a1}");
}

#[test]
fn added_attribute_is_immediately_queryable_at_owner() {
    let (mut owner, mut cache, mut dns) = setup();
    let nbhd = block().parent().unwrap();
    owner
        .db_mut()
        .schema_add_attribute(&nbhd, "numberOfFreeSpots", "7", 5.0)
        .unwrap();
    // The §2 motivating query: neighborhoods with free spots.
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
             /neighborhood[@id='n1'][@numberOfFreeSpots > 0]/block[@id='1']/parkingSpace";
    let a = pump(&mut owner, &mut cache, &mut dns, SiteAddr(1), q, 6.0);
    assert_eq!(a.matches("<parkingSpace").count(), 1);
    // With the attribute failing the predicate, the answer is empty.
    owner
        .db_mut()
        .schema_add_attribute(&nbhd, "numberOfFreeSpots", "0", 7.0)
        .unwrap();
    let a2 = pump(&mut owner, &mut cache, &mut dns, SiteAddr(1), q, 8.0);
    assert_eq!(a2.matches("<parkingSpace").count(), 0);
}
