//! Protocol-level agent tests: malformed input, late/duplicate answers,
//! iteration caps, forwarding, and statistics bookkeeping.

use irisdns::{AuthoritativeDns, SiteAddr};
use irisnet_core::{
    Endpoint, IdPath, Message, OaConfig, OrganizingAgent, Outbound, Service, Status,
};

fn master() -> sensorxml::Document {
    sensorxml::parse(
        r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
             <neighborhood id="n1">
               <block id="1"><parkingSpace id="1"><available>yes</available></parkingSpace></block>
             </neighborhood>
           </city></county></state></usRegion>"#,
    )
    .unwrap()
}

fn owner_agent(addr: u32) -> (OrganizingAgent, AuthoritativeDns) {
    let svc = Service::parking();
    let oa = OrganizingAgent::new(SiteAddr(addr), svc.clone(), OaConfig::default());
    oa.db_mut()
        .bootstrap_owned(&master(), &IdPath::from_pairs([("usRegion", "NE")]), true)
        .unwrap();
    let mut dns = AuthoritativeDns::new();
    dns.register(&svc.dns_name(&IdPath::from_pairs([("usRegion", "NE")])), SiteAddr(addr));
    (oa, dns)
}

#[test]
fn malformed_user_query_gets_error_reply() {
    let (mut oa, mut dns) = owner_agent(1);
    let out = oa.handle(
        Message::UserQuery { qid: 1, text: "/a[".into(), endpoint: Endpoint(7) },
        &mut dns,
        0.0,
    );
    assert_eq!(out.len(), 1);
    let Outbound::ReplyUser { ok, answer_xml, qid, endpoint, .. } = &out[0] else {
        panic!("expected a reply")
    };
    assert!(!ok);
    assert!(answer_xml.contains("<error>"));
    assert_eq!(*qid, 1);
    assert_eq!(*endpoint, Endpoint(7));
}

#[test]
fn malformed_subquery_gets_empty_answer() {
    let (mut oa, mut dns) = owner_agent(1);
    let out = oa.handle(
        Message::SubQuery { qid: 9, text: "///".into(), reply_to: SiteAddr(2) },
        &mut dns,
        0.0,
    );
    assert_eq!(out.len(), 1);
    let Outbound::Send { to, msg } = &out[0] else { panic!() };
    assert_eq!(*to, SiteAddr(2));
    let Message::SubAnswer { qid, fragment_xml, .. } = msg else { panic!() };
    assert_eq!(*qid, 9);
    assert!(fragment_xml.is_empty());
}

#[test]
fn late_and_duplicate_subanswers_are_ignored() {
    let (mut oa, mut dns) = owner_agent(1);
    // No pending query: a stray answer is dropped silently.
    let out = oa.handle(
        Message::SubAnswer { qid: 4242, fragment_xml: "<usRegion id=\"NE\"/>".into(), partial: false },
        &mut dns,
        0.0,
    );
    assert!(out.is_empty());
    // A corrupt fragment for a stray id is also dropped.
    let out = oa.handle(
        Message::SubAnswer { qid: 4242, fragment_xml: "<broken".into(), partial: false },
        &mut dns,
        0.0,
    );
    assert!(out.is_empty());
}

#[test]
fn missing_data_with_no_dns_entry_answers_with_what_exists() {
    // The agent's fragment references a neighborhood that cannot be
    // resolved (no DNS entry anywhere below the root, and the root is us):
    // the ask is dropped and the query answers from available data.
    let svc = Service::parking();
    let mut oa = OrganizingAgent::new(SiteAddr(1), svc.clone(), OaConfig::default());
    let m = sensorxml::parse(
        r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
             <neighborhood id="n1">
               <block id="1"><parkingSpace id="1"><available>yes</available></parkingSpace></block>
             </neighborhood>
             <neighborhood id="n2">
               <block id="1"><parkingSpace id="1"><available>yes</available></parkingSpace></block>
             </neighborhood>
           </city></county></state></usRegion>"#,
    )
    .unwrap();
    oa.db_mut().bootstrap_owned(&m, &IdPath::from_pairs([("usRegion", "NE")]), true).unwrap();
    // n2 is evicted and its owner is unknown to DNS.
    let n2 = IdPath::from_pairs([
        ("usRegion", "NE"),
        ("state", "PA"),
        ("county", "A"),
        ("city", "P"),
        ("neighborhood", "n2"),
    ]);
    oa.db_mut().set_status_subtree(&n2, Status::Complete).unwrap();
    oa.db_mut().evict(&n2).unwrap();
    let mut dns = AuthoritativeDns::new();
    dns.register(&svc.dns_name(&IdPath::from_pairs([("usRegion", "NE")])), SiteAddr(1));

    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
             /neighborhood/block[@id='1']/parkingSpace";
    let out = oa.handle(
        Message::UserQuery { qid: 1, text: q.into(), endpoint: Endpoint(1) },
        &mut dns,
        0.0,
    );
    // The unresolvable name resolves back to ourselves via the root record
    // (self-send guard) → dropped → partial answer.
    assert_eq!(out.len(), 1);
    let Outbound::ReplyUser { ok, answer_xml, .. } = &out[0] else { panic!() };
    assert!(ok);
    assert_eq!(answer_xml.matches("<parkingSpace").count(), 1);
    assert!(oa.stats.dropped_asks >= 1);
}

#[test]
fn stats_track_phases_and_counts() {
    let (mut oa, mut dns) = owner_agent(1);
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
             /neighborhood[@id='n1']/block[@id='1']/parkingSpace";
    for i in 0..5 {
        let out = oa.handle(
            Message::UserQuery { qid: i, text: q.into(), endpoint: Endpoint(1) },
            &mut dns,
            i as f64,
        );
        assert_eq!(out.len(), 1);
    }
    assert_eq!(oa.stats.user_queries, 5);
    assert_eq!(oa.stats.answers_sent, 5);
    assert_eq!(oa.stats.answered_locally, 5);
    assert!(oa.stats.time_create_xslt > 0.0);
    assert!(oa.stats.time_exec_xslt > 0.0);
    assert!(oa.stats.time_extract > 0.0);
}

#[test]
fn subquery_answer_is_a_mergeable_fragment() {
    let (mut oa, mut dns) = owner_agent(1);
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
             /neighborhood[@id='n1']/block[@id='1']/parkingSpace";
    let out = oa.handle(
        Message::SubQuery { qid: 3, text: q.into(), reply_to: SiteAddr(2) },
        &mut dns,
        0.0,
    );
    let Outbound::Send { msg: Message::SubAnswer { fragment_xml, .. }, .. } = &out[0] else {
        panic!()
    };
    // The wire fragment merges cleanly into an empty cache and satisfies
    // the invariants.
    let frag = sensorxml::parse(fragment_xml).unwrap();
    let mut cache = irisnet_core::SiteDatabase::new(Service::parking());
    cache.merge_fragment(&frag).unwrap();
    cache.check_invariants(&master()).unwrap();
    // Subsumption coalescing shipped the whole block as one complete unit.
    let block = IdPath::from_pairs([
        ("usRegion", "NE"),
        ("state", "PA"),
        ("county", "A"),
        ("city", "P"),
        ("neighborhood", "n1"),
        ("block", "1"),
    ]);
    assert_eq!(cache.status_at(&block), Some(Status::Complete));
}

#[test]
fn updates_to_unknown_nodes_are_dropped() {
    let (mut oa, mut dns) = owner_agent(1);
    let bogus = IdPath::from_pairs([("usRegion", "NE"), ("state", "XX")]);
    let out = oa.handle(
        Message::Update { path: bogus, fields: vec![("x".into(), "1".into())] },
        &mut dns,
        0.0,
    );
    assert!(out.is_empty());
    assert_eq!(oa.stats.updates_applied, 0);
}

#[test]
fn delegate_to_self_is_a_no_op() {
    let (mut oa, mut dns) = owner_agent(1);
    let block = IdPath::from_pairs([
        ("usRegion", "NE"),
        ("state", "PA"),
        ("county", "A"),
        ("city", "P"),
        ("neighborhood", "n1"),
        ("block", "1"),
    ]);
    let out = oa.handle(
        Message::Delegate { path: block.clone(), to: SiteAddr(1) },
        &mut dns,
        0.0,
    );
    assert!(out.is_empty());
    assert_eq!(oa.db().status_at(&block), Some(Status::Owned));
}
