//! PR 6 regression: cache-hit user queries are pure read-path work.
//!
//! The old `CacheManager::enforce` ran a full O(tracked) scan under the
//! `SiteDatabase` write lock on *every* user query, serializing the read
//! path PR 2 parallelized. Enforcement now runs only at quiescent points
//! on the owner loop, so a cache-hit query must (a) perform zero eviction
//! work and (b) never take the write lock — proven here by holding a read
//! guard on the shared database for the whole query and requiring it to
//! complete anyway (the `parking_lot` stub's RwLock blocks writers while
//! any reader is active, so a write-lock attempt would hang the query
//! past the timeout).

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use irisdns::{AuthoritativeDns, SiteAddr};
use irisnet_core::{
    CacheBudget, Endpoint, EvictionPolicy, IdPath, Message, OaConfig, OrganizingAgent, Outbound,
    Service, Status,
};

fn master() -> sensorxml::Document {
    sensorxml::parse(
        r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
             <neighborhood id="n1">
               <block id="1"><parkingSpace id="1"><available>yes</available></parkingSpace></block>
               <block id="2"><parkingSpace id="1"><available>yes</available></parkingSpace></block>
             </neighborhood>
           </city></county></state></usRegion>"#,
    )
    .unwrap()
}

fn block_path(b: &str) -> IdPath {
    IdPath::from_pairs([
        ("usRegion", "NE"),
        ("state", "PA"),
        ("county", "A"),
        ("city", "P"),
        ("neighborhood", "n1"),
        ("block", b),
    ])
}

const Q: &str = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
    /neighborhood[@id='n1']/block[@id='2']/parkingSpace[available='yes']";

/// Site 1 owns everything except block 2, which site 2 owns; site 1 runs
/// a budgeted LRU cache. Routes site-1 ⇄ site-2 traffic by hand.
fn two_sites() -> (OrganizingAgent, OrganizingAgent, AuthoritativeDns) {
    let svc = Service::parking();
    let root = IdPath::from_pairs([("usRegion", "NE")]);
    let carved = block_path("2");
    let cfg = OaConfig {
        eviction: EvictionPolicy::Lru { budget: CacheBudget::nodes(64) },
        ..OaConfig::default()
    };
    let oa1 = OrganizingAgent::new(SiteAddr(1), svc.clone(), cfg);
    oa1.db_mut().bootstrap_owned(&master(), &root, true).unwrap();
    oa1.db_mut().set_status_subtree(&carved, Status::Complete).unwrap();
    oa1.db_mut().evict(&carved).unwrap();
    let oa2 = OrganizingAgent::new(SiteAddr(2), svc.clone(), OaConfig::default());
    oa2.db_mut().bootstrap_owned(&master(), &carved, true).unwrap();
    let mut dns = AuthoritativeDns::new();
    dns.register(&svc.dns_name(&root), SiteAddr(1));
    dns.register(&svc.dns_name(&carved), SiteAddr(2));
    (oa1, oa2, dns)
}

/// Drives a user query at site 1 to completion, relaying subqueries to
/// site 2 and subanswers back. Returns the reply's (ok, answer_xml).
fn pose(
    oa1: &mut OrganizingAgent,
    oa2: &mut OrganizingAgent,
    dns: &mut AuthoritativeDns,
    qid: u64,
    now: f64,
) -> (bool, String) {
    let mut inbox1 =
        vec![Message::UserQuery { qid, text: Q.into(), endpoint: Endpoint(qid) }];
    let mut inbox2: Vec<Message> = Vec::new();
    for _ in 0..16 {
        if inbox1.is_empty() && inbox2.is_empty() {
            break;
        }
        let mut out = Vec::new();
        for m in inbox1.drain(..) {
            out.extend(oa1.handle(m, dns, now));
        }
        for m in inbox2.drain(..) {
            out.extend(oa2.handle(m, dns, now));
        }
        for o in out {
            match o {
                Outbound::Send { to: SiteAddr(1), msg } => inbox1.push(msg),
                Outbound::Send { to: SiteAddr(2), msg } => inbox2.push(msg),
                Outbound::Send { to, .. } => panic!("unexpected destination {to:?}"),
                Outbound::ReplyUser { ok, answer_xml, .. } => return (ok, answer_xml),
            }
        }
    }
    panic!("query {qid} never answered");
}

#[test]
fn cache_hit_query_does_zero_eviction_work_and_takes_no_write_lock() {
    let (mut oa1, mut oa2, mut dns) = two_sites();

    // Query 1 gathers block 2 from site 2 and caches it.
    let (ok, first) = pose(&mut oa1, &mut oa2, &mut dns, 1, 0.0);
    assert!(ok, "gather failed: {first}");
    let before = oa1.cache_stats();
    assert_eq!(before.misses, 1, "first query asks at the query LCA");
    assert_eq!(before.tracked, 1, "block 2 is now a tracked cached unit");

    // Query 2 is a pure cache hit. Hold a read guard on site 1's shared
    // database for its whole lifetime: any write-lock attempt on the
    // query path deadlocks and trips the timeout.
    let shared = oa1.shared_db();
    let guard = shared.read();
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        let reply = pose(&mut oa1, &mut oa2, &mut dns, 2, 1.0);
        tx.send(()).unwrap();
        (oa1, reply)
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("cache-hit query blocked: something took the write lock");
    drop(guard);
    let (oa1, (ok, second)) = worker.join().unwrap();
    assert!(ok);
    assert_eq!(first, second, "cached answer must match the gathered one");

    // Zero eviction work on the hit: no sweeps, no scans, no demotions.
    let after = oa1.cache_stats();
    assert_eq!(after.hits, 1, "second query is a full cache hit");
    assert_eq!(after.sweeps, 0, "no enforcement sweep ran");
    assert_eq!(after.sweep_examined, 0, "no entries were examined");
    assert_eq!(after.evictions, 0, "nothing was demoted");
    assert_eq!(after.tracked, 1, "the cached unit is still resident");
}

#[test]
fn over_budget_fill_sweeps_once_quiescent_not_on_the_read_path() {
    let (_, mut oa2, mut dns) = two_sites();
    // Rebuild site 1 with a 2-node budget — below the unit's size, so the
    // fill overflows it. Admission stays on, but the very first unit is
    // always admitted into an empty cache.
    let svc = Service::parking();
    let root = IdPath::from_pairs([("usRegion", "NE")]);
    let carved = block_path("2");
    let cfg = OaConfig {
        eviction: EvictionPolicy::Lru { budget: CacheBudget::nodes(2) },
        ..OaConfig::default()
    };
    let mut oa1 = OrganizingAgent::new(SiteAddr(1), svc.clone(), cfg);
    oa1.db_mut().bootstrap_owned(&master(), &root, true).unwrap();
    oa1.db_mut().set_status_subtree(&carved, Status::Complete).unwrap();
    oa1.db_mut().evict(&carved).unwrap();

    let (ok, _) = pose(&mut oa1, &mut oa2, &mut dns, 1, 0.0);
    assert!(ok);
    // The fill overflowed the 2-node budget; the post-query quiescent
    // sweep demoted it again (budget cannot hold it), off the read path.
    let cs = oa1.cache_stats();
    assert_eq!(cs.evictions, 1, "over-budget unit demoted by the sweep");
    assert!(cs.sweeps >= 1);
    assert_eq!(cs.tracked, 0);
    // A follow-up query must still answer correctly (refill by subquery).
    let (ok, xml) = pose(&mut oa1, &mut oa2, &mut dns, 2, 1.0);
    assert!(ok);
    assert!(xml.contains("parkingSpace"), "refill answered: {xml}");
}
