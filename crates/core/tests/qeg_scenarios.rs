//! Wider QEG scenarios: wildcard and descendant distribution steps,
//! unsplittable predicates, deeper nesting, the root-gather fallback for
//! non-path queries, and multi-hop gathering chains — all driven through
//! raw agents so every message is visible.

use std::sync::Arc;

use irisdns::{AuthoritativeDns, SiteAddr};
use irisnet_core::qeg::{generalized_subquery, matched_final_paths, plan_query, AskKind, QegFactory, StepKind};
use irisnet_core::{
    Endpoint, IdPath, Message, OaConfig, OrganizingAgent, Outbound, Service, SiteDatabase,
    Status, XsltCreation,
};

fn master() -> sensorxml::Document {
    sensorxml::parse(
        r#"<usRegion id="NE"><state id="PA"><county id="A">
             <city id="P">
               <neighborhood id="n1">
                 <block id="1">
                   <parkingSpace id="1"><available>yes</available><price>0</price></parkingSpace>
                   <parkingSpace id="2"><available>no</available><price>25</price></parkingSpace>
                 </block>
                 <block id="2">
                   <parkingSpace id="1"><available>yes</available><price>50</price></parkingSpace>
                 </block>
               </neighborhood>
               <neighborhood id="n2">
                 <block id="1">
                   <parkingSpace id="1"><available>yes</available><price>0</price></parkingSpace>
                 </block>
               </neighborhood>
             </city>
             <city id="Q">
               <neighborhood id="n1">
                 <block id="1">
                   <parkingSpace id="1"><available>no</available><price>0</price></parkingSpace>
                 </block>
               </neighborhood>
             </city>
           </county></state></usRegion>"#,
    )
    .unwrap()
}

fn service() -> Arc<Service> {
    Service::parking()
}

fn root() -> IdPath {
    IdPath::from_pairs([("usRegion", "NE")])
}

/// A two-site world: site 1 owns everything except city Q, site 2 owns Q.
fn split_world() -> (OrganizingAgent, OrganizingAgent, AuthoritativeDns) {
    let m = master();
    let svc = service();
    let q_city = root().child("state", "PA").child("county", "A").child("city", "Q");
    let oa1 = OrganizingAgent::new(SiteAddr(1), svc.clone(), OaConfig::default());
    oa1.db_mut().bootstrap_owned(&m, &root(), true).unwrap();
    oa1.db_mut().set_status_subtree(&q_city, Status::Complete).unwrap();
    oa1.db_mut().evict(&q_city).unwrap();
    let oa2 = OrganizingAgent::new(SiteAddr(2), svc.clone(), OaConfig::default());
    oa2.db_mut().bootstrap_owned(&m, &q_city, true).unwrap();
    let mut dns = AuthoritativeDns::new();
    dns.register(&svc.dns_name(&root()), SiteAddr(1));
    dns.register(&svc.dns_name(&q_city), SiteAddr(2));
    (oa1, oa2, dns)
}

/// Pumps messages between the two agents until quiescent; returns the
/// user answers produced.
fn pump(
    oa1: &mut OrganizingAgent,
    oa2: &mut OrganizingAgent,
    dns: &mut AuthoritativeDns,
    initial: Vec<(SiteAddr, Message)>,
) -> Vec<(bool, String)> {
    let mut answers = Vec::new();
    let mut inbox = initial;
    let mut steps = 0;
    while let Some((to, msg)) = inbox.pop() {
        steps += 1;
        assert!(steps < 10_000, "message storm");
        let agent = if to == SiteAddr(1) { &mut *oa1 } else { &mut *oa2 };
        for o in agent.handle(msg, dns, 0.0) {
            match o {
                Outbound::Send { to, msg } => inbox.push((to, msg)),
                Outbound::ReplyUser { answer_xml, ok, .. } => answers.push((ok, answer_xml)),
            }
        }
    }
    answers
}

fn ask_query(
    oa1: &mut OrganizingAgent,
    oa2: &mut OrganizingAgent,
    dns: &mut AuthoritativeDns,
    entry: SiteAddr,
    text: &str,
) -> String {
    let answers = pump(
        oa1,
        oa2,
        dns,
        vec![(
            entry,
            Message::UserQuery { qid: 1, text: text.to_string(), endpoint: Endpoint(1) },
        )],
    );
    assert_eq!(answers.len(), 1, "exactly one answer for {text}");
    assert!(answers[0].0, "query failed: {}", answers[0].1);
    answers[0].1.clone()
}

#[test]
fn wildcard_city_step_gathers_both_cities() {
    let (mut oa1, mut oa2, mut dns) = split_world();
    // `*` at the city level: must gather Q from site 2.
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/*\
             /neighborhood[@id='n1']/block[@id='1']/parkingSpace[price='0']";
    let a = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(1), q);
    // P/n1/b1/sp1 (price 0, yes) and Q/n1/b1/sp1 (price 0, no).
    assert_eq!(a.matches("<parkingSpace").count(), 2);
    assert!(oa1.stats.subqueries_sent >= 1);
}

#[test]
fn descendant_query_spans_sites() {
    let (mut oa1, mut oa2, mut dns) = split_world();
    let q = "/usRegion[@id='NE']//parkingSpace[available='yes']";
    let a = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(1), q);
    assert_eq!(a.matches("<parkingSpace").count(), 3);
    // And repeating it is answered locally from cache.
    let before = oa1.stats.subqueries_sent;
    let a2 = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(1), q);
    assert_eq!(a2.matches("<parkingSpace").count(), 3);
    assert_eq!(oa1.stats.subqueries_sent, before);
}

#[test]
fn unsplittable_predicate_falls_back_to_subquery() {
    let (mut oa1, mut oa2, mut dns) = split_world();
    // `@id='Q' or price='x'` mixes id and data references: P_id cannot be
    // split out, so the QEG must conservatively gather city Q.
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']\
             /city[@id='Q' or @zipcode='99999']/neighborhood[@id='n1']\
             /block[@id='1']/parkingSpace";
    let a = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(1), q);
    assert_eq!(a.matches("<parkingSpace").count(), 1);
    assert!(oa1.stats.subqueries_sent >= 1);
}

#[test]
fn nesting_depth_one_fetches_subtree_across_sites() {
    let (mut oa1, mut oa2, mut dns) = split_world();
    // Cheapest space in city Q's block — the nested predicate needs the
    // whole block locally, which lives on site 2.
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='Q']\
             /neighborhood[@id='n1']/block[@id='1']\
             /parkingSpace[not(price > ../parkingSpace/price)]";
    let e = sensorxpath::parse(q).unwrap();
    let plan = plan_query(&e, &service()).unwrap();
    assert_eq!(plan.nesting_depth, 1);
    assert!(plan.fetch_subtree_at.is_some());
    let a = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(1), q);
    assert_eq!(a.matches("<parkingSpace").count(), 1);
}

#[test]
fn nesting_depth_two_plans_and_answers() {
    let svc = service();
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']\
             /city[count(./neighborhood[./block[@id='1']]) > 0]\
             /neighborhood[@id='n1']/block[@id='1']/parkingSpace";
    let e = sensorxpath::parse(q).unwrap();
    let plan = plan_query(&e, &svc).unwrap();
    assert_eq!(plan.nesting_depth, 2);
    let (mut oa1, mut oa2, mut dns) = split_world();
    let a = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(1), q);
    // Both cities have neighborhood n1 with block 1: P has 2 spaces in
    // block 1 of n1, Q has 1.
    assert_eq!(a.matches("<parkingSpace").count(), 3);
}

#[test]
fn count_query_uses_root_gather_fallback() {
    let (mut oa1, mut oa2, mut dns) = split_world();
    let q = "count(//parkingSpace[price='0'])";
    let a = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(1), q);
    assert_eq!(a, "<result><value>3</value></result>");
}

#[test]
fn suffix_steps_select_within_local_information() {
    let (mut oa1, mut oa2, mut dns) = split_world();
    // `available` is not IDable: it is a suffix step served from the
    // gathered local information.
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='Q']\
             /neighborhood[@id='n1']/block[@id='1']/parkingSpace/available";
    let a = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(1), q);
    assert_eq!(a, "<result><available>no</available></result>");
}

#[test]
fn entry_at_remote_site_works_too() {
    // Posing the query at site 2 (which owns only city Q) for city P data
    // must gather in the other direction.
    let (mut oa1, mut oa2, mut dns) = split_world();
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
             /neighborhood[@id='n2']/block[@id='1']/parkingSpace";
    let a = ask_query(&mut oa1, &mut oa2, &mut dns, SiteAddr(2), q);
    assert_eq!(a.matches("<parkingSpace").count(), 1);
    assert!(oa2.stats.subqueries_sent >= 1);
}

#[test]
fn generalized_subqueries_strip_value_predicates() {
    let svc = service();
    let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
             /neighborhood[@id='n1' or @id='n2'][zipcode='15213']\
             /block[@id='1']/parkingSpace[available='yes'][price='0']";
    let e = sensorxpath::parse(q).unwrap();
    let plan = plan_query(&e, &svc).unwrap();
    let ask = irisnet_core::qeg::Ask {
        path: IdPath::from_pairs([
            ("usRegion", "NE"),
            ("state", "PA"),
            ("county", "A"),
            ("city", "P"),
            ("neighborhood", "n2"),
        ]),
        kind: AskKind::Query,
        step: 5,
    };
    let sub = generalized_subquery(&plan, &ask);
    assert!(sub.contains("block[@id = '1']"));
    assert!(sub.ends_with("/parkingSpace"), "got {sub}");
    assert!(!sub.contains("available"), "value predicates must be stripped: {sub}");
    assert!(!sub.contains("price"), "value predicates must be stripped: {sub}");
}

#[test]
fn plan_classifies_step_kinds() {
    let svc = service();
    let e = sensorxpath::parse(
        "/usRegion[@id='NE']/*[@id='PA']//block[@id='1']/parkingSpace",
    )
    .unwrap();
    let plan = plan_query(&e, &svc).unwrap();
    let kinds: Vec<&StepKind> = plan.dist_steps.iter().map(|s| &s.kind).collect();
    assert!(matches!(kinds[0], StepKind::Tag(t) if t == "usRegion"));
    assert!(matches!(kinds[1], StepKind::Wildcard));
    assert!(matches!(kinds[2], StepKind::Descendant));
    assert!(matches!(kinds[3], StepKind::Tag(t) if t == "block"));
}

#[test]
fn matched_paths_respect_distribution_prefix_only() {
    let m = master();
    let svc = service();
    let mut db = SiteDatabase::new(svc.clone());
    db.bootstrap_owned(&m, &root(), true).unwrap();
    // Suffix (`/available`) must not affect which final-step nodes match.
    let e = sensorxpath::parse(
        "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
         /neighborhood[@id='n1']/block[@id='1']/parkingSpace/available",
    )
    .unwrap();
    let plan = plan_query(&e, &svc).unwrap();
    assert_eq!(plan.suffix_len, 1);
    let matched = matched_final_paths(&plan, &db, 0.0).unwrap();
    assert_eq!(matched.len(), 2); // both spaces of P/n1/b1
    assert!(matched.iter().all(|p| p.last().unwrap().0 == "parkingSpace"));
}

#[test]
fn qeg_factory_shapes_do_not_collide_across_queries() {
    let svc = service();
    let f = QegFactory::new(svc.clone(), XsltCreation::Fast);
    let queries = [
        "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']",
        "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']/neighborhood[@id='n1']",
        "/usRegion[@id='NE']//parkingSpace",
        "/usRegion[@id='NE']/*/county[@id='A']",
        "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']/neighborhood[zipcode='1']",
    ];
    let m = master();
    let mut db = SiteDatabase::new(svc.clone());
    db.bootstrap_owned(&m, &root(), true).unwrap();
    for q in queries {
        let e = sensorxpath::parse(q).unwrap();
        let plan = plan_query(&e, &svc).unwrap();
        let prog = f.create(&plan).unwrap();
        // All programs run cleanly on the full fragment (no asks).
        let out = prog.execute(&db, 0.0).unwrap();
        assert!(out.is_complete(), "asks for {q}: {:?}", out.asks);
    }
    // Re-creating the same queries hits the skeleton cache each time.
    let before = f.skeleton_hits();
    for q in queries {
        let e = sensorxpath::parse(q).unwrap();
        let plan = plan_query(&e, &svc).unwrap();
        f.create(&plan).unwrap();
    }
    assert_eq!(f.skeleton_hits(), before + queries.len() as u64);
}
