//! Idempotency of the ask bookkeeping under duplicated and retried
//! messages, driven at the agent-message level (the regression net behind
//! the fault-injecting substrates): duplicate subquery deliveries, double
//! subquery-answer deliveries, and timer-driven resends must never
//! double-merge a fragment or corrupt the cache invariants.

use irisdns::{AuthoritativeDns, SiteAddr};
use irisnet_core::{
    CacheMode, Endpoint, IdPath, Message, OaConfig, OrganizingAgent, Outbound,
    RetryPolicy, Service, Status,
};

fn master() -> sensorxml::Document {
    sensorxml::parse(
        r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
             <neighborhood id="n1">
               <block id="1"><parkingSpace id="1"><available>yes</available></parkingSpace></block>
             </neighborhood>
             <neighborhood id="n2">
               <block id="1"><parkingSpace id="1"><available>no</available></parkingSpace></block>
             </neighborhood>
           </city></county></state></usRegion>"#,
    )
    .unwrap()
}

fn n2() -> IdPath {
    IdPath::from_pairs([
        ("usRegion", "NE"),
        ("state", "PA"),
        ("county", "A"),
        ("city", "P"),
        ("neighborhood", "n2"),
    ])
}

const Q_BOTH: &str = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
    /neighborhood[@id='n1' or @id='n2']/block[@id='1']/parkingSpace";

/// Site 1 owns everything but n2 (evicted to a stub); site 2 owns n2.
fn two_agents(retry: RetryPolicy) -> (OrganizingAgent, OrganizingAgent, AuthoritativeDns) {
    let svc = Service::parking();
    let config = OaConfig { retry, ..OaConfig::default() };
    let oa1 = OrganizingAgent::new(SiteAddr(1), svc.clone(), config.clone());
    oa1.db_mut()
        .bootstrap_owned(&master(), &IdPath::from_pairs([("usRegion", "NE")]), true)
        .unwrap();
    oa1.db_mut().set_status_subtree(&n2(), Status::Complete).unwrap();
    oa1.db_mut().evict(&n2()).unwrap();
    let oa2 = OrganizingAgent::new(SiteAddr(2), svc.clone(), config);
    oa2.db_mut().bootstrap_owned(&master(), &n2(), true).unwrap();
    let mut dns = AuthoritativeDns::new();
    dns.register(&svc.dns_name(&IdPath::from_pairs([("usRegion", "NE")])), SiteAddr(1));
    dns.register(&svc.dns_name(&n2()), SiteAddr(2));
    (oa1, oa2, dns)
}

/// Extracts the single outbound `SubQuery` from a batch of outputs.
fn the_subquery(outs: &[Outbound]) -> (SiteAddr, u64, String) {
    let subs: Vec<_> = outs
        .iter()
        .filter_map(|o| match o {
            Outbound::Send { to, msg: Message::SubQuery { qid, text, .. } } => {
                Some((*to, *qid, text.clone()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(subs.len(), 1, "expected exactly one subquery, got {outs:?}");
    subs.into_iter().next().unwrap()
}

fn the_subanswer(outs: &[Outbound]) -> (SiteAddr, Message) {
    let answers: Vec<_> = outs
        .iter()
        .filter_map(|o| match o {
            Outbound::Send { to, msg: m @ Message::SubAnswer { .. } } => {
                Some((*to, m.clone()))
            }
            _ => None,
        })
        .collect();
    assert_eq!(answers.len(), 1, "expected exactly one subanswer, got {outs:?}");
    answers.into_iter().next().unwrap()
}

fn the_user_reply(outs: &[Outbound]) -> (String, bool, bool) {
    let replies: Vec<_> = outs
        .iter()
        .filter_map(|o| match o {
            Outbound::ReplyUser { answer_xml, ok, partial, .. } => {
                Some((answer_xml.clone(), *ok, *partial))
            }
            _ => None,
        })
        .collect();
    assert_eq!(replies.len(), 1, "expected exactly one user reply, got {outs:?}");
    replies.into_iter().next().unwrap()
}

fn canon(xml: &str) -> String {
    let doc = sensorxml::parse(xml).expect("answer parses");
    sensorxml::canonical_string(&doc, doc.root().unwrap())
}

#[test]
fn duplicate_subanswer_is_ignored_no_double_merge() {
    let (mut oa1, mut oa2, mut dns) = two_agents(RetryPolicy::disabled());
    let outs = oa1.handle(
        Message::UserQuery { qid: 1, text: Q_BOTH.into(), endpoint: Endpoint(9) },
        &mut dns,
        0.0,
    );
    let (to, sub_qid, text) = the_subquery(&outs);
    assert_eq!(to, SiteAddr(2));

    // Site 2 answers; deliver the answer TWICE (a duplicated message).
    let outs2 = oa2.handle(
        Message::SubQuery { qid: sub_qid, text, reply_to: SiteAddr(1) },
        &mut dns,
        0.1,
    );
    let (back_to, answer) = the_subanswer(&outs2);
    assert_eq!(back_to, SiteAddr(1));

    let outs3 = oa1.handle(answer.clone(), &mut dns, 0.2);
    let (answer_xml, ok, partial) = the_user_reply(&outs3);
    assert!(ok && !partial);
    // Exactly one n2 parking space merged into the final answer.
    assert_eq!(answer_xml.matches("<parkingSpace").count(), 2);

    // The duplicate lands after completion: silently dropped, no output,
    // cache invariants intact.
    let outs4 = oa1.handle(answer, &mut dns, 0.3);
    assert!(outs4.is_empty(), "duplicate produced output: {outs4:?}");
    oa1.db().check_invariants(&master()).unwrap();
    oa2.db().check_invariants(&master()).unwrap();

    // A re-posed identical query sees the cached copy (single merge) and
    // produces the same canonical answer.
    let outs5 = oa1.handle(
        Message::UserQuery { qid: 2, text: Q_BOTH.into(), endpoint: Endpoint(9) },
        &mut dns,
        1.0,
    );
    let (again, ok2, partial2) = the_user_reply(&outs5);
    assert!(ok2 && !partial2);
    assert_eq!(canon(&again), canon(&answer_xml));
}

#[test]
fn duplicate_subquery_is_answered_idempotently() {
    let (mut oa1, mut oa2, mut dns) = two_agents(RetryPolicy::disabled());
    let outs = oa1.handle(
        Message::UserQuery { qid: 1, text: Q_BOTH.into(), endpoint: Endpoint(9) },
        &mut dns,
        0.0,
    );
    let (_, sub_qid, text) = the_subquery(&outs);

    // The same subquery arrives twice at site 2 (duplicate delivery): both
    // copies are answered — subquery evaluation is read-only — and the
    // answers are identical.
    let a1 = oa2.handle(
        Message::SubQuery { qid: sub_qid, text: text.clone(), reply_to: SiteAddr(1) },
        &mut dns,
        0.1,
    );
    let a2 = oa2.handle(
        Message::SubQuery { qid: sub_qid, text, reply_to: SiteAddr(1) },
        &mut dns,
        0.2,
    );
    let (_, m1) = the_subanswer(&a1);
    let (_, m2) = the_subanswer(&a2);
    let (Message::SubAnswer { fragment_xml: f1, .. }, Message::SubAnswer { fragment_xml: f2, .. }) =
        (&m1, &m2)
    else {
        unreachable!()
    };
    assert_eq!(f1, f2);
    oa2.db().check_invariants(&master()).unwrap();
    assert_eq!(oa2.stats.subqueries_handled, 2);

    // Site 1 merges the first answer and finishes; the second is a no-op.
    let outs3 = oa1.handle(m1, &mut dns, 0.3);
    let (answer_xml, ok, partial) = the_user_reply(&outs3);
    assert!(ok && !partial);
    assert_eq!(answer_xml.matches("<parkingSpace").count(), 2);
    let outs4 = oa1.handle(m2, &mut dns, 0.4);
    assert!(outs4.is_empty(), "duplicate subquery answer produced output: {outs4:?}");
    oa1.db().check_invariants(&master()).unwrap();
}

#[test]
fn timer_resend_reuses_sub_qid_and_late_plus_retried_answers_merge_once() {
    let (mut oa1, mut oa2, mut dns) = two_agents(RetryPolicy::bounded(1.0, 3));
    let outs = oa1.handle(
        Message::UserQuery { qid: 1, text: Q_BOTH.into(), endpoint: Endpoint(9) },
        &mut dns,
        0.0,
    );
    let (to, sub_qid, text) = the_subquery(&outs);
    assert_eq!(to, SiteAddr(2));
    assert_eq!(oa1.next_deadline(), Some(1.0));

    // Nothing arrives: ticking before the deadline is a no-op, ticking
    // after it resends the SAME sub-query id to the (re-resolved) owner.
    assert!(oa1.tick(&mut dns, 0.5).is_empty());
    let retried = oa1.tick(&mut dns, 1.5);
    let (to_r, qid_r, text_r) = the_subquery(&retried);
    assert_eq!((to_r, qid_r), (SiteAddr(2), sub_qid));
    assert_eq!(text_r, text);
    assert_eq!(oa1.stats.retries_sent, 1);
    // Backoff doubled: next deadline is 1.5 + 2.0.
    assert_eq!(oa1.next_deadline(), Some(3.5));

    // Both the original (late) and the retried copies get answered.
    let a1 = oa2.handle(
        Message::SubQuery { qid: sub_qid, text: text.clone(), reply_to: SiteAddr(1) },
        &mut dns,
        1.6,
    );
    let a2 = oa2.handle(
        Message::SubQuery { qid: sub_qid, text, reply_to: SiteAddr(1) },
        &mut dns,
        1.7,
    );
    let (_, m1) = the_subanswer(&a1);
    let (_, m2) = the_subanswer(&a2);

    // First answer completes the query and disarms the timer...
    let outs3 = oa1.handle(m1, &mut dns, 2.0);
    let (answer_xml, ok, partial) = the_user_reply(&outs3);
    assert!(ok && !partial);
    assert_eq!(answer_xml.matches("<parkingSpace").count(), 2);
    assert_eq!(oa1.next_deadline(), None);
    // ...the second is ignored, with nothing double-merged.
    let outs4 = oa1.handle(m2, &mut dns, 2.1);
    assert!(outs4.is_empty(), "retried duplicate produced output: {outs4:?}");
    oa1.db().check_invariants(&master()).unwrap();
    assert_eq!(oa1.stats.asks_abandoned, 0);
}

#[test]
fn exhausted_retries_abandon_and_degrade_to_partial() {
    let (mut oa1, _oa2, mut dns) = two_agents(RetryPolicy::bounded(1.0, 2));
    let outs = oa1.handle(
        Message::UserQuery { qid: 1, text: Q_BOTH.into(), endpoint: Endpoint(9) },
        &mut dns,
        0.0,
    );
    the_subquery(&outs);

    // Site 2 never answers. Walk the deadlines until abandonment.
    let mut outs_final = Vec::new();
    let mut guard = 0;
    while let Some(dl) = oa1.next_deadline() {
        guard += 1;
        assert!(guard < 10, "timer never quiesced");
        let outs = oa1.tick(&mut dns, dl + 0.01);
        if !outs.is_empty() && outs.iter().any(|o| matches!(o, Outbound::ReplyUser { .. })) {
            outs_final = outs;
        }
    }
    assert_eq!(oa1.stats.retries_sent, 2);
    assert_eq!(oa1.stats.asks_abandoned, 1);
    assert_eq!(oa1.stats.partial_answers, 1);
    let (answer_xml, ok, partial) = the_user_reply(&outs_final);
    assert!(ok, "partial degradation must still answer: {answer_xml}");
    assert!(partial);
    // The reachable (n1) parking data is present; the n2 stub is stamped
    // partial.
    assert_eq!(answer_xml.matches("<parkingSpace").count(), 1);
    assert!(answer_xml.contains("partial=\"true\""));
    oa1.db().check_invariants(&master()).unwrap();

    // With CacheMode::Aggressive the partial path must NOT have been
    // promoted to a complete cached copy: a later query re-asks.
    let outs = oa1.handle(
        Message::UserQuery { qid: 2, text: Q_BOTH.into(), endpoint: Endpoint(9) },
        &mut dns,
        100.0,
    );
    the_subquery(&outs);
}

#[test]
fn cache_off_retry_bookkeeping_stays_clean() {
    // Ephemeral (scratch-overlay) pendings keep their own ask bookkeeping;
    // duplicates must be inert there too.
    let svc = Service::parking();
    let config = OaConfig {
        cache: CacheMode::Off,
        retry: RetryPolicy::bounded(1.0, 2),
        ..OaConfig::default()
    };
    let oa1 = OrganizingAgent::new(SiteAddr(1), svc.clone(), config.clone());
    oa1.db_mut()
        .bootstrap_owned(&master(), &IdPath::from_pairs([("usRegion", "NE")]), true)
        .unwrap();
    oa1.db_mut().set_status_subtree(&n2(), Status::Complete).unwrap();
    oa1.db_mut().evict(&n2()).unwrap();
    let oa2 = OrganizingAgent::new(SiteAddr(2), svc.clone(), config);
    oa2.db_mut().bootstrap_owned(&master(), &n2(), true).unwrap();
    let mut dns = AuthoritativeDns::new();
    dns.register(&svc.dns_name(&IdPath::from_pairs([("usRegion", "NE")])), SiteAddr(1));
    dns.register(&svc.dns_name(&n2()), SiteAddr(2));
    let (mut oa1, mut oa2) = (oa1, oa2);

    let outs = oa1.handle(
        Message::UserQuery { qid: 1, text: Q_BOTH.into(), endpoint: Endpoint(9) },
        &mut dns,
        0.0,
    );
    let (_, sub_qid, text) = the_subquery(&outs);
    let a = oa2.handle(
        Message::SubQuery { qid: sub_qid, text, reply_to: SiteAddr(1) },
        &mut dns,
        0.1,
    );
    let (_, m) = the_subanswer(&a);
    let outs2 = oa1.handle(m.clone(), &mut dns, 0.2);
    let (answer_xml, ok, partial) = the_user_reply(&outs2);
    assert!(ok && !partial);
    assert_eq!(answer_xml.matches("<parkingSpace").count(), 2);
    assert!(oa1.handle(m, &mut dns, 0.3).is_empty());
    assert_eq!(oa1.next_deadline(), None);
    // Caching off: nothing about n2 was retained, and invariants hold.
    oa1.db().check_invariants(&master()).unwrap();
}
