//! Concurrency stress for the read/mutation split: reader threads execute
//! QEG programs through `perform_read` against the shared site database
//! while the owner thread interleaves updates, evictions and fragment
//! merges. At quiescence the fragment invariants must hold and every query
//! must answer byte-identically to a serial replay of the same mutation
//! sequence.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use irisdns::{AuthoritativeDns, SiteAddr};
use irisnet_core::qeg::plan_query;
use irisnet_core::{
    perform_read, Endpoint, IdPath, Message, OaConfig, OrganizingAgent, ReadResult,
    ReadTask, ReadTaskKind, Service, SiteDatabase, Status,
};

fn master() -> sensorxml::Document {
    let mut s =
        String::from(r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">"#);
    for n in 1..=2 {
        s += &format!(r#"<neighborhood id="n{n}">"#);
        for b in 1..=3 {
            s += &format!(r#"<block id="{b}">"#);
            for p in 1..=3 {
                s += &format!(
                    r#"<parkingSpace id="{p}"><available>yes</available></parkingSpace>"#
                );
            }
            s += "</block>";
        }
        s += "</neighborhood>";
    }
    s += "</city></county></state></usRegion>";
    sensorxml::parse(&s).unwrap()
}

fn pgh() -> IdPath {
    IdPath::from_pairs([
        ("usRegion", "NE"),
        ("state", "PA"),
        ("county", "A"),
        ("city", "P"),
    ])
}

const QUERIES: &[&str] = &[
    "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
     /neighborhood[@id='n1']/block[@id='1']/parkingSpace[available='yes']",
    "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
     /neighborhood[@id='n1' or @id='n2']/block[@id='2']/parkingSpace[available='yes']",
    "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
     /neighborhood[@id='n2']/block[@id='3']/parkingSpace",
];

/// The stressed site owns n1 and holds n2 as a cached (evictable) copy.
fn make_agent(svc: &Arc<Service>) -> OrganizingAgent {
    let oa = OrganizingAgent::new(SiteAddr(1), svc.clone(), OaConfig::default());
    oa.db_mut().bootstrap_owned(&master(), &IdPath::from_pairs([("usRegion", "NE")]), true)
        .unwrap();
    oa.db_mut()
        .set_status_subtree(&pgh().child("neighborhood", "n2"), Status::Complete)
        .unwrap();
    oa
}

/// The deterministic mutation sequence the owner loop applies: flip a space
/// in n1 every round; every 25th round evict the cached n2 subtree and
/// merge it back from a pristine export two rounds later.
fn owner_round(oa: &mut OrganizingAgent, dns: &mut AuthoritativeDns, full: &SiteDatabase, r: u64) {
    let n2 = pgh().child("neighborhood", "n2");
    match r % 25 {
        7 => {
            let _ = oa.db_mut().evict(&n2);
        }
        9 => {
            let frag = full.export_subtrees(std::slice::from_ref(&n2)).unwrap();
            oa.db_mut().merge_fragment(&frag).unwrap();
        }
        _ => {
            let path = pgh()
                .child("neighborhood", "n1")
                .child("block", format!("{}", r % 3 + 1))
                .child("parkingSpace", format!("{}", r % 3 + 1));
            let val = if r.is_multiple_of(2) { "no" } else { "yes" };
            let _ = oa.handle(
                Message::Update { path, fields: vec![("available".into(), val.into())] },
                dns,
                r as f64,
            );
        }
    }
}

fn final_answer(oa: &OrganizingAgent, svc: &Service, q: &str, pid: u64) -> String {
    let expr = sensorxpath::parse(q).unwrap();
    let plan = plan_query(&expr, svc).unwrap();
    let task = ReadTask {
        pid,
        posed_at: 0.0,
        kind: ReadTaskKind::FinalizeUser { plan, endpoint: Endpoint(0), qid: pid, failed: Vec::new() },
    };
    let done = {
        let db = oa.db();
        perform_read(&task, &oa.qeg(), &db)
    };
    let ReadResult::UserAnswer { answer_xml, ok, .. } = done.result else {
        panic!("expected a user answer")
    };
    assert!(ok, "final answer failed for {q}: {answer_xml}");
    answer_xml
}

#[test]
fn concurrent_reads_during_mutation_preserve_invariants() {
    const ROUNDS: u64 = 400;
    const READERS: usize = 4;

    let svc = Service::parking();
    let mut full = SiteDatabase::new(svc.clone());
    full.bootstrap_owned(&master(), &IdPath::from_pairs([("usRegion", "NE")]), true)
        .unwrap();
    let full = Arc::new(full);

    let mut oa = make_agent(&svc);
    let stop = Arc::new(AtomicBool::new(false));
    let executed = Arc::new(AtomicU64::new(0));

    let mut readers = Vec::new();
    for t in 0..READERS {
        let db = oa.shared_db();
        let qeg = oa.qeg();
        let stop = stop.clone();
        let executed = executed.clone();
        let svc = svc.clone();
        readers.push(std::thread::spawn(move || {
            let mut i = t;
            while !stop.load(Ordering::Relaxed) {
                let q = QUERIES[i % QUERIES.len()];
                i += 1;
                let expr = sensorxpath::parse(q).unwrap();
                let plan = plan_query(&expr, &svc).unwrap();
                let task = ReadTask {
                    pid: i as u64,
                    posed_at: 0.0,
                    kind: ReadTaskKind::Execute { plan, ignore_complete: false },
                };
                let done = {
                    let db = db.read();
                    perform_read(&task, &qeg, &db)
                };
                // Execution never errors, whichever snapshot it saw (the
                // cached n2 subtree may be evicted or present — both are
                // valid states that at most produce fresh asks).
                match done.result {
                    ReadResult::Executed { .. } => {
                        executed.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("read failed mid-stress: {other:?}"),
                }
            }
        }));
    }

    let mut dns = AuthoritativeDns::new();
    dns.register(&svc.dns_name(&IdPath::from_pairs([("usRegion", "NE")])), SiteAddr(1));
    for r in 0..ROUNDS {
        owner_round(&mut oa, &mut dns, &full, r);
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().expect("reader thread panicked");
    }
    assert!(executed.load(Ordering::Relaxed) > 0, "readers made no progress");

    // Fragment invariants at quiescence: sibling index and I1/I2 intact.
    oa.db().doc().check_sibling_index().unwrap();
    oa.db().check_invariants(&master()).unwrap();

    // Serial replay: the same mutation sequence with no concurrent readers
    // must leave the database answering every query byte-identically.
    let mut replay = make_agent(&svc);
    let mut dns2 = AuthoritativeDns::new();
    dns2.register(&svc.dns_name(&IdPath::from_pairs([("usRegion", "NE")])), SiteAddr(1));
    for r in 0..ROUNDS {
        owner_round(&mut replay, &mut dns2, &full, r);
    }
    for (i, q) in QUERIES.iter().enumerate() {
        let stressed = final_answer(&oa, &svc, q, 1000 + i as u64);
        let serial = final_answer(&replay, &svc, q, 2000 + i as u64);
        assert_eq!(stressed, serial, "answer diverged after stress for {q}");
    }
}
