//! # irisnet-core
//!
//! The core of the Cache-and-Query system (SIGMOD 2003): distributed XPATH
//! query processing over a single logical XML document fragmented across
//! sites, with query-driven caching, partial-match reuse, query-based
//! consistency and dynamic ownership migration.
//!
//! Layering (bottom-up):
//!
//! * [`service`] — service schemas (IDable hierarchy, DNS suffix);
//! * [`idable`] — ID paths and local (ID) information (Defs. 3.1/3.2);
//! * [`fragment`] — per-site databases, statuses, invariants I1/I2,
//!   merging under C1/C2, eviction ([`fragment::SiteDatabase`]);
//! * [`qeg`] — query-evaluate-gather: XPATH → XSLT compilation (naive and
//!   fast), execution, subquery extraction (§3.5, §4);
//! * [`routing`] — self-starting distributed queries via DNS names derived
//!   from the query text (§3.4);
//! * [`agent`] — the organizing agent state machine (queries, subqueries,
//!   updates, caching policy, consistency) and sensing agents;
//! * [`migration`] — atomic ownership transfer and load balancing (§4).

pub mod agent;
pub mod continuous;
pub mod error;
pub mod eviction;
pub mod fragment;
pub mod idable;
pub mod migration;
pub mod obs;
pub mod qeg;
pub mod routing;
pub mod schema_change;
pub mod service;
pub mod storage;

pub use agent::{
    perform_read, CacheMode, Endpoint, HandleOutcome, Message, OaConfig, OaStats,
    OrganizingAgent, Outbound, QueryId, ReadContext, ReadDone, ReadResult, ReadTask,
    ReadTaskKind, RetryPolicy, SensingAgent,
};
pub use continuous::{ContinuousRegistry, Notification};
pub use error::{CoreError, CoreResult};
pub use eviction::{
    CacheBudget, CacheLookup, CacheManager, CacheStats, EvictionPolicy, HEAT_HALF_LIFE,
};
pub use fragment::{FragmentStats, SiteDatabase, Status, UnitCost};
pub use idable::IdPath;
pub use obs::ObsPlane;
pub use qeg::{QegFactory, QegOutcome, XsltCreation};
pub use routing::lca_dns_name;
pub use service::{Schema, Service};
pub use storage::{
    DurabilityConfig, FileBackend, MemoryBackend, RecoveredState, RecoveryStats,
    SiteStore, SiteWal, StorageBackend, StorageError, WalRecord,
};
