//! Query-Evaluate-Gather (§3.5, §4).
//!
//! Given an XPATH query, a site must detect (1) which locally stored data
//! is part of the result and (2) how to gather the missing parts. XPATH
//! itself cannot express this over the status-tagged fragment, so — exactly
//! as the paper does — we *compile the query into an XSLT program* whose
//! templates switch on each node's `status` attribute and either descend,
//! or emit an `iris-ask` placeholder naming the node that must be fetched
//! from its owner.
//!
//! Two creation strategies reproduce the paper's Fig. 11 comparison:
//!
//! * [`XsltCreation::Naive`] — render the stylesheet to XSLT *text*, then
//!   parse and compile it from scratch (what the unoptimized prototype
//!   did through standard interfaces);
//! * [`XsltCreation::Fast`] — keep a compiled skeleton per query *shape*
//!   and patch only the query-dependent XPath slots
//!   ([`sensorxslt::Compiled::patch_slots`], the §4 optimization).
//!
//! The gather phase differs from the paper in one mechanical respect,
//! documented in DESIGN.md: instead of splicing subquery answers into the
//! annotated output, the agent *merges* answer fragments into its site
//! database (the cache-fill of §3.3) and re-runs the QEG program until no
//! placeholders remain; the final answer is then extracted from the now
//! sufficient fragment. This is behaviourally equivalent and makes
//! partial-match caching and answer assembly one mechanism.

use std::collections::HashMap;
use std::sync::Arc;

use irisobs::Counter;
use parking_lot::Mutex;
use sensorxml::Document;
use sensorxpath::analysis::{split_step_predicates, SplitPredicates};
use sensorxpath::{Axis, Expr, LocationPath, NodeTest, Step, Value, XNode};
use sensorxslt::{
    compile, AttrPart, Compiled, ExecOptions, ExprSlot, Instruction, Pattern, PatternStep,
    Stylesheet, Template,
};

use crate::error::{CoreError, CoreResult};
use crate::fragment::SiteDatabase;
use crate::idable::IdPath;
use crate::service::Service;

/// How one distribution step selects children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepKind {
    /// `child::tag` over an IDable tag.
    Tag(String),
    /// `child::*` (IDable children of any tag).
    Wildcard,
    /// The `//` marker: search IDable descendants for the next step.
    Descendant,
}

/// One step of the distribution prefix, with its predicate split.
#[derive(Debug, Clone)]
pub struct DistStep {
    pub kind: StepKind,
    /// `P_id` conjuncts (id-attribute only).
    pub pid: Vec<Expr>,
    /// `P_rest` conjuncts (everything but id and consistency).
    pub prest: Vec<Expr>,
    /// `P_consistency` conjuncts (freshness tolerances).
    pub pcons: Vec<Expr>,
    /// False when some conjunct mixes id and non-id references, so `P_id`
    /// cannot be trusted as a pre-filter (§3.5 fallback).
    pub clean: bool,
}

impl DistStep {
    fn from_step(step: &Step, kind: StepKind, ts_field: &str) -> DistStep {
        let SplitPredicates { id, consistency, rest, clean } =
            split_step_predicates(step, ts_field);
        DistStep { kind, pid: id, prest: rest, pcons: consistency, clean }
    }

    fn pid_source(&self) -> String {
        if !self.clean {
            return "true()".to_string();
        }
        sensorxpath::optimize(&Expr::conjunction(self.pid.clone())).to_string()
    }

    fn full_source(&self) -> String {
        let mut all = self.pid.clone();
        all.extend(self.prest.clone());
        sensorxpath::optimize(&Expr::conjunction(all)).to_string()
    }

    fn pcons_source(&self) -> String {
        sensorxpath::optimize(&Expr::conjunction(self.pcons.clone())).to_string()
    }
}

/// A distributable query plan.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The original parsed query.
    pub expr: Expr,
    /// The distribution prefix (child steps over the IDable hierarchy,
    /// wildcards, `//` markers).
    pub dist_steps: Vec<DistStep>,
    /// Steps past the distribution prefix; they select *within* the local
    /// information of the final distribution nodes, so they never cause
    /// network traffic.
    pub suffix_len: usize,
    /// Earliest step index that must see its whole subtree locally before
    /// predicates can be evaluated (None for nesting depth 0). See §4
    /// "Larger nesting depths".
    pub fetch_subtree_at: Option<usize>,
    /// Query nesting depth (Definition 3.3).
    pub nesting_depth: u32,
}

impl QueryPlan {
    /// Index of the final distribution step.
    pub fn final_step(&self) -> usize {
        self.dist_steps.len().saturating_sub(1)
    }
}

/// Analyzes a query for distributed execution.
///
/// Any *absolute path* query is distributable. Other top-level expression
/// shapes (`count(/...)`, unions, ...) are handled by the agent with a
/// root-anchored whole-document gather — supported, but not planned here.
pub fn plan_query(expr: &Expr, service: &Service) -> CoreResult<QueryPlan> {
    let Expr::Path(path) = expr else {
        return Err(CoreError::Query(
            "only top-level path queries have a distribution plan".into(),
        ));
    };
    if !path.absolute {
        return Err(CoreError::Query("distributed queries must be absolute".into()));
    }
    let schema = &service.schema;
    let ts_field = &service.timestamp_field;

    let mut dist_steps: Vec<DistStep> = Vec::new();
    let mut consumed = 0usize;
    for step in &path.steps {
        let kind = if step.is_abbrev_descendant() {
            Some(StepKind::Descendant)
        } else if step.axis == Axis::Child {
            match &step.test {
                NodeTest::Name(tag) if schema.is_idable(tag) => Some(StepKind::Tag(tag.clone())),
                NodeTest::Any => Some(StepKind::Wildcard),
                _ => None,
            }
        } else {
            None
        };
        match kind {
            Some(k) => {
                dist_steps.push(DistStep::from_step(step, k, ts_field));
                consumed += 1;
            }
            None => break,
        }
    }
    // A trailing `//` marker with no following distribution step belongs to
    // the suffix (it cannot be planned without a next step).
    if matches!(dist_steps.last().map(|s| &s.kind), Some(StepKind::Descendant)) {
        dist_steps.pop();
        consumed -= 1;
    }
    if dist_steps.is_empty() {
        return Err(CoreError::Query(
            "query has no distributable prefix (root-anchored gather required)".into(),
        ));
    }
    let suffix_len = path.steps.len() - consumed;

    // Nesting depth and subtree pre-fetch anchor (§4).
    let is_idable = |t: &str| schema.is_idable(t);
    let nesting_depth = sensorxpath::analysis::nesting_depth(expr, &is_idable);
    let fetch_subtree_at = if nesting_depth == 0 {
        None
    } else {
        Some(fetch_anchor(&path.steps, consumed, &is_idable))
    };

    Ok(QueryPlan {
        expr: expr.clone(),
        dist_steps,
        suffix_len,
        fetch_subtree_at,
        nesting_depth,
    })
}

/// Finds the earliest distribution step at which the whole subtree must be
/// local: for each step whose predicates traverse IDable nodes, upward
/// references (`..`) pull the anchor toward the root (the paper's "earliest
/// tag that is referred to in such a nested predicate").
fn fetch_anchor(steps: &[Step], dist_len: usize, is_idable: &dyn Fn(&str) -> bool) -> usize {
    let mut anchor = dist_len.saturating_sub(1);
    let mut found = false;
    for (i, step) in steps.iter().enumerate().take(dist_len) {
        for pred in &step.predicates {
            if let Some(ups) = nested_pred_upward(pred, is_idable) {
                let a = i.saturating_sub(ups);
                if !found || a < anchor {
                    anchor = a;
                    found = true;
                }
            }
        }
    }
    if found {
        anchor
    } else {
        dist_len.saturating_sub(1)
    }
}

/// If `pred` contains a location path traversing IDable nodes, returns the
/// maximum number of leading `..` steps among such paths (0 if none).
fn nested_pred_upward(pred: &Expr, is_idable: &dyn Fn(&str) -> bool) -> Option<usize> {
    let mut best: Option<usize> = None;
    collect_paths(pred, &mut |p: &LocationPath| {
        let traverses = p.steps.iter().any(|s| {
            s.axis != Axis::Attribute && matches!(&s.test, NodeTest::Name(t) if is_idable(t))
        });
        if traverses {
            let ups = p
                .steps
                .iter()
                .take_while(|s| s.axis == Axis::Parent && s.test == NodeTest::Node)
                .count();
            best = Some(best.map_or(ups, |b: usize| b.max(ups)));
        }
    });
    best
}

fn collect_paths(e: &Expr, f: &mut dyn FnMut(&LocationPath)) {
    match e {
        Expr::Path(p) => {
            f(p);
            for s in &p.steps {
                for pred in &s.predicates {
                    collect_paths(pred, f);
                }
            }
        }
        Expr::Binary(_, l, r) | Expr::Union(l, r) => {
            collect_paths(l, f);
            collect_paths(r, f);
        }
        Expr::Negate(inner) => collect_paths(inner, f),
        Expr::Call(_, args) => args.iter().for_each(|a| collect_paths(a, f)),
        Expr::Filter { primary, predicates, .. } => {
            collect_paths(primary, f);
            predicates.iter().for_each(|p| collect_paths(p, f));
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Asks (gather requests)
// ---------------------------------------------------------------------

/// Why a node must be fetched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AskKind {
    /// The node (or data below it) is missing: continue the query there.
    Query,
    /// Cached data failed a consistency predicate: refresh from the owner.
    Stale,
    /// A nested predicate needs the node's entire subtree locally (§4).
    Subtree,
}

impl AskKind {
    /// Stable label, used in subquery wire text and span details.
    pub fn as_str(self) -> &'static str {
        match self {
            AskKind::Query => "query",
            AskKind::Stale => "stale",
            AskKind::Subtree => "subtree",
        }
    }

    fn parse(s: &str) -> Option<AskKind> {
        match s {
            "query" => Some(AskKind::Query),
            "stale" => Some(AskKind::Stale),
            "subtree" => Some(AskKind::Subtree),
            _ => None,
        }
    }
}

/// A gather request produced by a QEG run: fetch `path` from its owner.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ask {
    pub path: IdPath,
    pub kind: AskKind,
    /// Index of the first *remaining* distribution step below the asked
    /// node (`usize::MAX` marks asks that carry no remaining steps, e.g.
    /// collect-mode subtree fetches).
    pub step: usize,
}

/// Renders the **generalized subquery** (§3.3) for an ask: the node's id
/// path plus the remaining distribution steps with *only their id
/// predicates* retained, so the fetched superset is query-independent and
/// later queries with different value predicates hit the cache.
pub fn generalized_subquery(plan: &QueryPlan, ask: &Ask) -> String {
    let mut q = ask.path.to_xpath();
    if ask.kind == AskKind::Query && ask.step != usize::MAX {
        let mut pending_descendant = false;
        for ds in plan.dist_steps.iter().skip(ask.step) {
            match &ds.kind {
                StepKind::Descendant => pending_descendant = true,
                StepKind::Tag(t) => {
                    q.push('/');
                    if pending_descendant {
                        q.push('/');
                        pending_descendant = false;
                    }
                    q.push_str(t);
                    push_id_preds(&mut q, ds);
                }
                StepKind::Wildcard => {
                    q.push('/');
                    if pending_descendant {
                        q.push('/');
                        pending_descendant = false;
                    }
                    q.push('*');
                    push_id_preds(&mut q, ds);
                }
            }
        }
    }
    q
}

fn push_id_preds(q: &mut String, ds: &DistStep) {
    if ds.clean {
        for p in &ds.pid {
            q.push('[');
            q.push_str(&p.to_string());
            q.push(']');
        }
    }
}

/// Renders the *non-generalized* subquery for an ask: remaining steps keep
/// their full value predicates (consistency predicates stripped), so the
/// owner ships only the exact matches. This is the ablation arm of the
/// paper's §3.3 generalization claim — cached data then fails to serve
/// later queries with different predicates.
pub fn literal_subquery(plan: &QueryPlan, ask: &Ask) -> String {
    let mut q = ask.path.to_xpath();
    if ask.kind == AskKind::Query && ask.step != usize::MAX {
        let mut pending_descendant = false;
        for ds in plan.dist_steps.iter().skip(ask.step) {
            match &ds.kind {
                StepKind::Descendant => pending_descendant = true,
                StepKind::Tag(_) | StepKind::Wildcard => {
                    q.push('/');
                    if pending_descendant {
                        q.push('/');
                        pending_descendant = false;
                    }
                    match &ds.kind {
                        StepKind::Tag(t) => q.push_str(t),
                        _ => q.push('*'),
                    }
                    if ds.clean {
                        for p in ds.pid.iter().chain(ds.prest.iter()) {
                            q.push('[');
                            q.push_str(&p.to_string());
                            q.push(']');
                        }
                    }
                }
            }
        }
    }
    q
}

// ---------------------------------------------------------------------
// Stylesheet generation
// ---------------------------------------------------------------------

/// Shape key for the fast-path skeleton cache: everything that determines
/// template structure (but not the predicate contents).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ShapeKey {
    steps: Vec<(u8, Option<String>, bool, bool, bool, bool)>,
    fetch_at: Option<usize>,
    ignore_complete: bool,
}

impl ShapeKey {
    fn of(plan: &QueryPlan, ignore_complete: bool) -> ShapeKey {
        ShapeKey {
            ignore_complete,
            steps: plan
                .dist_steps
                .iter()
                .map(|s| {
                    let (d, tag) = match &s.kind {
                        StepKind::Tag(t) => (0u8, Some(t.clone())),
                        StepKind::Wildcard => (1, None),
                        StepKind::Descendant => (2, None),
                    };
                    (
                        d,
                        tag,
                        s.pid.is_empty(),
                        s.prest.is_empty(),
                        s.pcons.is_empty(),
                        s.clean,
                    )
                })
                .collect(),
            fetch_at: plan.fetch_subtree_at,
        }
    }
}

/// The query-dependent slots of a generated stylesheet, for patching.
#[derive(Debug, Clone, Default)]
struct StepSlots {
    pid: Option<ExprSlot>,
    full: Option<ExprSlot>,
    pcons: Option<ExprSlot>,
    gate: Option<ExprSlot>,
    /// The descend select when it embeds the *next* step's id predicate
    /// (`tag[@id = 'x']`); query-dependent, so patched alongside the rest.
    next_sel: Option<ExprSlot>,
}

/// A ready-to-run QEG program.
#[derive(Debug, Clone)]
pub struct QegProgram {
    pub compiled: Compiled,
    start_mode: String,
}

impl QegProgram {
    /// Runs the program against a site database, returning the annotated
    /// output and the extracted asks.
    pub fn execute(&self, db: &SiteDatabase, now: f64) -> CoreResult<QegOutcome> {
        let output = sensorxslt::apply_with_options(
            &self.compiled,
            db.doc(),
            ExecOptions {
                now,
                start_mode: Some(self.start_mode.clone()),
                ..ExecOptions::default()
            },
        )?;
        let asks = extract_asks(&output)?;
        Ok(QegOutcome { output, asks })
    }
}

/// Result of one QEG run.
#[derive(Debug)]
pub struct QegOutcome {
    /// The annotated XSLT output (copied id skeleton + `iris-ask`
    /// placeholders).
    pub output: Document,
    /// The gather requests found in the output.
    pub asks: Vec<Ask>,
}

impl QegOutcome {
    /// True when the local fragment sufficed.
    pub fn is_complete(&self) -> bool {
        self.asks.is_empty()
    }
}

/// Walks a QEG output document and collects the `iris-ask` placeholders,
/// reconstructing each target's id path from the placeholder's copied
/// ancestors.
pub fn extract_asks(output: &Document) -> CoreResult<Vec<Ask>> {
    let Some(root) = output.root() else {
        return Ok(Vec::new());
    };
    let mut asks = Vec::new();
    for n in output.descendants(root) {
        if output.name(n) != "iris-ask" {
            continue;
        }
        let tag = output
            .attr(n, "tag")
            .ok_or_else(|| CoreError::Protocol("iris-ask without tag".into()))?;
        let id = output
            .attr(n, "id")
            .ok_or_else(|| CoreError::Protocol("iris-ask without id".into()))?;
        let kind = output
            .attr(n, "kind")
            .and_then(AskKind::parse)
            .ok_or_else(|| CoreError::Protocol("iris-ask with bad kind".into()))?;
        let step = output
            .attr(n, "step")
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or(usize::MAX);
        // Ancestors: every element between the placeholder and the <result>
        // wrapper is a copied IDable node carrying its id.
        let mut rev: Vec<(String, String)> = vec![(tag.to_string(), id.to_string())];
        for a in output.ancestors(n) {
            if a == root {
                break;
            }
            let a_id = output.attr(a, "id").ok_or_else(|| {
                CoreError::Protocol("iris-ask ancestor without id".into())
            })?;
            rev.push((output.name(a).to_string(), a_id.to_string()));
        }
        rev.reverse();
        let mut dedup_path = IdPath::root();
        for (t, i) in rev {
            dedup_path = dedup_path.child(t, i);
        }
        asks.push(Ask { path: dedup_path, kind, step });
    }
    // The same node can be asked for via several branches; deduplicate.
    asks.sort_by(|a, b| (&a.path, a.kind.as_str()).cmp(&(&b.path, b.kind.as_str())));
    asks.dedup();
    Ok(asks)
}

/// XSLT creation strategy (paper Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XsltCreation {
    /// Render → parse → compile the full stylesheet per query.
    Naive,
    /// Reuse a compiled skeleton per query shape; re-parse only the
    /// query-dependent predicate slots.
    Fast,
}

/// Upper bound on distinct query shapes kept by the fast-path skeleton
/// cache; beyond this the least-recently-used shape is evicted.
pub const SKELETON_CACHE_CAP: usize = 64;

/// One cached compiled skeleton plus the bookkeeping for LRU eviction.
#[derive(Debug)]
struct SkeletonEntry {
    compiled: Compiled,
    slots: Vec<StepSlots>,
    start_mode: String,
    last_used: u64,
}

/// The bounded skeleton cache: shape -> compiled skeleton, with a logical
/// clock driving least-recently-used eviction.
#[derive(Debug, Default)]
struct SkeletonCache {
    map: HashMap<ShapeKey, SkeletonEntry>,
    clock: u64,
}

impl SkeletonCache {
    fn touch(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Evicts least-recently-used entries until the cache fits `cap`.
    /// Returns how many entries were dropped.
    fn enforce_cap(&mut self, cap: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() > cap {
            let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&oldest);
            evicted += 1;
        }
        evicted
    }
}

/// Creates QEG programs from query plans.
///
/// The factory is shared across read workers (`Arc<QegFactory>` in the
/// live cluster): creation takes `&self`, the skeleton cache sits behind a
/// mutex held only for lookup/insert (never across a compile), and the
/// counters are atomics. Fast-path cache *hits* therefore stay cheap and
/// concurrent — a miss compiles outside the lock, so a burst of new shapes
/// doesn't serialize the pool either.
#[derive(Debug)]
pub struct QegFactory {
    /// The service this factory generates programs for (kept for
    /// diagnostics; codegen itself is schema-independent).
    pub service: Arc<Service>,
    creation: XsltCreation,
    skeletons: Mutex<SkeletonCache>,
    // Counters are `Arc<irisobs::Counter>` so the observability plane can
    // adopt the *same storage* as named series (no double counting, no
    // second update on the hot path).
    created: Arc<Counter>,
    skeleton_hits: Arc<Counter>,
    skeleton_misses: Arc<Counter>,
    skeleton_evictions: Arc<Counter>,
}

impl QegFactory {
    /// A factory for `service` with the given creation strategy.
    pub fn new(service: Arc<Service>, creation: XsltCreation) -> QegFactory {
        QegFactory {
            service,
            creation,
            skeletons: Mutex::new(SkeletonCache::default()),
            created: Arc::new(Counter::new()),
            skeleton_hits: Arc::new(Counter::new()),
            skeleton_misses: Arc::new(Counter::new()),
            skeleton_evictions: Arc::new(Counter::new()),
        }
    }

    /// The factory's counters as `(series name, shared storage)` pairs, for
    /// adoption into a metrics registry.
    pub fn counter_handles(&self) -> [(&'static str, Arc<Counter>); 4] {
        [
            ("qeg.created", self.created.clone()),
            ("qeg.skeleton_hits", self.skeleton_hits.clone()),
            ("qeg.skeleton_misses", self.skeleton_misses.clone()),
            ("qeg.skeleton_evictions", self.skeleton_evictions.clone()),
        ]
    }

    /// The active creation strategy.
    pub fn creation(&self) -> XsltCreation {
        self.creation
    }

    /// Programs created (both strategies).
    pub fn created(&self) -> u64 {
        self.created.get()
    }

    /// Fast-path skeleton cache hits.
    pub fn skeleton_hits(&self) -> u64 {
        self.skeleton_hits.get()
    }

    /// Fast-path skeleton cache misses (shape not cached; full compile).
    pub fn skeleton_misses(&self) -> u64 {
        self.skeleton_misses.get()
    }

    /// Skeletons dropped by the LRU bound ([`SKELETON_CACHE_CAP`]).
    pub fn skeleton_evictions(&self) -> u64 {
        self.skeleton_evictions.get()
    }

    /// Distinct shapes currently cached (≤ [`SKELETON_CACHE_CAP`]).
    pub fn skeleton_cache_len(&self) -> usize {
        self.skeletons.lock().map.len()
    }

    /// Builds the executable QEG program for a plan.
    pub fn create(&self, plan: &QueryPlan) -> CoreResult<QegProgram> {
        self.create_with(plan, false)
    }

    /// Builds a QEG program; with `ignore_complete` the generated program
    /// treats cached (`complete`) data as stale and always refreshes from
    /// the owner — the lever behind the paper's controlled cache-hit-rate
    /// experiments (Fig. 10's "caching with no hits").
    pub fn create_with(
        &self,
        plan: &QueryPlan,
        ignore_complete: bool,
    ) -> CoreResult<QegProgram> {
        self.created.inc();
        match self.creation {
            XsltCreation::Naive => {
                // Full round trip through stylesheet *text*, like the
                // unoptimized prototype.
                let (sheet, _slots, start_mode) =
                    generate_stylesheet(plan, ignore_complete);
                let text = sheet.to_xml_text();
                let reparsed = sensorxslt::parse_stylesheet(&text)?;
                let compiled = compile(reparsed)?;
                Ok(QegProgram { compiled, start_mode })
            }
            XsltCreation::Fast => {
                let key = ShapeKey::of(plan, ignore_complete);
                let hit = {
                    let mut cache = self.skeletons.lock();
                    let stamp = cache.touch();
                    cache.map.get_mut(&key).map(|entry| {
                        entry.last_used = stamp;
                        (entry.compiled.clone(), slot_updates(plan, &entry.slots),
                         entry.start_mode.clone())
                    })
                };
                if let Some((mut compiled, updates, start_mode)) = hit {
                    self.skeleton_hits.inc();
                    compiled.patch_slots(&updates)?;
                    return Ok(QegProgram { compiled, start_mode });
                }
                self.skeleton_misses.inc();
                // Compile outside the lock; a racing worker compiling the
                // same shape just overwrites with an identical skeleton.
                let (sheet, slots, start_mode) = generate_stylesheet(plan, ignore_complete);
                let compiled = compile(sheet)?;
                let evicted = {
                    let mut cache = self.skeletons.lock();
                    let stamp = cache.touch();
                    cache.map.insert(
                        key,
                        SkeletonEntry {
                            compiled: compiled.clone(),
                            slots,
                            start_mode: start_mode.clone(),
                            last_used: stamp,
                        },
                    );
                    cache.enforce_cap(SKELETON_CACHE_CAP)
                };
                if evicted > 0 {
                    self.skeleton_evictions.add(evicted);
                }
                Ok(QegProgram { compiled, start_mode })
            }
        }
    }
}

/// The pid-narrowed descend select for a tag step: `tag[P_id]`.
fn narrowed_select(tag: &str, ds: &DistStep) -> String {
    format!("{tag}[{}]", ds.pid_source())
}

fn slot_updates(plan: &QueryPlan, slots: &[StepSlots]) -> Vec<(ExprSlot, String)> {
    let mut updates = Vec::new();
    for (i, (ds, ss)) in plan.dist_steps.iter().zip(slots).enumerate() {
        if let Some(slot) = ss.pid {
            updates.push((slot, ds.pid_source()));
        }
        if let Some(slot) = ss.full {
            updates.push((slot, ds.full_source()));
        }
        if let Some(slot) = ss.pcons {
            updates.push((slot, ds.pcons_source()));
        }
        // Gate tests embed P_id; regenerate them too.
        if let Some(slot) = ss.gate {
            updates.push((slot, gate_source(ds)));
        }
        // Descend selects embed the *next* step's P_id.
        if let Some(slot) = ss.next_sel {
            let nds = &plan.dist_steps[i + 1];
            if let StepKind::Tag(t) = &nds.kind {
                updates.push((slot, narrowed_select(t, nds)));
            }
        }
    }
    updates
}

/// Test used at the subtree pre-fetch step: the id predicate holds but the
/// subtree is not fully local.
fn gate_source(ds: &DistStep) -> String {
    format!(
        "({}) and count(descendant-or-self::*[@status='incomplete' or @status='id-complete']) > 0",
        ds.pid_source()
    )
}

/// Generates the QEG stylesheet for a plan. Returns the stylesheet, the
/// per-step query-dependent slots (for fast-path patching), and the start
/// mode.
fn generate_stylesheet(
    plan: &QueryPlan,
    ignore_complete: bool,
) -> (Stylesheet, Vec<StepSlots>, String) {
    let mut sheet = Stylesheet::new();
    let mut slots: Vec<StepSlots> = Vec::with_capacity(plan.dist_steps.len());

    // Shared slots.
    let sel_idable = sheet.slot("*[@status]");
    let sel_id_attr = sheet.slot("@id");
    let sel_name = sheet.slot("name()");
    let final_idx = plan.final_step();

    for (i, ds) in plan.dist_steps.iter().enumerate() {
        let mode = format!("s{i}");
        match &ds.kind {
            StepKind::Descendant => {
                slots.push(StepSlots::default());
                // The descendant search template lives in mode s{i} and
                // matches every IDable element; it tries the next step on
                // the node itself and keeps searching below.
                let next_mode = format!("s{}", i + 1);
                let next_ds = plan
                    .dist_steps
                    .get(i + 1)
                    .expect("descendant marker is never last");
                let name_test = match &next_ds.kind {
                    StepKind::Tag(t) => format!("name() = '{t}'"),
                    _ => "true()".to_string(),
                };
                let t_name = sheet.slot(name_test);
                let t_missing = sheet.slot("@status='incomplete'");
                let self_sel = sheet.slot(".");
                sheet.add_template(Template {
                    pattern: Pattern::any_element(),
                    mode: Some(mode.clone()),
                    priority: None,
                    body: vec![Instruction::Choose {
                        branches: vec![(
                            t_missing,
                            // Cannot search below an incomplete node.
                            vec![ask_instruction(AskKind::Query, i, sel_id_attr, sel_name)],
                        )],
                        otherwise: vec![
                            Instruction::If {
                                test: t_name,
                                body: vec![Instruction::ApplyTemplates {
                                    select: Some(self_sel),
                                    mode: Some(next_mode),
                                }],
                            },
                            // Keep searching inside a copied shell so that
                            // deeper asks carry their ancestry.
                            Instruction::Copy(vec![
                                Instruction::CopyOf(sel_id_attr),
                                Instruction::ApplyTemplates {
                                    select: Some(sel_idable),
                                    mode: Some(mode.clone()),
                                },
                            ]),
                        ],
                    }],
                });
            }
            StepKind::Tag(_) | StepKind::Wildcard => {
                let is_final = i == final_idx;
                let pid = sheet.slot(ds.pid_source());
                let full = sheet.slot(ds.full_source());
                let pcons = if ds.pcons.is_empty() {
                    None
                } else {
                    Some(sheet.slot(ds.pcons_source()))
                };
                let gate = if plan.fetch_subtree_at == Some(i) {
                    Some(sheet.slot(gate_source(ds)))
                } else {
                    None
                };

                // Descend select for the next step. When the next step has a
                // clean id predicate, embed it in the select
                // (`tag[@id = 'x']`) so the evaluator's sibling-index fast
                // path finds the child in O(1) instead of applying templates
                // to every same-tag sibling. Semantically equivalent: every
                // branch of the next step's template is gated on its P_id,
                // so a node failing the select predicate contributes
                // nothing. The embedded id makes the slot query-dependent;
                // it is recorded in `StepSlots` and patched like the rest.
                let next_sel = (!is_final).then(|| match &plan.dist_steps[i + 1].kind {
                    StepKind::Tag(t) => {
                        let nds = &plan.dist_steps[i + 1];
                        if nds.clean && !nds.pid.is_empty() {
                            (sheet.slot(narrowed_select(t, nds)), true)
                        } else {
                            (sheet.slot(t.clone()), false)
                        }
                    }
                    StepKind::Wildcard | StepKind::Descendant => (sel_idable, false),
                });
                slots.push(StepSlots {
                    pid: Some(pid),
                    full: Some(full),
                    pcons,
                    gate,
                    next_sel: next_sel
                        .and_then(|(slot, patched)| patched.then_some(slot)),
                });

                // What to do once the node qualifies.
                let descend = if is_final {
                    // Collect the whole subtree: recurse in collect mode.
                    vec![Instruction::Copy(vec![
                        Instruction::CopyOf(sel_id_attr),
                        Instruction::ApplyTemplates {
                            select: Some(sel_idable),
                            mode: Some("c".to_string()),
                        },
                    ])]
                } else {
                    let next_mode = format!("s{}", i + 1);
                    let (sel, _) = next_sel.expect("non-final step has a next select");
                    vec![Instruction::Copy(vec![
                        Instruction::CopyOf(sel_id_attr),
                        Instruction::ApplyTemplates {
                            select: Some(sel),
                            mode: Some(next_mode),
                        },
                    ])]
                };

                let mut branches: Vec<(ExprSlot, Vec<Instruction>)> = Vec::new();
                if let Some(g) = gate {
                    branches.push((
                        g,
                        vec![ask_instruction(AskKind::Subtree, i, sel_id_attr, sel_name)],
                    ));
                }
                // owned: full predicate decides; consistency ignored.
                let owned_test = sheet.slot("@status='owned'");
                branches.push((
                    owned_test,
                    vec![Instruction::If { test: full, body: descend.clone() }],
                ));
                // complete: additionally check freshness (or, when cached
                // data is administratively ignored, always refresh).
                let complete_test = sheet.slot("@status='complete'");
                let complete_body = if ignore_complete {
                    // Refresh the *whole cached unit* from its owner (one
                    // subtree fetch) instead of descending and asking per
                    // leaf: the cache fills in subtree units, so it
                    // refreshes in subtree units too.
                    vec![Instruction::If {
                        test: pid,
                        body: vec![ask_instruction(
                            AskKind::Stale,
                            usize::MAX,
                            sel_id_attr,
                            sel_name,
                        )],
                    }]
                } else {
                    match pcons {
                        None => vec![Instruction::If { test: full, body: descend.clone() }],
                        Some(pc) => vec![Instruction::If {
                            test: full,
                            body: vec![Instruction::Choose {
                                branches: vec![(pc, descend.clone())],
                                otherwise: vec![ask_instruction(
                                    AskKind::Stale,
                                    i,
                                    sel_id_attr,
                                    sel_name,
                                )],
                            }],
                        }],
                    }
                };
                branches.push((complete_test, complete_body));
                // id-complete: recurse without local info only when the
                // predicates are id-only, this is not the final step, and
                // no subtree gate applies.
                let idc_test = sheet.slot("@status='id-complete'");
                let idc_body = if !is_final
                    && ds.prest.is_empty()
                    && ds.pcons.is_empty()
                    && ds.clean
                    && plan.fetch_subtree_at != Some(i)
                {
                    vec![Instruction::If { test: pid, body: descend.clone() }]
                } else {
                    vec![Instruction::If {
                        test: pid,
                        body: vec![ask_instruction(
                            AskKind::Query,
                            i + 1,
                            sel_id_attr,
                            sel_name,
                        )],
                    }]
                };
                branches.push((idc_test, idc_body));
                // otherwise = incomplete: ask if the id predicate allows.
                let otherwise = vec![Instruction::If {
                    test: pid,
                    body: vec![ask_instruction(
                        AskKind::Query,
                        i + 1,
                        sel_id_attr,
                        sel_name,
                    )],
                }];

                let pattern = match &ds.kind {
                    StepKind::Tag(t) if i == 0 => Pattern {
                        absolute: true,
                        steps: vec![PatternStep {
                            test: NodeTest::Name(t.clone()),
                            predicates: vec![],
                        }],
                    },
                    StepKind::Tag(t) => Pattern::element(t.clone()),
                    _ => Pattern::any_element(),
                };
                sheet.add_template(Template {
                    pattern,
                    mode: Some(mode.clone()),
                    priority: None,
                    body: vec![Instruction::Choose { branches, otherwise }],
                });
                if i == 0 {
                    // Catch-all: stop built-in recursion below non-matching
                    // roots (an absolute first step matches the root only).
                    sheet.add_template(Template {
                        pattern: Pattern::any_element(),
                        mode: Some(mode.clone()),
                        priority: Some(-10.0),
                        body: Vec::new(),
                    });
                }
            }
        }
    }

    // Collect mode: gather entire stored subtrees under final-step matches,
    // asking for anything not complete (LOCAL-INFO-REQUIRED covers every
    // IDable tag below the final step).
    let c_have = sheet.slot("@status='owned' or @status='complete'");
    sheet.add_template(Template {
        pattern: Pattern::any_element(),
        mode: Some("c".to_string()),
        priority: None,
        body: vec![Instruction::Choose {
            branches: vec![(
                c_have,
                vec![Instruction::Copy(vec![
                    Instruction::CopyOf(sel_id_attr),
                    Instruction::ApplyTemplates {
                        select: Some(sel_idable),
                        mode: Some("c".to_string()),
                    },
                ])],
            )],
            otherwise: vec![ask_instruction(
                AskKind::Subtree,
                usize::MAX,
                sel_id_attr,
                sel_name,
            )],
        }],
    });

    let start_mode = "s0".to_string();
    (sheet, slots, start_mode)
}

/// Builds the `iris-ask` placeholder emission.
fn ask_instruction(
    kind: AskKind,
    step: usize,
    sel_id_attr: ExprSlot,
    sel_name: ExprSlot,
) -> Instruction {
    let step_text = if step == usize::MAX {
        "max".to_string()
    } else {
        step.to_string()
    };
    Instruction::Element {
        name: "iris-ask".to_string(),
        attrs: vec![
            ("tag".to_string(), vec![AttrPart::Expr(sel_name)]),
            ("id".to_string(), vec![AttrPart::Expr(sel_id_attr)]),
            ("kind".to_string(), vec![AttrPart::Literal(kind.as_str().to_string())]),
            ("step".to_string(), vec![AttrPart::Literal(step_text)]),
        ],
        body: Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Answer extraction
// ---------------------------------------------------------------------

/// Rewrites a query with its consistency predicates removed: freshness was
/// already enforced (or best-effort satisfied) during gathering, and the
/// paper's semantics return the freshest available data even when older
/// than the tolerance.
pub fn strip_consistency(expr: &Expr, ts_field: &str) -> Expr {
    match expr {
        Expr::Path(p) => Expr::Path(strip_path(p, ts_field)),
        Expr::Binary(op, l, r) => Expr::Binary(
            *op,
            Box::new(strip_consistency(l, ts_field)),
            Box::new(strip_consistency(r, ts_field)),
        ),
        Expr::Union(l, r) => Expr::Union(
            Box::new(strip_consistency(l, ts_field)),
            Box::new(strip_consistency(r, ts_field)),
        ),
        Expr::Negate(e) => Expr::Negate(Box::new(strip_consistency(e, ts_field))),
        Expr::Call(n, args) => Expr::Call(
            n.clone(),
            args.iter().map(|a| strip_consistency(a, ts_field)).collect(),
        ),
        Expr::Filter { primary, predicates, trailing } => Expr::Filter {
            primary: Box::new(strip_consistency(primary, ts_field)),
            predicates: strip_pred_list(predicates, ts_field),
            trailing: trailing.iter().map(|s| strip_step(s, ts_field)).collect(),
        },
        other => other.clone(),
    }
}

fn strip_path(p: &LocationPath, ts_field: &str) -> LocationPath {
    LocationPath {
        absolute: p.absolute,
        steps: p.steps.iter().map(|s| strip_step(s, ts_field)).collect(),
    }
}

fn strip_step(s: &Step, ts_field: &str) -> Step {
    let split = split_step_predicates(s, ts_field);
    let mut predicates = Vec::new();
    if split.clean {
        predicates.extend(split.id);
        predicates.extend(split.rest);
    } else {
        // Unsplittable: keep everything except recognized pure consistency
        // conjuncts.
        predicates.extend(split.id);
        predicates.extend(split.rest);
    }
    let predicates = predicates
        .into_iter()
        .map(|p| strip_consistency(&p, ts_field))
        .collect();
    let mut step = Step {
        axis: s.axis,
        test: s.test.clone(),
        predicates,
        indexed_id: None,
    };
    // The id predicate (if any) is first after the split; re-mark the step
    // so stripped distribution paths keep the indexed-lookup fast path.
    step.indexed_id = step.compute_indexed_id();
    step
}

fn strip_pred_list(preds: &[Expr], ts_field: &str) -> Vec<Expr> {
    preds.iter().map(|p| strip_consistency(p, ts_field)).collect()
}

/// Evaluates the plan's *distribution path* (consistency stripped) over the
/// site fragment and returns the id paths of the matched final-step nodes.
/// Used to build subquery answers via
/// [`crate::fragment::SiteDatabase::export_subtrees`].
pub fn matched_final_paths(
    plan: &QueryPlan,
    db: &SiteDatabase,
    now: f64,
) -> CoreResult<Vec<IdPath>> {
    let Expr::Path(orig) = &plan.expr else {
        return Err(CoreError::Query("non-path plan".into()));
    };
    let dist_len = orig.steps.len() - plan.suffix_len;
    let dist_path = LocationPath {
        absolute: true,
        steps: orig.steps[..dist_len].to_vec(),
    };
    let stripped = strip_consistency(&Expr::Path(dist_path), &db.service().timestamp_field);
    let nodes = eval_nodes(&stripped, db.doc(), now)?;
    let mut out = Vec::new();
    for n in nodes {
        if let XNode::Node(id) = n {
            if let Some(p) = IdPath::of_node(db.doc(), id) {
                out.push(p);
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// Evaluates the full original query (consistency stripped) over the site
/// fragment and builds the user-facing answer: a `<result>` document with
/// deep copies of the selected subtrees (internal attributes removed), or
/// a `<value>` element for scalar-valued queries like `count(...)`.
pub fn extract_user_answer(plan: &QueryPlan, db: &SiteDatabase, now: f64) -> CoreResult<Document> {
    let stripped = strip_consistency(&plan.expr, &db.service().timestamp_field);
    let vars = sensorxpath::Vars::new();
    let mut ctx = sensorxpath::EvalContext::new(
        db.doc(),
        db.doc().root().map(XNode::Node).unwrap_or(XNode::Document),
        &vars,
    );
    ctx.now = now;
    let value = sensorxpath::evaluate(&stripped, &ctx)?;
    let nodes = match value {
        Value::Nodes(ns) => ns,
        scalar => {
            // Scalar answer (count(), boolean(), arithmetic, ...).
            let (mut out, root) = Document::with_root("result");
            let v = out.create_element("value");
            out.append_child(root, v);
            out.set_text_content(v, scalar.string(db.doc()));
            return Ok(out);
        }
    };
    let (mut out, root) = Document::with_root("result");
    for n in nodes {
        match n {
            XNode::Node(id) => {
                let copied = db.doc().deep_copy_into(id, &mut out);
                out.append_child(root, copied);
            }
            XNode::Attr(id, idx) => {
                if let Some(a) = db.doc().attrs(id).get(idx as usize) {
                    let e = out.create_element("attribute");
                    out.set_attr(e, "name", a.name.clone());
                    out.set_attr(e, "value", a.value.clone());
                    out.append_child(root, e);
                }
            }
            XNode::Document => {}
        }
    }
    crate::fragment::strip_internal_attrs(&mut out, &db.service().timestamp_field);
    Ok(out)
}

fn eval_nodes(expr: &Expr, doc: &Document, now: f64) -> CoreResult<Vec<XNode>> {
    let vars = sensorxpath::Vars::new();
    let mut ctx = sensorxpath::EvalContext::new(
        doc,
        doc.root().map(XNode::Node).unwrap_or(XNode::Document),
        &vars,
    );
    ctx.now = now;
    match sensorxpath::evaluate(expr, &ctx)? {
        Value::Nodes(ns) => Ok(ns),
        _ => Err(CoreError::Query("query does not select nodes".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::SiteDatabase;
    use crate::service::Service;
    use sensorxml::parse;

    fn master() -> Document {
        parse(
            r#"<usRegion id="NE"><state id="PA"><county id="Allegheny"><city id="Pittsburgh">
                 <neighborhood id="Oakland" zipcode="15213">
                   <available-spaces>8</available-spaces>
                   <block id="1">
                     <parkingSpace id="1"><available>yes</available><price>25</price></parkingSpace>
                     <parkingSpace id="2"><available>no</available><price>0</price></parkingSpace>
                   </block>
                   <block id="2">
                     <parkingSpace id="1"><available>yes</available><price>0</price></parkingSpace>
                   </block>
                 </neighborhood>
                 <neighborhood id="Shadyside">
                   <block id="1">
                     <parkingSpace id="1"><available>yes</available><price>25</price></parkingSpace>
                   </block>
                 </neighborhood>
               </city></county></state></usRegion>"#,
        )
        .unwrap()
    }

    fn pgh() -> IdPath {
        IdPath::from_pairs([
            ("usRegion", "NE"),
            ("state", "PA"),
            ("county", "Allegheny"),
            ("city", "Pittsburgh"),
        ])
    }

    const Q_PAPER: &str = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
        /city[@id='Pittsburgh']/neighborhood[@id='Oakland' or @id='Shadyside']\
        /block[@id='1']/parkingSpace[available='yes']";

    fn plan(q: &str) -> QueryPlan {
        let e = sensorxpath::parse(q).unwrap();
        plan_query(&e, &Service::parking()).unwrap()
    }

    #[test]
    fn plan_shapes() {
        let p = plan(Q_PAPER);
        assert_eq!(p.dist_steps.len(), 7);
        assert_eq!(p.suffix_len, 0);
        assert_eq!(p.nesting_depth, 0);
        assert!(p.fetch_subtree_at.is_none());
        assert!(matches!(&p.dist_steps[6].kind, StepKind::Tag(t) if t == "parkingSpace"));
        assert_eq!(p.dist_steps[6].prest.len(), 1); // available='yes'
        assert!(p.dist_steps[6].pid.is_empty());
    }

    #[test]
    fn plan_detects_nesting_and_anchor() {
        let p = plan(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
             /neighborhood[@id='O']/block[@id='1']\
             /parkingSpace[not(price > ../parkingSpace/price)]",
        );
        assert_eq!(p.nesting_depth, 1);
        // `..` pulls the anchor from parkingSpace (6) to block (5).
        assert_eq!(p.fetch_subtree_at, Some(5));
    }

    #[test]
    fn plan_suffix_split() {
        let p = plan("/usRegion[@id='NE']/state[@id='PA']//parkingSpace/available");
        // usRegion, state, //, parkingSpace are distribution; available is suffix.
        assert_eq!(p.dist_steps.len(), 4);
        assert_eq!(p.suffix_len, 1);
        assert!(matches!(p.dist_steps[2].kind, StepKind::Descendant));
    }

    #[test]
    fn plan_rejects_relative_and_non_path() {
        let svc = Service::parking();
        let e = sensorxpath::parse("a/b").unwrap();
        assert!(plan_query(&e, &svc).is_err());
        let e2 = sensorxpath::parse("count(/usRegion)").unwrap();
        assert!(plan_query(&e2, &svc).is_err());
    }

    fn owned_all() -> SiteDatabase {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &IdPath::from_pairs([("usRegion", "NE")]), true)
            .unwrap();
        db
    }

    #[test]
    fn qeg_complete_data_produces_no_asks() {
        let db = owned_all();
        let p = plan(Q_PAPER);
        let f = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let prog = f.create(&p).unwrap();
        let out = prog.execute(&db, 0.0).unwrap();
        assert!(out.is_complete(), "asks: {:?}", out.asks);
        // And extraction matches the expected two available spaces.
        let matched = matched_final_paths(&p, &db, 0.0).unwrap();
        assert_eq!(matched.len(), 2);
        let answer = extract_user_answer(&p, &db, 0.0).unwrap();
        let root = answer.root().unwrap();
        assert_eq!(answer.child_elements(root).count(), 2);
        for c in answer.child_elements(root) {
            assert_eq!(answer.name(c), "parkingSpace");
            assert!(answer.attr(c, "status").is_none());
        }
    }

    #[test]
    fn qeg_detects_missing_neighborhood() {
        // Site owns Oakland subtree only; Shadyside is an incomplete stub.
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &pgh().child("neighborhood", "Oakland"), true)
            .unwrap();
        let p = plan(Q_PAPER);
        let f = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let prog = f.create(&p).unwrap();
        let out = prog.execute(&db, 0.0).unwrap();
        assert_eq!(out.asks.len(), 1);
        let ask = &out.asks[0];
        assert_eq!(ask.kind, AskKind::Query);
        assert_eq!(ask.path, pgh().child("neighborhood", "Shadyside"));
        assert_eq!(ask.step, 5);
        // Generalized subquery keeps only id predicates downstream.
        let sub = generalized_subquery(&p, ask);
        assert_eq!(
            sub,
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
             /city[@id='Pittsburgh']/neighborhood[@id='Shadyside']/block[@id = '1']/parkingSpace"
        );
    }

    #[test]
    fn qeg_id_mismatch_prunes_subqueries() {
        // Owning only Oakland, a query for Oakland alone needs no gather.
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &pgh().child("neighborhood", "Oakland"), true)
            .unwrap();
        let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
                 /city[@id='Pittsburgh']/neighborhood[@id='Oakland']\
                 /block[@id='2']/parkingSpace";
        let p = plan(q);
        let f = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let out = f.create(&p).unwrap().execute(&db, 0.0).unwrap();
        assert!(out.is_complete());
        let matched = matched_final_paths(&p, &db, 0.0).unwrap();
        assert_eq!(matched.len(), 1);
    }

    #[test]
    fn qeg_descendant_query() {
        let db = owned_all();
        let p = plan("/usRegion[@id='NE']//parkingSpace[price='0']");
        let f = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let out = f.create(&p).unwrap().execute(&db, 0.0).unwrap();
        assert!(out.is_complete(), "asks: {:?}", out.asks);
        let matched = matched_final_paths(&p, &db, 0.0).unwrap();
        assert_eq!(matched.len(), 2);
    }

    #[test]
    fn qeg_descendant_with_missing_data_asks() {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &pgh().child("neighborhood", "Oakland"), true)
            .unwrap();
        let p = plan("/usRegion[@id='NE']//parkingSpace[price='0']");
        let f = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let out = f.create(&p).unwrap().execute(&db, 0.0).unwrap();
        assert!(!out.is_complete());
        // Shadyside (incomplete) must be asked for.
        assert!(out
            .asks
            .iter()
            .any(|a| a.path == pgh().child("neighborhood", "Shadyside")));
    }

    #[test]
    fn qeg_nested_predicate_gate() {
        // Cache has Oakland id-complete only: the min-price query (nesting
        // depth 1, anchored at block) must fetch the block subtree.
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &pgh(), false).unwrap();
        // city owned, neighborhoods incomplete.
        let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
                 /city[@id='Pittsburgh']/neighborhood[@id='Oakland']/block[@id='1']\
                 /parkingSpace[not(price > ../parkingSpace/price)]";
        let p = plan(q);
        assert_eq!(p.fetch_subtree_at, Some(5));
        let f = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let out = f.create(&p).unwrap().execute(&db, 0.0).unwrap();
        assert!(!out.is_complete());
        // With the whole document owned, the same query runs locally.
        let db_full = owned_all();
        let out2 = f.create(&p).unwrap().execute(&db_full, 0.0).unwrap();
        assert!(out2.is_complete(), "asks: {:?}", out2.asks);
        let matched = matched_final_paths(&p, &db_full, 0.0).unwrap();
        assert_eq!(matched.len(), 1); // the price-0 space in block 1
    }

    #[test]
    fn qeg_consistency_stale_ask() {
        // A cached (complete) block with an old timestamp fails the
        // freshness predicate and produces a Stale ask.
        let m = master();
        let mut owner = SiteDatabase::new(Service::parking());
        owner
            .bootstrap_owned(&m, &pgh().child("neighborhood", "Oakland"), true)
            .unwrap();
        let sp = pgh()
            .child("neighborhood", "Oakland")
            .child("block", "1")
            .child("parkingSpace", "1");
        owner
            .apply_update(&sp, &[("available".into(), "yes".into())], 100.0)
            .unwrap();
        let frag = owner
            .export_subtrees(&[pgh().child("neighborhood", "Oakland").child("block", "1")])
            .unwrap();
        let mut cache = SiteDatabase::new(Service::parking());
        cache.merge_fragment(&frag).unwrap();

        let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
                 /city[@id='Pittsburgh']/neighborhood[@id='Oakland']/block[@id='1']\
                 /parkingSpace[available='yes'][@timestamp > now() - 30]";
        let p = plan(q);
        let f = QegFactory::new(Service::parking(), XsltCreation::Fast);
        // Query posed at t=200: data from t=100 is 100s old, tolerance 30s.
        let out = f.create(&p).unwrap().execute(&cache, 200.0).unwrap();
        assert!(out.asks.iter().any(|a| a.kind == AskKind::Stale));
        // Fresh enough at t=110.
        let out2 = f.create(&p).unwrap().execute(&cache, 110.0).unwrap();
        assert!(out2.is_complete(), "asks: {:?}", out2.asks);
        // The owner itself ignores consistency predicates.
        let out3 = f.create(&p).unwrap().execute(&owner, 200.0).unwrap();
        assert!(out3.is_complete(), "asks: {:?}", out3.asks);
    }

    #[test]
    fn naive_and_fast_agree() {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &pgh().child("neighborhood", "Oakland"), true)
            .unwrap();
        let p = plan(Q_PAPER);
        let naive = QegFactory::new(Service::parking(), XsltCreation::Naive);
        let fast = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let o1 = naive.create(&p).unwrap().execute(&db, 0.0).unwrap();
        let o2 = fast.create(&p).unwrap().execute(&db, 0.0).unwrap();
        assert_eq!(o1.asks, o2.asks);
        assert!(sensorxml::unordered_eq(
            &o1.output,
            o1.output.root().unwrap(),
            &o2.output,
            o2.output.root().unwrap()
        ));
    }

    #[test]
    fn fast_skeleton_cache_hits_on_same_shape() {
        let fast = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let p1 = plan(Q_PAPER);
        // Same shape, different ids/predicates.
        let p2 = plan(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
             /city[@id='Pittsburgh']/neighborhood[@id='Oakland' or @id='Etna']\
             /block[@id='2']/parkingSpace[available='no']",
        );
        fast.create(&p1).unwrap();
        assert_eq!(fast.skeleton_hits(), 0);
        assert_eq!(fast.skeleton_misses(), 1);
        fast.create(&p2).unwrap();
        assert_eq!(fast.skeleton_hits(), 1);
        // Different shape misses.
        let p3 = plan("/usRegion[@id='NE']//parkingSpace");
        fast.create(&p3).unwrap();
        assert_eq!(fast.skeleton_hits(), 1);
        assert_eq!(fast.skeleton_misses(), 2);
        assert_eq!(fast.skeleton_evictions(), 0);
        // And the patched program still behaves correctly.
        let db = owned_all();
        let out = fast.create(&p2).unwrap().execute(&db, 0.0).unwrap();
        assert!(out.is_complete());
        let matched = matched_final_paths(&p2, &db, 0.0).unwrap();
        assert!(matched.is_empty()); // Oakland block 2's only space is available
    }

    #[test]
    fn skeleton_cache_lru_bounds_shapes() {
        let fast = QegFactory::new(Service::parking(), XsltCreation::Fast);
        let tags = ["usRegion", "state", "county", "city", "neighborhood", "block"];
        let ids = ["NE", "PA", "Allegheny", "Pittsburgh", "Oakland", "1"];
        // Distinct shapes: which steps carry a rest predicate is part of the
        // shape key, as is `ignore_complete` — 2^7 combinations available.
        let shape_query = |i: usize| {
            let mut q = String::new();
            for j in 0..tags.len() {
                q.push_str(&format!("/{}[@id='{}']", tags[j], ids[j]));
                if i & (1 << j) != 0 {
                    q.push_str("[price > 0]");
                }
            }
            q.push_str("/parkingSpace");
            q
        };
        let n = SKELETON_CACHE_CAP + 8;
        for i in 0..n {
            fast.create_with(&plan(&shape_query(i)), i >= 64).unwrap();
        }
        assert_eq!(fast.created(), n as u64);
        assert_eq!(fast.skeleton_misses(), n as u64);
        assert_eq!(fast.skeleton_hits(), 0);
        assert_eq!(fast.skeleton_cache_len(), SKELETON_CACHE_CAP);
        assert_eq!(fast.skeleton_evictions(), (n - SKELETON_CACHE_CAP) as u64);
        // The newest shape is still resident: re-creating it hits...
        fast.create_with(&plan(&shape_query(n - 1)), true).unwrap();
        assert_eq!(fast.skeleton_hits(), 1);
        // ...while the oldest was evicted: re-creating it misses again.
        fast.create_with(&plan(&shape_query(0)), false).unwrap();
        assert_eq!(fast.skeleton_misses(), n as u64 + 1);
    }

    #[test]
    fn strip_consistency_removes_only_freshness() {
        let e = sensorxpath::parse(
            "/a[@id='1']/b[@timestamp > now() - 30][price > 0]",
        )
        .unwrap();
        let stripped = strip_consistency(&e, "timestamp");
        let text = stripped.to_string();
        assert!(!text.contains("now()"));
        assert!(text.contains("price > 0"));
        assert!(text.contains("@id = '1'"));
    }

    #[test]
    fn extract_asks_reconstructs_paths() {
        let out = parse(
            r#"<result><usRegion id="NE"><state id="PA">
                 <iris-ask tag="county" id="Allegheny" kind="query" step="2"/>
               </state></usRegion></result>"#,
        )
        .unwrap();
        let asks = extract_asks(&out).unwrap();
        assert_eq!(asks.len(), 1);
        assert_eq!(
            asks[0].path,
            IdPath::from_pairs([("usRegion", "NE"), ("state", "PA"), ("county", "Allegheny")])
        );
        assert_eq!(asks[0].step, 2);
    }
}
