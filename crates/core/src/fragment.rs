//! Per-site fragment databases: statuses, invariants, merging, eviction.
//!
//! Each site stores a *fragment* of the single logical document. The data
//! stored is a union of local informations / local ID informations
//! (Definition 3.2) subject to the invariants of §3.2:
//!
//! * **I1** — the site stores the local information of every node it owns;
//! * **I2** — if (at least) the ID of a node is stored, the local ID
//!   information of its parent is stored too (hence of all ancestors).
//!
//! Each IDable node carries a `status` attribute — `owned`, `complete`,
//! `id-complete` or `incomplete` — summarizing what the site knows about
//! it. Cached fragments arriving from other sites are merged under the
//! cache conditions **C1/C2** (§3.3), which are shape-identical to I1/I2,
//! so merging preserves the invariants by construction.

use std::sync::Arc;

use sensorxml::{Document, NodeId};

use crate::error::{CoreError, CoreResult};
use crate::idable::{copy_local_id_information, IdPath, STATUS_ATTR};
use crate::service::Service;
use crate::storage::{RecoveredState, RecoveryStats, SiteWal, WalRecord};

/// Knowledge level for an IDable node at a site (§3.2).
///
/// Ordering is by information content: `Incomplete < IdComplete < Complete
/// < Owned`; merging never downgrades.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Status {
    /// Only the node's ID is stored.
    Incomplete,
    /// Local ID information stored (own ID + all IDable children IDs), but
    /// not the full local information.
    IdComplete,
    /// Full local information stored, but the node is owned elsewhere
    /// (i.e. this is a cache copy).
    Complete,
    /// This site owns the node (and by I1 stores its local information).
    Owned,
}

impl Status {
    /// The attribute value used in the database.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Incomplete => "incomplete",
            Status::IdComplete => "id-complete",
            Status::Complete => "complete",
            Status::Owned => "owned",
        }
    }

    /// Parses an attribute value.
    pub fn parse(s: &str) -> Option<Status> {
        match s {
            "incomplete" => Some(Status::Incomplete),
            "id-complete" => Some(Status::IdComplete),
            "complete" => Some(Status::Complete),
            "owned" => Some(Status::Owned),
            _ => None,
        }
    }

    /// True if the full local information of the node is present
    /// (`complete` or `owned`).
    pub fn has_local_info(self) -> bool {
        self >= Status::Complete
    }
}

/// A site's fragment database.
#[derive(Debug)]
pub struct SiteDatabase {
    service: Arc<Service>,
    doc: Document,
    /// Write-ahead log handle; when attached, every mutation method
    /// appends a [`WalRecord`] after it succeeds.
    wal: Option<Arc<SiteWal>>,
}

/// Clones never carry the durability handle: the agent clones the
/// database into ephemeral scratch overlays for query evaluation, and
/// those merges must not reach the owner's log.
impl Clone for SiteDatabase {
    fn clone(&self) -> SiteDatabase {
        SiteDatabase { service: self.service.clone(), doc: self.doc.clone(), wal: None }
    }
}

impl SiteDatabase {
    /// An empty database for `service`.
    pub fn new(service: Arc<Service>) -> SiteDatabase {
        SiteDatabase { service, doc: Document::new(), wal: None }
    }

    // ------------------------------------------------------------------
    // Durability (core::storage)
    // ------------------------------------------------------------------

    /// Attaches a write-ahead log: from now on every successful mutation
    /// appends a record to it. The caller should snapshot right after
    /// attaching (state present *before* the log opened is not in it).
    pub fn attach_wal(&mut self, wal: Arc<SiteWal>) {
        self.wal = Some(wal);
    }

    /// Detaches and returns the log handle, if any.
    pub fn detach_wal(&mut self) -> Option<Arc<SiteWal>> {
        self.wal.take()
    }

    /// The attached log handle, if any.
    pub fn wal(&self) -> Option<&Arc<SiteWal>> {
        self.wal.as_ref()
    }

    fn log(&self, rec: WalRecord) {
        if let Some(w) = &self.wal {
            w.append(&rec);
        }
    }

    fn mark_dirty(&self) {
        if let Some(w) = &self.wal {
            w.mark_dirty();
        }
    }

    /// The full database state, serialized with internal status/timestamp
    /// attributes — the payload of a snapshot segment. The empty database
    /// serializes to `""`.
    pub fn snapshot_xml(&self) -> String {
        self.doc
            .root()
            .map(|r| sensorxml::serialize(&self.doc, r))
            .unwrap_or_default()
    }

    /// A canonical digest of the database state (attribute-order
    /// independent); two databases with equal digests hold identical
    /// fragments. Used by the compaction proptests for state equality.
    pub fn state_digest(&self) -> String {
        self.doc
            .root()
            .map(|r| sensorxml::canonical_string(&self.doc, r))
            .unwrap_or_default()
    }

    /// Rebuilds this (empty) database from recovered durable state: the
    /// snapshot becomes the base document and the WAL tail replays through
    /// the same mutation methods that produced it. Logging is suppressed
    /// during replay; on success the recovery is reported to the attached
    /// wal (if any).
    pub fn restore_from(&mut self, recovered: &RecoveredState) -> CoreResult<RecoveryStats> {
        if self.doc.root().is_some() {
            return Err(CoreError::Storage(
                "restore_from requires an empty database".into(),
            ));
        }
        let started = std::time::Instant::now();
        let wal = self.wal.take(); // suppress re-logging while replaying
        let mut stats = RecoveryStats {
            snapshot_loaded: false,
            records_replayed: 0,
            torn_bytes: recovered.torn_bytes,
            replay_ms: 0.0,
        };
        let result = (|| -> CoreResult<()> {
            if let Some(xml) = &recovered.snapshot_xml {
                if !xml.is_empty() {
                    self.doc = sensorxml::parse(xml)?;
                }
                stats.snapshot_loaded = true;
            }
            for rec in &recovered.records {
                match rec {
                    WalRecord::Update { path, fields, ts } => {
                        self.apply_update(path, fields, *ts)?;
                    }
                    WalRecord::Merge { fragment_xml } => {
                        let frag = sensorxml::parse(fragment_xml)?;
                        self.merge_fragment(&frag)?;
                    }
                    WalRecord::Evict { path } => self.evict(path)?,
                    WalRecord::SetStatus { path, status, subtree } => {
                        if *subtree {
                            self.set_status_subtree(path, *status)?;
                        } else {
                            self.set_status(path, *status)?;
                        }
                    }
                    WalRecord::Snapshot { .. } => {
                        return Err(CoreError::Storage(
                            "snapshot record inside a WAL segment".into(),
                        ));
                    }
                }
                stats.records_replayed += 1;
            }
            Ok(())
        })();
        self.wal = wal;
        result?;
        stats.replay_ms = started.elapsed().as_secs_f64() * 1e3;
        if let Some(w) = &self.wal {
            w.note_recovery(&stats);
        }
        Ok(stats)
    }

    /// The underlying fragment document (with `status`/timestamp
    /// attributes).
    pub fn doc(&self) -> &Document {
        &self.doc
    }

    /// Mutable access for in-crate surgery (schema changes); invariants
    /// remain the caller's responsibility. Raw surgery is not expressible
    /// as a WAL record, so the log is marked dirty: the next quiescent
    /// point snapshots the whole state instead.
    pub(crate) fn doc_mut(&mut self) -> &mut Document {
        self.mark_dirty();
        &mut self.doc
    }

    /// The service this database belongs to.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// The status of the node at `path` (`None` if the node is not stored).
    pub fn status_at(&self, path: &IdPath) -> Option<Status> {
        let n = path.resolve(&self.doc)?;
        self.status_of(n)
    }

    /// The status of a stored node (climbing to the nearest IDable ancestor
    /// for non-IDable nodes, per §3.2).
    pub fn status_of(&self, node: NodeId) -> Option<Status> {
        let mut cur = Some(node);
        while let Some(n) = cur {
            if let Some(s) = self.doc.attr(n, STATUS_ATTR) {
                return Status::parse(s);
            }
            cur = self.doc.parent(n);
        }
        None
    }

    /// Sets the status attribute of the node at `path`.
    pub fn set_status(&mut self, path: &IdPath, status: Status) -> CoreResult<()> {
        let n = path
            .resolve(&self.doc)
            .ok_or_else(|| CoreError::Protocol(format!("no node at {path}")))?;
        self.doc.set_attr(n, STATUS_ATTR, status.as_str());
        self.log(WalRecord::SetStatus { path: path.clone(), status, subtree: false });
        Ok(())
    }

    /// Sets the status of the node at `path` and every stored IDable
    /// descendant (used by ownership transfer, where whole subtrees change
    /// hands atomically).
    pub fn set_status_subtree(&mut self, path: &IdPath, status: Status) -> CoreResult<()> {
        let n = path
            .resolve(&self.doc)
            .ok_or_else(|| CoreError::Protocol(format!("no node at {path}")))?;
        let mut nodes: Vec<NodeId> = vec![n];
        nodes.extend(self.doc.descendants(n).filter(|&d| {
            self.doc.is_element(d) && self.doc.attr(d, STATUS_ATTR).is_some()
        }));
        for node in nodes {
            // Only nodes whose local information is actually stored may
            // claim `owned`/`complete`; stubs and ID-only nodes keep their
            // weaker status (claiming more would violate I1's meaning).
            let cur = self
                .doc
                .attr(node, STATUS_ATTR)
                .and_then(Status::parse)
                .unwrap_or(Status::Incomplete);
            if status >= Status::Complete && cur < Status::Complete {
                continue;
            }
            self.doc.set_attr(node, STATUS_ATTR, status.as_str());
        }
        self.log(WalRecord::SetStatus { path: path.clone(), status, subtree: true });
        Ok(())
    }

    /// True if a node is stored at `path` (any status).
    pub fn contains(&self, path: &IdPath) -> bool {
        path.resolve(&self.doc).is_some()
    }

    /// Freshness timestamp of the node at `path` (0.0 when absent).
    pub fn timestamp_at(&self, path: &IdPath) -> f64 {
        path.resolve(&self.doc)
            .and_then(|n| self.doc.attr(n, &self.service.timestamp_field))
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.0)
    }

    // ------------------------------------------------------------------
    // Bootstrapping from a master document
    // ------------------------------------------------------------------

    /// Installs ownership of the node at `path` (and **all** its IDable
    /// descendants when `subtree` is true), copying data from the master
    /// document. Ancestors are stored as local ID information
    /// (`id-complete`), satisfying I1 + I2.
    pub fn bootstrap_owned(
        &mut self,
        master: &Document,
        path: &IdPath,
        subtree: bool,
    ) -> CoreResult<()> {
        let target = path.resolve(master).ok_or_else(|| {
            CoreError::Protocol(format!("master document has no node at {path}"))
        })?;
        // Ensure the ancestor ID chain (with sibling IDs) exists.
        self.ensure_ancestor_chain(master, path)?;
        // Copy the node itself. Bootstrapping is setup-time state the WAL
        // cannot express; the dirty flag forces a snapshot to capture it.
        self.install_from_master(master, target, path, subtree, Status::Owned)?;
        self.mark_dirty();
        Ok(())
    }

    /// Caches the node at `path` from the master document with status
    /// `complete` (test/setup convenience; production caching goes through
    /// [`SiteDatabase::merge_fragment`]).
    pub fn bootstrap_cached(
        &mut self,
        master: &Document,
        path: &IdPath,
        subtree: bool,
    ) -> CoreResult<()> {
        let target = path.resolve(master).ok_or_else(|| {
            CoreError::Protocol(format!("master document has no node at {path}"))
        })?;
        self.ensure_ancestor_chain(master, path)?;
        self.install_from_master(master, target, path, subtree, Status::Complete)?;
        self.mark_dirty();
        Ok(())
    }

    /// Makes sure every strict ancestor of `path` is present with at least
    /// local ID information (status `id-complete`), copying IDs from the
    /// master (I2).
    fn ensure_ancestor_chain(&mut self, master: &Document, path: &IdPath) -> CoreResult<()> {
        let mut cur = IdPath::root();
        for (tag, id) in &path.segments()[..path.len().saturating_sub(1)] {
            cur = cur.child(tag.clone(), id.clone());
            let m_node = cur.resolve(master).ok_or_else(|| {
                CoreError::Protocol(format!("master document has no node at {cur}"))
            })?;
            match cur.resolve(&self.doc) {
                Some(existing) => {
                    // Upgrade incomplete to id-complete by adding child stubs.
                    let st = self.status_of(existing).unwrap_or(Status::Incomplete);
                    if st < Status::IdComplete {
                        self.add_missing_id_stubs(master, m_node, existing);
                        self.doc
                            .set_attr(existing, STATUS_ATTR, Status::IdComplete.as_str());
                    }
                }
                None => {
                    let mut tmp = Document::new();
                    let li = copy_local_id_information(master, m_node, &self.service.schema, &mut tmp);
                    tmp.set_attr(li, STATUS_ATTR, Status::IdComplete.as_str());
                    for c in tmp.child_elements(li).collect::<Vec<_>>() {
                        tmp.set_attr(c, STATUS_ATTR, Status::Incomplete.as_str());
                    }
                    self.graft(&tmp, li, &cur)?;
                }
            }
        }
        Ok(())
    }

    /// Adds ID stubs (status `incomplete`) for IDable children of
    /// `m_node` (in master) missing under `ours`.
    fn add_missing_id_stubs(&mut self, master: &Document, m_node: NodeId, ours: NodeId) {
        let kids: Vec<NodeId> = master
            .child_elements(m_node)
            .filter(|&c| self.service.schema.is_idable(master.name(c)))
            .collect();
        for k in kids {
            let tag = master.name(k).to_string();
            let Some(id) = master.attr(k, "id").map(str::to_string) else {
                continue;
            };
            if self.doc.child_by_name_id(ours, &tag, &id).is_none() {
                let stub = self.doc.create_element(tag);
                self.doc.set_attr(stub, "id", id);
                self.doc
                    .set_attr(stub, STATUS_ATTR, Status::Incomplete.as_str());
                self.doc.append_child(ours, stub);
            }
        }
    }

    /// Copies `m_node` (at `path`) from master into this database with the
    /// given status, recursing over IDable descendants if `subtree`.
    fn install_from_master(
        &mut self,
        master: &Document,
        m_node: NodeId,
        path: &IdPath,
        subtree: bool,
        status: Status,
    ) -> CoreResult<()> {
        // Build the local information in a scratch doc.
        let mut tmp = Document::new();
        let li = crate::idable::copy_local_information(
            master,
            m_node,
            &self.service.schema,
            &mut tmp,
        );
        tmp.set_attr(li, STATUS_ATTR, status.as_str());
        // Bootstrap data is "created at the epoch": stamping it lets
        // freshness predicates evaluate deterministically (missing
        // timestamps would read as never-fresh and force spurious
        // owner refreshes).
        let ts_field = self.service.timestamp_field.clone();
        if tmp.attr(li, &ts_field).is_none() {
            tmp.set_attr(li, ts_field, "0");
        }
        for c in tmp.child_elements(li).collect::<Vec<_>>() {
            if self.service.schema.is_idable(tmp.name(c)) {
                tmp.set_attr(c, STATUS_ATTR, Status::Incomplete.as_str());
            }
        }
        self.graft(&tmp, li, path)?;
        // The merge path of `graft` clamps foreign `owned` claims; bootstrap
        // is the one legitimate source of ownership, so restamp explicitly.
        let installed = path
            .resolve(&self.doc)
            .expect("freshly grafted node resolves");
        self.doc.set_attr(installed, STATUS_ATTR, status.as_str());
        if subtree {
            let kids: Vec<NodeId> = master
                .child_elements(m_node)
                .filter(|&c| self.service.schema.is_idable(master.name(c)))
                .collect();
            for k in kids {
                let Some(id) = master.attr(k, "id").map(str::to_string) else {
                    continue;
                };
                let kid_path = path.child(master.name(k).to_string(), id);
                self.install_from_master(master, k, &kid_path, true, status)?;
            }
        }
        Ok(())
    }

    /// Replaces (or inserts) the node at `path` with the subtree `src_root`
    /// from `src`, keeping a higher existing status and merging children
    /// we already know more about.
    fn graft(&mut self, src: &Document, src_root: NodeId, path: &IdPath) -> CoreResult<()> {
        match path.parent() {
            None => Err(CoreError::Protocol("cannot graft at document node".into())),
            Some(parent_path) if parent_path.is_empty() => {
                // Root element.
                match self.doc.root() {
                    None => {
                        let copied = src.deep_copy_into(src_root, &mut self.doc);
                        self.doc.set_root(copied)?;
                        Ok(())
                    }
                    Some(root) => {
                        self.merge_nodes(src, src_root, root);
                        Ok(())
                    }
                }
            }
            Some(parent_path) => {
                let parent = parent_path.resolve(&self.doc).ok_or_else(|| {
                    CoreError::Invariant(format!(
                        "graft at {path} without ancestor chain (violates I2)"
                    ))
                })?;
                let (tag, id) = path.last().expect("non-empty path");
                match self.doc.child_by_name_id(parent, tag, id) {
                    None => {
                        let copied = src.deep_copy_into(src_root, &mut self.doc);
                        self.doc.append_child(parent, copied);
                        Ok(())
                    }
                    Some(existing) => {
                        self.merge_nodes(src, src_root, existing);
                        Ok(())
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fragment merging (cache fill, C1/C2)
    // ------------------------------------------------------------------

    /// Merges an incoming wire fragment (rooted at the document root, every
    /// node carrying a `status` attribute from the receiver's perspective)
    /// into this database. This is the *cache fill* operation of §3.3: the
    /// fragment must satisfy C1/C2, which every fragment built by
    /// [`SiteDatabase::export_subtrees`] does.
    pub fn merge_fragment(&mut self, frag: &Document) -> CoreResult<()> {
        let Some(frag_root) = frag.root() else {
            return Ok(()); // empty fragment: nothing to merge
        };
        match self.doc.root() {
            None => {
                let copied = frag.deep_copy_into(frag_root, &mut self.doc);
                self.doc.set_root(copied)?;
            }
            Some(root) => {
                if self.doc.name(root) != frag.name(frag_root)
                    || self.doc.attr(root, "id") != frag.attr(frag_root, "id")
                {
                    return Err(CoreError::Invariant(
                        "fragment root does not match database root".into(),
                    ));
                }
                self.merge_nodes(frag, frag_root, root);
            }
        }
        if self.wal.is_some() {
            // Serialized only when a log is attached; replay re-merges the
            // identical fragment (merging is deterministic).
            self.log(WalRecord::Merge {
                fragment_xml: sensorxml::serialize(frag, frag_root),
            });
        }
        Ok(())
    }

    /// Recursive merge of `theirs` (in `frag`) into `ours`.
    fn merge_nodes(&mut self, frag: &Document, theirs: NodeId, ours: NodeId) {
        let our_status = self.status_of(ours).unwrap_or(Status::Incomplete);
        let their_status = frag
            .attr(theirs, STATUS_ATTR)
            .and_then(Status::parse)
            .unwrap_or(Status::Incomplete);
        // An exported fragment never claims `owned`; clamp defensively so a
        // buggy peer cannot steal ownership.
        let their_status = their_status.min(Status::Complete);

        let ts_field = self.service.timestamp_field.clone();
        let our_ts = self
            .doc
            .attr(ours, &ts_field)
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.0);
        let their_ts = frag
            .attr(theirs, &ts_field)
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(0.0);

        let take_their_content = their_status.has_local_info()
            && our_status != Status::Owned
            && (!our_status.has_local_info() || their_ts > our_ts);

        if take_their_content {
            // A fresher *complete* copy carries the authoritative child-ID
            // set: IDable children of ours that the sender no longer lists
            // were deleted at the owner (§4 schema changes) — drop them,
            // unless they hold owned data.
            let stale_children: Vec<NodeId> = self
                .doc
                .child_elements(ours)
                .filter(|&c| {
                    self.service.schema.is_idable(self.doc.name(c))
                        && !self.subtree_contains_owned(c)
                        && match self.doc.attr(c, "id") {
                            Some(id) => frag
                                .child_by_name_id(theirs, self.doc.name(c), id)
                                .is_none(),
                            None => false,
                        }
                })
                .collect();
            for c in stale_children {
                self.doc.detach(c);
            }
            // Replace our non-IDable children and scalar attributes with
            // theirs; IDable children are merged structurally below.
            let ours_non_idable: Vec<NodeId> = self
                .doc
                .children(ours)
                .iter()
                .copied()
                .filter(|&c| {
                    !(self.doc.is_element(c) && self.service.schema.is_idable(self.doc.name(c)))
                })
                .collect();
            for c in ours_non_idable {
                self.doc.detach(c);
            }
            for a in frag.attrs(theirs) {
                if a.name != STATUS_ATTR {
                    self.doc.set_attr(ours, a.name.clone(), a.value.clone());
                }
            }
            let their_kids: Vec<NodeId> = frag.children(theirs).to_vec();
            for c in their_kids {
                let is_idable_child =
                    frag.is_element(c) && self.service.schema.is_idable(frag.name(c));
                if !is_idable_child {
                    let copied = frag.deep_copy_into(c, &mut self.doc);
                    self.doc.append_child(ours, copied);
                }
            }
        }

        // Status: never downgrade.
        let new_status = our_status.max(their_status);
        self.doc.set_attr(ours, STATUS_ATTR, new_status.as_str());

        // Merge IDable children structurally.
        let their_idable: Vec<NodeId> = frag
            .child_elements(theirs)
            .filter(|&c| self.service.schema.is_idable(frag.name(c)))
            .collect();
        for tc in their_idable {
            let tag = frag.name(tc).to_string();
            let Some(id) = frag.attr(tc, "id").map(str::to_string) else {
                continue;
            };
            match self.doc.child_by_name_id(ours, &tag, &id) {
                Some(oc) => self.merge_nodes(frag, tc, oc),
                None => {
                    let copied = frag.deep_copy_into(tc, &mut self.doc);
                    self.doc.append_child(ours, copied);
                    self.clamp_owned(copied);
                }
            }
        }
    }

    /// Clamps any `owned` status in a freshly copied foreign subtree down
    /// to `complete`.
    fn clamp_owned(&mut self, node: NodeId) {
        if self.doc.attr(node, STATUS_ATTR) == Some(Status::Owned.as_str()) {
            self.doc
                .set_attr(node, STATUS_ATTR, Status::Complete.as_str());
        }
        let kids: Vec<NodeId> = self.doc.child_elements(node).collect();
        for k in kids {
            self.clamp_owned(k);
        }
    }

    // ------------------------------------------------------------------
    // Exporting fragments (subquery answers / migration)
    // ------------------------------------------------------------------

    /// Builds a wire fragment containing, for each target path: the target
    /// node's full stored subtree, plus the local ID information of every
    /// ancestor (status `id-complete`, children stubs `incomplete`) —
    /// the smallest superset satisfying C1/C2 (§3.3). `owned` statuses are
    /// exported as `complete`.
    pub fn export_subtrees(&self, targets: &[IdPath]) -> CoreResult<Document> {
        let mut out = Document::new();
        for path in targets {
            let node = path.resolve(&self.doc).ok_or_else(|| {
                CoreError::Protocol(format!("export: no node at {path}"))
            })?;
            // Ancestor chain.
            let mut out_cursor: Option<NodeId> = None;
            let mut cur_path = IdPath::root();
            for (i, (tag, id)) in path.segments().iter().enumerate() {
                cur_path = cur_path.child(tag.clone(), id.clone());
                let is_target = i + 1 == path.len();
                let db_node = cur_path
                    .resolve(&self.doc)
                    .expect("prefix of resolvable path resolves");
                if is_target {
                    let sub = self.export_subtree_node(node, &mut out);
                    let _ = db_node;
                    match out_cursor {
                        None => out.set_root(sub)?,
                        Some(parent) => {
                            // Replace a stub inserted by a previous target's
                            // ancestor chain, if any.
                            if let Some(stub) = out.child_by_name_id(parent, tag, id) {
                                out.detach(stub);
                            }
                            out.append_child(parent, sub);
                        }
                    }
                } else {
                    // Ensure ancestor with local ID information.
                    let existing = match out_cursor {
                        None => out.root().filter(|&r| {
                            out.name(r) == tag && out.attr(r, "id") == Some(id)
                        }),
                        Some(parent) => out.child_by_name_id(parent, tag, id),
                    };
                    let anc = match existing {
                        Some(e) => {
                            // A node first emitted as a bare sibling stub
                            // must be upgraded to full local ID information
                            // before children hang off it (C2).
                            if out.attr(e, STATUS_ATTR)
                                == Some(Status::Incomplete.as_str())
                            {
                                out.set_attr(e, STATUS_ATTR, Status::IdComplete.as_str());
                                let kids: Vec<(String, String)> = self
                                    .doc
                                    .child_elements(db_node)
                                    .filter(|&c| {
                                        self.service.schema.is_idable(self.doc.name(c))
                                    })
                                    .filter_map(|c| {
                                        self.doc.attr(c, "id").map(|i| {
                                            (self.doc.name(c).to_string(), i.to_string())
                                        })
                                    })
                                    .collect();
                                for (ktag, kid) in kids {
                                    if out.child_by_name_id(e, &ktag, &kid).is_none() {
                                        let stub = out.create_element(ktag);
                                        out.set_attr(stub, "id", kid);
                                        out.set_attr(
                                            stub,
                                            STATUS_ATTR,
                                            Status::Incomplete.as_str(),
                                        );
                                        out.append_child(e, stub);
                                    }
                                }
                            }
                            e
                        }
                        None => {
                            let mut tmp = Document::new();
                            let li = copy_local_id_information(
                                &self.doc,
                                db_node,
                                &self.service.schema,
                                &mut tmp,
                            );
                            tmp.set_attr(li, STATUS_ATTR, Status::IdComplete.as_str());
                            for c in tmp.child_elements(li).collect::<Vec<_>>() {
                                tmp.set_attr(c, STATUS_ATTR, Status::Incomplete.as_str());
                            }
                            let copied = tmp.deep_copy_into(li, &mut out);
                            match out_cursor {
                                None => out.set_root(copied)?,
                                Some(parent) => {
                                    if let Some(stub) = out.child_by_name_id(parent, tag, id) {
                                        out.detach(stub);
                                    }
                                    out.append_child(parent, copied);
                                }
                            }
                            copied
                        }
                    };
                    out_cursor = Some(anc);
                }
            }
        }
        Ok(out)
    }

    /// Coalesces a set of matched node paths upward: whenever *all* stored
    /// IDable children of a parent whose local information is present
    /// (status ≥ `complete`) are in the set, the children are replaced by
    /// the parent. Exporting the coalesced set ships whole cached units
    /// (the paper's subsumption observation, §3.3) — e.g. a subquery
    /// matching every parking space of a block ships the block subtree,
    /// which the receiver caches as a `complete` block.
    pub fn coalesce_covering_paths(&self, paths: &[IdPath]) -> Vec<IdPath> {
        use std::collections::{HashMap, HashSet};
        let mut set: HashSet<IdPath> = paths.iter().cloned().collect();
        loop {
            let mut by_parent: HashMap<IdPath, Vec<IdPath>> = HashMap::new();
            for p in &set {
                if let Some(parent) = p.parent() {
                    if !parent.is_empty() {
                        by_parent.entry(parent).or_default().push(p.clone());
                    }
                }
            }
            let mut changed = false;
            for (parent, kids) in by_parent {
                if set.contains(&parent) {
                    // Parent already in: drop the children.
                    for k in &kids {
                        set.remove(k);
                    }
                    changed = true;
                    continue;
                }
                let Some(pnode) = parent.resolve(&self.doc) else { continue };
                let Some(pstatus) = self.status_of(pnode) else { continue };
                if !pstatus.has_local_info() {
                    continue;
                }
                let stored: usize = self
                    .doc
                    .child_elements(pnode)
                    .filter(|&c| self.service.schema.is_idable(self.doc.name(c)))
                    .count();
                if stored > 0 && kids.len() == stored {
                    for k in &kids {
                        set.remove(k);
                    }
                    set.insert(parent);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut out: Vec<IdPath> = set.into_iter().collect();
        out.sort();
        out
    }

    /// Builds a wire fragment carrying only the *local information* of the
    /// node at `path` (plus ancestor ID chains): the smallest C1/C2 unit
    /// proving which IDable children exist. Used as negative evidence when
    /// a subquery matches nothing — the requester learns that a cached
    /// child was deleted.
    pub fn export_local_info(&self, path: &IdPath) -> CoreResult<Document> {
        let node = path
            .resolve(&self.doc)
            .ok_or_else(|| CoreError::Protocol(format!("export: no node at {path}")))?;
        let mut out = Document::new();
        let mut cursor: Option<NodeId> = None;
        for (i, (tag, id)) in path.segments().iter().enumerate() {
            let sub = IdPath::from_pairs(
                path.segments()[..=i]
                    .iter()
                    .map(|(t, v)| (t.clone(), v.clone())),
            );
            let db_node = sub.resolve(&self.doc).expect("prefix resolves");
            let is_target = i + 1 == path.len();
            let copied = if is_target {
                let li = crate::idable::copy_local_information(
                    &self.doc,
                    node,
                    &self.service.schema,
                    &mut out,
                );
                // The claimed status must reflect what we store.
                let st = self.status_of(node).unwrap_or(Status::Incomplete);
                out.set_attr(li, STATUS_ATTR, st.min(Status::Complete).as_str());
                for c in out.child_elements(li).collect::<Vec<_>>() {
                    if self.service.schema.is_idable(out.name(c)) {
                        out.set_attr(c, STATUS_ATTR, Status::Incomplete.as_str());
                    }
                }
                li
            } else {
                let mut tmp = Document::new();
                let li = copy_local_id_information(
                    &self.doc,
                    db_node,
                    &self.service.schema,
                    &mut tmp,
                );
                tmp.set_attr(li, STATUS_ATTR, Status::IdComplete.as_str());
                for c in tmp.child_elements(li).collect::<Vec<_>>() {
                    tmp.set_attr(c, STATUS_ATTR, Status::Incomplete.as_str());
                }
                tmp.deep_copy_into(li, &mut out)
            };
            match cursor {
                None => out.set_root(copied)?,
                Some(parent) => {
                    if let Some(stub) = out.child_by_name_id(parent, tag, id) {
                        out.detach(stub);
                    }
                    out.append_child(parent, copied);
                }
            }
            cursor = Some(copied);
        }
        Ok(out)
    }

    /// Deep copy of a stored node into `dst` with `owned` clamped to
    /// `complete`.
    fn export_subtree_node(&self, node: NodeId, dst: &mut Document) -> NodeId {
        let copied = self.doc.deep_copy_into(node, dst);
        fn clamp(doc: &mut Document, n: NodeId) {
            if doc.attr(n, STATUS_ATTR) == Some(Status::Owned.as_str()) {
                doc.set_attr(n, STATUS_ATTR, Status::Complete.as_str());
            }
            let kids: Vec<NodeId> = doc.child_elements(n).collect();
            for k in kids {
                clamp(doc, k);
            }
        }
        clamp(dst, copied);
        copied
    }

    // ------------------------------------------------------------------
    // Updates and eviction
    // ------------------------------------------------------------------

    /// Applies a sensor update at `path`: sets each `(field, value)` child
    /// element's text and stamps the node's timestamp. The caller (the
    /// organizing agent) is responsible for only applying updates to owned
    /// nodes.
    pub fn apply_update(
        &mut self,
        path: &IdPath,
        fields: &[(String, String)],
        ts: f64,
    ) -> CoreResult<()> {
        let node = path
            .resolve(&self.doc)
            .ok_or_else(|| CoreError::Protocol(format!("update: no node at {path}")))?;
        for (field, value) in fields {
            let child = match self.doc.child_by_name(node, field) {
                Some(c) => c,
                None => {
                    let c = self.doc.create_element(field.clone());
                    self.doc.append_child(node, c);
                    c
                }
            };
            self.doc.set_text_content(child, value.clone());
        }
        let ts_field = self.service.timestamp_field.clone();
        self.doc.set_attr(node, ts_field, format_ts(ts));
        self.log(WalRecord::Update { path: path.clone(), fields: fields.to_vec(), ts });
        Ok(())
    }

    /// Evicts the cached local information at `path`, demoting the node to
    /// an `incomplete` ID stub (its subtree is dropped, as C2 requires).
    /// Refuses when the node or any descendant is owned.
    pub fn evict(&mut self, path: &IdPath) -> CoreResult<()> {
        let node = path
            .resolve(&self.doc)
            .ok_or_else(|| CoreError::Protocol(format!("evict: no node at {path}")))?;
        if self.subtree_contains_owned(node) {
            return Err(CoreError::Invariant(format!(
                "cannot evict {path}: subtree contains owned data (I1)"
            )));
        }
        let kids: Vec<NodeId> = self.doc.children(node).to_vec();
        for k in kids {
            self.doc.detach(k);
        }
        let keep_id = self.doc.attr(node, "id").map(str::to_string);
        let attrs: Vec<String> = self.doc.attrs(node).iter().map(|a| a.name.clone()).collect();
        for a in attrs {
            self.doc.remove_attr(node, &a);
        }
        if let Some(id) = keep_id {
            self.doc.set_attr(node, "id", id);
        }
        self.doc
            .set_attr(node, STATUS_ATTR, Status::Incomplete.as_str());
        self.log(WalRecord::Evict { path: path.clone() });
        Ok(())
    }

    fn subtree_contains_owned(&self, node: NodeId) -> bool {
        if self.doc.attr(node, STATUS_ATTR) == Some(Status::Owned.as_str()) {
            return true;
        }
        self.doc
            .descendants(node)
            .any(|d| self.doc.attr(d, STATUS_ATTR) == Some(Status::Owned.as_str()))
    }

    /// Compacts the arena after heavy churn; all outstanding [`NodeId`]s
    /// are invalidated (paths still resolve).
    pub fn compact(&mut self) -> usize {
        self.doc.compact()
    }

    /// Storage cost of the cached unit rooted at `path`, in the units the
    /// cache budget is denominated in: stored nodes and approximate bytes
    /// (tag names, attributes, text, plus per-node overhead). Walking the
    /// unit is O(unit size) — the same order as the merge that created it,
    /// so admission-time accounting never changes a code path's complexity
    /// class. Returns `None` when no node is stored at `path`.
    pub fn unit_cost(&self, path: &IdPath) -> Option<UnitCost> {
        let node = path.resolve(&self.doc)?;
        let mut cost = UnitCost { nodes: 1, bytes: self.node_bytes(node) };
        for d in self.doc.descendants(node) {
            cost.nodes += 1;
            cost.bytes += self.node_bytes(d);
        }
        Some(cost)
    }

    fn node_bytes(&self, node: NodeId) -> usize {
        // Arena slot + child-vec overhead, then the actual payload.
        let mut b = 16 + self.doc.name(node).len();
        for a in self.doc.attrs(node) {
            b += a.name.len() + a.value.len() + 2;
        }
        if let Some(t) = self.doc.text(node) {
            b += t.len();
        }
        b
    }

    // ------------------------------------------------------------------
    // Invariant checking (used heavily by tests)
    // ------------------------------------------------------------------

    /// Verifies the structural invariants of §3.2 against the master
    /// document:
    ///
    /// * every stored IDable node carries a valid status attribute (I2
    ///   implies the parent chain carries them too);
    /// * a node with status ≥ `id-complete` stores exactly the master's set
    ///   of IDable children (the definition of local ID information);
    /// * a node with status `incomplete` stores no children;
    /// * every stored node exists in the master document (no phantoms).
    pub fn check_invariants(&self, master: &Document) -> CoreResult<()> {
        // The sibling index must agree with the child lists after every
        // mutation path (merge, eviction, schema change); a divergence here
        // would silently corrupt id-path resolution.
        self.doc
            .check_sibling_index()
            .map_err(CoreError::Invariant)?;
        let Some(root) = self.doc.root() else {
            return Ok(()); // empty database is trivially consistent
        };
        let m_root = master
            .require_root()
            .map_err(|_| CoreError::Invariant("master has no root".into()))?;
        if self.doc.name(root) != master.name(m_root)
            || self.doc.attr(root, "id") != master.attr(m_root, "id")
        {
            return Err(CoreError::Invariant("root mismatch with master".into()));
        }
        self.check_node(root, master, m_root, &IdPath::root())
    }

    fn check_node(
        &self,
        ours: NodeId,
        master: &Document,
        theirs: NodeId,
        parent_path: &IdPath,
    ) -> CoreResult<()> {
        let tag = self.doc.name(ours).to_string();
        let id = self.doc.attr(ours, "id").unwrap_or("").to_string();
        let path = parent_path.child(tag.clone(), id.clone());
        let status = self
            .doc
            .attr(ours, STATUS_ATTR)
            .and_then(Status::parse)
            .ok_or_else(|| {
                CoreError::Invariant(format!("stored IDable node {path} lacks a valid status"))
            })?;

        let our_idable: Vec<(String, String)> = self
            .doc
            .child_elements(ours)
            .filter(|&c| self.service.schema.is_idable(self.doc.name(c)))
            .map(|c| {
                (
                    self.doc.name(c).to_string(),
                    self.doc.attr(c, "id").unwrap_or("").to_string(),
                )
            })
            .collect();

        match status {
            Status::Incomplete => {
                if !self.doc.children(ours).is_empty() {
                    return Err(CoreError::Invariant(format!(
                        "incomplete node {path} stores children"
                    )));
                }
            }
            _ => {
                // Local ID information: exactly the master's IDable child set.
                let mut master_idable: Vec<(String, String)> = master
                    .child_elements(theirs)
                    .filter(|&c| self.service.schema.is_idable(master.name(c)))
                    .map(|c| {
                        (
                            master.name(c).to_string(),
                            master.attr(c, "id").unwrap_or("").to_string(),
                        )
                    })
                    .collect();
                let mut ours_sorted = our_idable.clone();
                ours_sorted.sort();
                master_idable.sort();
                if ours_sorted != master_idable {
                    return Err(CoreError::Invariant(format!(
                        "node {path} (status {}) stores IDable children {ours_sorted:?}, master has {master_idable:?}",
                        status.as_str()
                    )));
                }
            }
        }

        // Recurse: every stored IDable child must exist in master (checked
        // above via the set equality) — still verify subtree pairing.
        for (ctag, cid) in &our_idable {
            let oc = self
                .doc
                .child_by_name_id(ours, ctag, cid)
                .expect("listed child resolves");
            let mc = master.child_by_name_id(theirs, ctag, cid).ok_or_else(|| {
                CoreError::Invariant(format!("phantom node {path}/{ctag}={cid}"))
            })?;
            self.check_node(oc, master, mc, &path)?;
        }
        Ok(())
    }
}

/// A snapshot of what a site database holds, by status (used by load
/// balancers, eviction policies and operators).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FragmentStats {
    pub owned: usize,
    pub complete: usize,
    pub id_complete: usize,
    pub incomplete: usize,
    /// Total stored nodes (elements + text), i.e. the document size the
    /// engines walk.
    pub stored_nodes: usize,
}

impl FragmentStats {
    /// IDable nodes with any status attribute.
    pub fn idable_total(&self) -> usize {
        self.owned + self.complete + self.id_complete + self.incomplete
    }
}

/// Size of one cached unit in the denominations a cache budget uses
/// (see [`SiteDatabase::unit_cost`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCost {
    /// Stored nodes (elements + text) in the unit's subtree.
    pub nodes: usize,
    /// Approximate heap bytes the subtree occupies.
    pub bytes: usize,
}

impl SiteDatabase {
    /// Computes status statistics over the stored fragment.
    pub fn stats(&self) -> FragmentStats {
        let mut s = FragmentStats::default();
        let Some(root) = self.doc.root() else { return s };
        s.stored_nodes = self.doc.reachable_count();
        for n in std::iter::once(root).chain(self.doc.descendants(root)) {
            match self.doc.attr(n, STATUS_ATTR).and_then(Status::parse) {
                Some(Status::Owned) => s.owned += 1,
                Some(Status::Complete) => s.complete += 1,
                Some(Status::IdComplete) => s.id_complete += 1,
                Some(Status::Incomplete) => s.incomplete += 1,
                None => {}
            }
        }
        s
    }
}

/// Formats a timestamp attribute value.
pub fn format_ts(ts: f64) -> String {
    // Timestamps are seconds; keep them compact and parseable.
    if ts == ts.trunc() {
        format!("{}", ts as i64)
    } else {
        format!("{ts}")
    }
}

/// Strips internal attributes (`status`, the timestamp field) from a whole
/// document, producing the user-facing view.
pub fn strip_internal_attrs(doc: &mut Document, ts_field: &str) {
    let Some(root) = doc.root() else { return };
    let nodes: Vec<NodeId> = std::iter::once(root).chain(doc.descendants(root)).collect();
    for n in nodes {
        doc.remove_attr(n, STATUS_ATTR);
        doc.remove_attr(n, ts_field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use sensorxml::parse;

    fn master() -> Document {
        parse(
            r#"<usRegion id="NE">
              <state id="PA">
                <county id="Allegheny">
                  <city id="Pittsburgh">
                    <neighborhood id="Oakland" zipcode="15213">
                      <available-spaces>8</available-spaces>
                      <block id="1">
                        <parkingSpace id="1"><available>yes</available><price>25</price></parkingSpace>
                        <parkingSpace id="2"><available>no</available><price>0</price></parkingSpace>
                      </block>
                      <block id="2">
                        <parkingSpace id="1"><available>yes</available><price>50</price></parkingSpace>
                      </block>
                    </neighborhood>
                    <neighborhood id="Shadyside">
                      <block id="1">
                        <parkingSpace id="1"><available>no</available><price>25</price></parkingSpace>
                      </block>
                    </neighborhood>
                  </city>
                </county>
              </state>
            </usRegion>"#,
        )
        .unwrap()
    }

    fn oakland() -> IdPath {
        IdPath::from_pairs([
            ("usRegion", "NE"),
            ("state", "PA"),
            ("county", "Allegheny"),
            ("city", "Pittsburgh"),
            ("neighborhood", "Oakland"),
        ])
    }

    fn shadyside() -> IdPath {
        IdPath::from_pairs([
            ("usRegion", "NE"),
            ("state", "PA"),
            ("county", "Allegheny"),
            ("city", "Pittsburgh"),
            ("neighborhood", "Shadyside"),
        ])
    }

    #[test]
    fn status_ordering() {
        assert!(Status::Incomplete < Status::IdComplete);
        assert!(Status::IdComplete < Status::Complete);
        assert!(Status::Complete < Status::Owned);
        for s in [Status::Incomplete, Status::IdComplete, Status::Complete, Status::Owned] {
            assert_eq!(Status::parse(s.as_str()), Some(s));
        }
        assert_eq!(Status::parse("bogus"), None);
    }

    #[test]
    fn bootstrap_owned_subtree_satisfies_invariants() {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &oakland(), true).unwrap();
        db.check_invariants(&m).unwrap();
        assert_eq!(db.status_at(&oakland()), Some(Status::Owned));
        assert_eq!(
            db.status_at(&oakland().child("block", "1")),
            Some(Status::Owned)
        );
        // Ancestors are id-complete, the sibling neighborhood incomplete.
        assert_eq!(
            db.status_at(&oakland().parent().unwrap()),
            Some(Status::IdComplete)
        );
        assert_eq!(db.status_at(&shadyside()), Some(Status::Incomplete));
    }

    #[test]
    fn bootstrap_non_subtree_keeps_children_incomplete() {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &oakland(), false).unwrap();
        db.check_invariants(&m).unwrap();
        assert_eq!(db.status_at(&oakland()), Some(Status::Owned));
        assert_eq!(
            db.status_at(&oakland().child("block", "1")),
            Some(Status::Incomplete)
        );
    }

    #[test]
    fn export_and_merge_cache_fill() {
        let m = master();
        let mut owner = SiteDatabase::new(Service::parking());
        owner.bootstrap_owned(&m, &oakland(), true).unwrap();

        // Owner exports Oakland block 1; a city-level cache merges it.
        let frag = owner
            .export_subtrees(&[oakland().child("block", "1")])
            .unwrap();
        let mut cache = SiteDatabase::new(Service::parking());
        cache
            .bootstrap_owned(&m, &shadyside(), true)
            .unwrap();
        cache.merge_fragment(&frag).unwrap();
        cache.check_invariants(&m).unwrap();

        // The cache now has the block as complete (not owned).
        let bp = oakland().child("block", "1");
        assert_eq!(cache.status_at(&bp), Some(Status::Complete));
        assert_eq!(
            cache.status_at(&bp.child("parkingSpace", "1")),
            Some(Status::Complete)
        );
        // Oakland itself is only id-complete (ancestor chain).
        assert_eq!(cache.status_at(&oakland()), Some(Status::IdComplete));
        // And its own data is untouched.
        assert_eq!(cache.status_at(&shadyside()), Some(Status::Owned));
    }

    #[test]
    fn merge_is_idempotent_and_order_insensitive() {
        let m = master();
        let mut owner = SiteDatabase::new(Service::parking());
        owner.bootstrap_owned(&m, &oakland(), true).unwrap();
        let f1 = owner.export_subtrees(&[oakland().child("block", "1")]).unwrap();
        let f2 = owner.export_subtrees(&[oakland().child("block", "2")]).unwrap();

        let mut a = SiteDatabase::new(Service::parking());
        a.merge_fragment(&f1).unwrap();
        a.merge_fragment(&f2).unwrap();
        a.merge_fragment(&f1).unwrap(); // idempotent re-merge

        let mut b = SiteDatabase::new(Service::parking());
        b.merge_fragment(&f2).unwrap();
        b.merge_fragment(&f1).unwrap();

        a.check_invariants(&m).unwrap();
        b.check_invariants(&m).unwrap();
        assert!(sensorxml::unordered_eq(
            a.doc(),
            a.doc().root().unwrap(),
            b.doc(),
            b.doc().root().unwrap()
        ));
    }

    #[test]
    fn merge_never_downgrades_owned() {
        let m = master();
        let mut owner = SiteDatabase::new(Service::parking());
        owner.bootstrap_owned(&m, &oakland(), true).unwrap();
        // Another site exports a *stale* copy of Oakland block 1 back at us.
        let frag = owner.export_subtrees(&[oakland().child("block", "1")]).unwrap();
        owner.merge_fragment(&frag).unwrap();
        owner.check_invariants(&m).unwrap();
        assert_eq!(
            owner.status_at(&oakland().child("block", "1")),
            Some(Status::Owned)
        );
    }

    #[test]
    fn newer_timestamp_wins_in_cache() {
        let m = master();
        let mut owner = SiteDatabase::new(Service::parking());
        owner.bootstrap_owned(&m, &oakland(), true).unwrap();
        let sp = oakland().child("block", "1").child("parkingSpace", "1");

        owner.apply_update(&sp, &[("available".into(), "no".into())], 100.0).unwrap();
        let newer = owner.export_subtrees(std::slice::from_ref(&sp)).unwrap();

        let mut cache = SiteDatabase::new(Service::parking());
        // Cache receives fresh data first, then a stale replay.
        cache.merge_fragment(&newer).unwrap();
        let mut owner2 = SiteDatabase::new(Service::parking());
        owner2.bootstrap_owned(&m, &oakland(), true).unwrap();
        owner2.apply_update(&sp, &[("available".into(), "yes".into())], 50.0).unwrap();
        let stale = owner2.export_subtrees(std::slice::from_ref(&sp)).unwrap();
        cache.merge_fragment(&stale).unwrap();

        let n = sp.resolve(cache.doc()).unwrap();
        let avail = cache.doc().child_by_name(n, "available").unwrap();
        assert_eq!(cache.doc().text_content(avail), "no"); // ts 100 kept
        assert_eq!(cache.timestamp_at(&sp), 100.0);
    }

    #[test]
    fn apply_update_sets_fields_and_timestamp() {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &oakland(), true).unwrap();
        let sp = oakland().child("block", "1").child("parkingSpace", "2");
        db.apply_update(
            &sp,
            &[("available".into(), "yes".into()), ("price".into(), "10".into())],
            42.5,
        )
        .unwrap();
        let n = sp.resolve(db.doc()).unwrap();
        assert_eq!(
            db.doc().text_content(db.doc().child_by_name(n, "available").unwrap()),
            "yes"
        );
        assert_eq!(
            db.doc().text_content(db.doc().child_by_name(n, "price").unwrap()),
            "10"
        );
        assert_eq!(db.timestamp_at(&sp), 42.5);
        db.check_invariants(&m).unwrap();
        // Updating a missing node errors.
        assert!(db
            .apply_update(&oakland().child("block", "99"), &[], 1.0)
            .is_err());
    }

    #[test]
    fn evict_demotes_to_incomplete_stub() {
        let m = master();
        let mut owner = SiteDatabase::new(Service::parking());
        owner.bootstrap_owned(&m, &oakland(), true).unwrap();
        let frag = owner.export_subtrees(&[oakland().child("block", "1")]).unwrap();
        let mut cache = SiteDatabase::new(Service::parking());
        cache.merge_fragment(&frag).unwrap();

        let bp = oakland().child("block", "1");
        cache.evict(&bp).unwrap();
        assert_eq!(cache.status_at(&bp), Some(Status::Incomplete));
        cache.check_invariants(&m).unwrap();
        // Owned data refuses eviction.
        assert!(owner.evict(&bp).is_err());
        assert!(owner.evict(&oakland()).is_err()); // descendant owned
    }

    #[test]
    fn check_invariants_catches_violations() {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &oakland(), true).unwrap();
        // Manually corrupt: drop a sibling stub from the city's ID info.
        let city = oakland().parent().unwrap();
        let city_node = city.resolve(db.doc()).unwrap();
        let shady = db.doc().child_by_name_id(city_node, "neighborhood", "Shadyside").unwrap();
        // Reach inside (test-only) to violate local ID information.
        dbmut(&mut db).detach(shady);
        assert!(db.check_invariants(&m).is_err());
    }

    /// Test-only access to the inner document.
    fn dbmut(db: &mut SiteDatabase) -> &mut Document {
        &mut db.doc
    }

    #[test]
    fn stats_count_statuses() {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        assert_eq!(db.stats(), FragmentStats::default());
        db.bootstrap_owned(&m, &oakland(), true).unwrap();
        let s = db.stats();
        // Oakland + 2 blocks + 3 spaces owned.
        assert_eq!(s.owned, 6);
        // Ancestors id-complete: usRegion/state/county/city.
        assert_eq!(s.id_complete, 4);
        // Shadyside stub incomplete.
        assert_eq!(s.incomplete, 1);
        assert_eq!(s.complete, 0);
        assert!(s.stored_nodes > s.idable_total());
    }

    #[test]
    fn strip_internal_attrs_cleans_answers() {
        let m = master();
        let mut db = SiteDatabase::new(Service::parking());
        db.bootstrap_owned(&m, &oakland(), true).unwrap();
        let mut frag = db.export_subtrees(&[oakland()]).unwrap();
        strip_internal_attrs(&mut frag, "timestamp");
        let root = frag.root().unwrap();
        let all: Vec<_> = std::iter::once(root).chain(frag.descendants(root)).collect();
        for n in all {
            assert!(frag.attr(n, STATUS_ATTR).is_none());
            assert!(frag.attr(n, "timestamp").is_none());
        }
    }

    #[test]
    fn export_multiple_targets_shares_ancestors() {
        let m = master();
        let mut owner = SiteDatabase::new(Service::parking());
        owner.bootstrap_owned(&m, &oakland(), true).unwrap();
        let frag = owner
            .export_subtrees(&[
                oakland().child("block", "1"),
                oakland().child("block", "2"),
            ])
            .unwrap();
        let root = frag.root().unwrap();
        assert_eq!(frag.name(root), "usRegion");
        let oak = oakland().resolve(&frag).unwrap();
        // Both blocks present under a single Oakland ancestor.
        assert!(frag.child_by_name_id(oak, "block", "1").is_some());
        assert!(frag.child_by_name_id(oak, "block", "2").is_some());
        assert_eq!(
            frag.attr(oak, STATUS_ATTR),
            Some(Status::IdComplete.as_str())
        );
    }
}
