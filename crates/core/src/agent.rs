//! Organizing agents and sensing agents.
//!
//! An [`OrganizingAgent`] (OA) is the site manager: it owns a fragment
//! database, answers user queries and subqueries with the QEG machinery,
//! applies sensor updates, caches gathered fragments, and participates in
//! ownership migration. It is written as a **pure message-driven state
//! machine**: [`OrganizingAgent::handle`] consumes one [`Message`] and
//! returns the [`Outbound`] traffic it generates. Both cluster substrates
//! (live threads and the discrete-event simulator) drive the same code.
//!
//! The query path is split into a mutation stage and a read stage so a
//! hot site can use more than one core. The owner loop (whoever calls
//! [`OrganizingAgent::handle_split`]) keeps *exclusive* charge of all
//! mutable state — the pending-query table (`pending`, `asked`,
//! `outstanding`), fragment merges, updates, evictions, and migration —
//! while QEG program creation/execution and answer serialization are
//! emitted as [`ReadTask`]s that only need a read-locked
//! [`SiteDatabase`] snapshot and the shared [`QegFactory`]. A substrate
//! can run those tasks on worker threads ([`perform_read`]) and funnel
//! each [`ReadDone`] back into [`OrganizingAgent::complete_read`] on the
//! owner loop; or it can drain them inline ([`OrganizingAgent::handle`]),
//! which reproduces the original strictly serial semantics — the
//! discrete-event simulator does exactly that and doubles as the
//! correctness oracle for the parallel path.
//!
//! A [`SensingAgent`] (SA) is a sensor proxy: it turns raw sensor readings
//! into update messages for the OA owning the relevant node (§1, §5.2).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use irisdns::{AuthoritativeDns, CachingResolver, SiteAddr};
use irisobs::telemetry::{disabled_payload, TelemetryPlane};
use irisobs::{CacheOutcome, Link, Recorder, SpanKind};
use parking_lot::RwLock;
use sensorxpath::Expr;

use crate::continuous::ContinuousRegistry;
use crate::error::{CoreError, CoreResult};
use crate::eviction::{CacheLookup, CacheManager, CacheStats, EvictionPolicy};
use crate::fragment::{SiteDatabase, Status, UnitCost};
use crate::idable::IdPath;
use crate::obs::ObsPlane;
use crate::qeg::{
    extract_user_answer, generalized_subquery, literal_subquery, matched_final_paths, plan_query,
    Ask, AskKind, QegFactory, QueryPlan, XsltCreation,
};
use crate::routing::lca_id_path;
use crate::service::Service;
use crate::storage::{RecoveredState, RecoveryStats, SiteStore, SiteWal};

/// Query identifier, unique per originating agent.
pub type QueryId = u64;

/// An opaque handle to a user-facing client (a front-end connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint(pub u64);

/// Messages exchanged between agents. Fragments and answers travel as XML
/// *text*, exactly as they would on a real wire; (de)serialization cost is
/// accounted to communication time. `PartialEq` is the wire-codec
/// roundtrip oracle: a decoded frame must compare equal to the original.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A user query arriving at this site (already routed via DNS).
    UserQuery { qid: QueryId, text: String, endpoint: Endpoint },
    /// A subquery from another OA gathering missing data.
    SubQuery { qid: QueryId, text: String, reply_to: SiteAddr },
    /// Several subqueries for the same owner coalesced into one wire
    /// message (one gather round frequently asks a single site for many
    /// siblings). Each entry is `(qid, text)` and is answered with its own
    /// [`Message::SubAnswer`].
    SubQueryBatch { entries: Vec<(QueryId, String)>, reply_to: SiteAddr },
    /// A subquery answer: an exported fragment (empty string = no data).
    /// `partial` propagates graceful degradation: the answering site could
    /// not reach some of the data the subquery covered, so the asker must
    /// flag its own answer too.
    SubAnswer { qid: QueryId, fragment_xml: String, partial: bool },
    /// A sensor update from an SA (or forwarded by a previous owner).
    Update { path: IdPath, fields: Vec<(String, String)> },
    /// Administrative: delegate ownership of `path`'s subtree to `to` (§4).
    Delegate { path: IdPath, to: SiteAddr },
    /// Ownership transfer carrying the subtree fragment.
    TakeOwnership { path: IdPath, fragment_xml: String, from: SiteAddr },
    /// New owner's acknowledgement; the old owner demotes and forwards.
    TakeAck { path: IdPath, new_owner: SiteAddr },
    /// Register a continuous query at this site (normally the owner of the
    /// query's LCA); the subscriber receives an initial snapshot and then a
    /// fresh answer whenever a sensor update changes it (§7).
    Subscribe { qid: QueryId, text: String, endpoint: Endpoint },
    /// Cancel a continuous query.
    Unsubscribe { qid: QueryId },
    /// Telemetry scrape: ask this site for its continuous-telemetry
    /// payload (windowed series, flight-recorder dump, health — `what`
    /// selects sections, see `irisobs::telemetry::WHAT_*`). Two reply
    /// modes: `reply_to == SiteAddr(0)` (no real site is 0) answers the
    /// client `endpoint` directly like a query answer; a non-zero
    /// `reply_to` sends a [`Message::TelemetryReply`] to that site, so a
    /// controller site can poll its peers over the same wire.
    TelemetryRequest { qid: QueryId, reply_to: SiteAddr, endpoint: Endpoint, what: u8 },
    /// A peer site's scrape answer: the JSONL telemetry payload. Parked in
    /// the receiving agent's telemetry inbox
    /// ([`OrganizingAgent::take_telemetry_replies`]).
    TelemetryReply { qid: QueryId, payload: String },
}

/// Traffic generated by handling one message.
#[derive(Debug, Clone)]
pub enum Outbound {
    /// Send a message to another site.
    Send { to: SiteAddr, msg: Message },
    /// Deliver a final answer to a user endpoint. `partial = true` means
    /// some covered subtree was unreachable after retries were exhausted:
    /// the answer merges what was gathered, and the unreachable subtrees'
    /// covering nodes appear in the XML stamped `partial="true"`.
    ReplyUser {
        endpoint: Endpoint,
        qid: QueryId,
        answer_xml: String,
        ok: bool,
        partial: bool,
    },
}

/// A read-only unit of query work: everything needed to run one QEG pass
/// or assemble one answer against a [`SiteDatabase`] snapshot, with no
/// access to the owner loop's mutable state.
#[derive(Debug, Clone)]
pub struct ReadTask {
    /// The pending query this task advances.
    pub pid: QueryId,
    /// Query-arrival time (drives `now()` in consistency predicates).
    pub posed_at: f64,
    pub kind: ReadTaskKind,
}

/// What a [`ReadTask`] does.
#[derive(Debug, Clone)]
pub enum ReadTaskKind {
    /// Create the QEG program and run one evaluate pass.
    Execute { plan: QueryPlan, ignore_complete: bool },
    /// Extract and serialize the final user answer. `failed` carries the
    /// coalesced covering paths of subtrees whose retries were exhausted;
    /// they are stamped into the answer as `partial="true"` stub nodes.
    FinalizeUser { plan: QueryPlan, endpoint: Endpoint, qid: QueryId, failed: Vec<IdPath> },
    /// Export and serialize the subquery answer fragment. `partial` marks
    /// a fragment assembled with unreachable subtrees missing.
    FinalizeSite { plan: QueryPlan, addr: SiteAddr, qid: QueryId, partial: bool },
}

/// The completion record of a [`ReadTask`], handed back to the owner loop
/// via [`OrganizingAgent::complete_read`]. Phase timings are carried along
/// so stats stay accurate no matter which thread did the work.
#[derive(Debug)]
pub struct ReadDone {
    pub pid: QueryId,
    pub result: ReadResult,
    pub time_create: f64,
    pub time_exec: f64,
    pub time_extract: f64,
    pub time_comm: f64,
}

/// Outcome payload of a [`ReadTask`].
#[derive(Debug)]
pub enum ReadResult {
    /// One QEG pass completed; these are the extracted asks.
    Executed { asks: Vec<Ask> },
    /// Final user answer ready (`ok = false` carries an `<error>` body).
    UserAnswer { endpoint: Endpoint, qid: QueryId, answer_xml: String, ok: bool, partial: bool },
    /// Subquery answer fragment ready (empty string = no data).
    Fragment { addr: SiteAddr, qid: QueryId, fragment_xml: String, partial: bool },
    /// Program creation or execution failed.
    ExecError { error_xml: String },
}

/// Everything one owner-loop step produces: outbound traffic plus read
/// tasks for the substrate to run (inline or on a worker pool).
#[derive(Debug, Default)]
pub struct HandleOutcome {
    pub out: Vec<Outbound>,
    pub tasks: Vec<ReadTask>,
}

/// Everything a read worker needs to run this site's [`ReadTask`]s,
/// detached from the agent itself: the shared database handle and the QEG
/// factory. A substrate that multiplexes many agents onto shared worker
/// pools (the sharded event-loop runtime) keeps one `ReadContext` per site
/// in a lookup table instead of capturing per-site state in per-site
/// threads — the read path no longer assumes a site owns any thread.
#[derive(Debug, Clone)]
pub struct ReadContext {
    pub db: Arc<RwLock<SiteDatabase>>,
    pub qeg: Arc<QegFactory>,
}

impl ReadContext {
    /// Runs one task against a read-locked snapshot of the site database.
    pub fn perform(&self, task: &ReadTask) -> ReadDone {
        let db = self.db.read();
        perform_read(task, &self.qeg, &db)
    }
}

/// Runs one read task against a database snapshot. Pure with respect to
/// the agent: only the shared QEG factory's interior counters/cache move.
/// Substrates call this from worker threads while holding a read lock on
/// the site database.
pub fn perform_read(task: &ReadTask, qeg: &QegFactory, db: &SiteDatabase) -> ReadDone {
    let mut done = ReadDone {
        pid: task.pid,
        result: ReadResult::Executed { asks: Vec::new() },
        time_create: 0.0,
        time_exec: 0.0,
        time_extract: 0.0,
        time_comm: 0.0,
    };
    done.result = match &task.kind {
        ReadTaskKind::Execute { plan, ignore_complete } => {
            let t0 = Instant::now();
            match qeg.create_with(plan, *ignore_complete) {
                Ok(program) => {
                    done.time_create = t0.elapsed().as_secs_f64();
                    let t1 = Instant::now();
                    match program.execute(db, task.posed_at) {
                        Ok(outcome) => {
                            done.time_exec = t1.elapsed().as_secs_f64();
                            ReadResult::Executed { asks: outcome.asks }
                        }
                        Err(e) => ReadResult::ExecError {
                            error_xml: format!("<error>{e}</error>"),
                        },
                    }
                }
                Err(e) => ReadResult::ExecError { error_xml: format!("<error>{e}</error>") },
            }
        }
        ReadTaskKind::FinalizeUser { plan, endpoint, qid, failed } => {
            let t = Instant::now();
            let answer = extract_user_answer(plan, db, task.posed_at);
            done.time_extract = t.elapsed().as_secs_f64();
            match answer {
                Ok(mut doc) => {
                    if let (false, Some(root)) = (failed.is_empty(), doc.root()) {
                        append_partial_stubs(&mut doc, root, failed);
                    }
                    let t2 = Instant::now();
                    let xml = doc
                        .root()
                        .map(|r| sensorxml::serialize(&doc, r))
                        .unwrap_or_default();
                    done.time_comm = t2.elapsed().as_secs_f64();
                    ReadResult::UserAnswer {
                        endpoint: *endpoint,
                        qid: *qid,
                        answer_xml: xml,
                        ok: true,
                        partial: !failed.is_empty(),
                    }
                }
                Err(e) => ReadResult::UserAnswer {
                    endpoint: *endpoint,
                    qid: *qid,
                    answer_xml: format!("<error>{e}</error>"),
                    ok: false,
                    partial: !failed.is_empty(),
                },
            }
        }
        ReadTaskKind::FinalizeSite { plan, addr, qid, partial } => {
            let t = Instant::now();
            let frag = matched_final_paths(plan, db, task.posed_at).and_then(|paths| {
                if paths.is_empty() {
                    // Negative evidence: ship the local information of the
                    // deepest resolvable id-pinned prefix, so the requester
                    // learns which children actually exist (deleted nodes
                    // disappear from caches).
                    let mut p = lca_id_path(&plan.expr);
                    loop {
                        if p.is_empty() {
                            break Ok(None);
                        }
                        if db.contains(&p) {
                            break db.export_local_info(&p).map(Some);
                        }
                        match p.parent() {
                            Some(pp) => p = pp,
                            None => break Ok(None),
                        }
                    }
                } else {
                    // Ship whole cached units where the match covers them
                    // (subsumption, §3.3): the receiver then caches e.g. a
                    // complete block instead of loose parking spaces.
                    let coalesced = db.coalesce_covering_paths(&paths);
                    db.export_subtrees(&coalesced).map(Some)
                }
            });
            done.time_extract = t.elapsed().as_secs_f64();
            let fragment_xml = match frag {
                Ok(Some(doc)) => {
                    let t2 = Instant::now();
                    let xml = doc
                        .root()
                        .map(|r| sensorxml::serialize(&doc, r))
                        .unwrap_or_default();
                    done.time_comm = t2.elapsed().as_secs_f64();
                    xml
                }
                _ => String::new(),
            };
            ReadResult::Fragment { addr: *addr, qid: *qid, fragment_xml, partial: *partial }
        }
    };
    done
}

/// Appends one stub chain per exhausted covering path: the id-path's
/// ancestry as bare `tag/id` elements with the terminal (covering) node
/// stamped `partial="true"` — the analogue of the paper's query-based
/// consistency timestamps, but for reachability instead of freshness.
fn append_partial_stubs(doc: &mut sensorxml::Document, root: sensorxml::NodeId, failed: &[IdPath]) {
    for path in failed {
        let segs = path.segments();
        let mut parent = root;
        for (i, (tag, id)) in segs.iter().enumerate() {
            let e = doc.create_element(tag.clone());
            doc.set_attr(e, "id", id.clone());
            if i + 1 == segs.len() {
                doc.set_attr(e, "partial", "true");
            }
            doc.append_child(parent, e);
            parent = e;
        }
    }
}

/// Caching policy for gathered fragments (§3.3, §5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Merge every gathered fragment into the site database (the paper's
    /// aggressive default).
    Aggressive,
    /// Never retain gathered data: gather into a per-query scratch overlay
    /// discarded afterwards.
    Off,
}

/// Ask-level retry policy: when a subquery's answer does not arrive within
/// `ask_timeout`, the agent re-resolves the owner through DNS (covering
/// migration races and restarted sites) and resends the subquery with the
/// *same* sub-query id — the receiver may therefore see duplicates, which
/// the ask bookkeeping ignores. Consecutive timeouts back off
/// exponentially (`ask_timeout * backoff^attempt`, capped at
/// `max_backoff`); after `max_retries` resends the ask is abandoned and
/// the query degrades to a `partial` answer instead of hanging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Seconds to wait for a subquery answer. `f64::INFINITY` disables
    /// retries entirely (the default: the paper's experiments assume a
    /// lossless network, and the fault-free substrates need no timers).
    pub ask_timeout: f64,
    /// Resends after the initial attempt before abandoning the ask.
    pub max_retries: u32,
    /// Multiplier applied to the timeout per consecutive failure.
    pub backoff: f64,
    /// Upper bound on any single backoff interval (seconds).
    pub max_backoff: f64,
}

impl RetryPolicy {
    /// Retries disabled (the default policy).
    pub fn disabled() -> RetryPolicy {
        RetryPolicy { ask_timeout: f64::INFINITY, max_retries: 0, backoff: 2.0, max_backoff: 60.0 }
    }

    /// A bounded policy: timeout, `max_retries` resends, 2× backoff capped
    /// at 8 timeouts.
    pub fn bounded(ask_timeout: f64, max_retries: u32) -> RetryPolicy {
        RetryPolicy { ask_timeout, max_retries, backoff: 2.0, max_backoff: ask_timeout * 8.0 }
    }

    /// Whether timeouts are armed at all.
    pub fn enabled(&self) -> bool {
        self.ask_timeout.is_finite()
    }

    /// The wait interval after `attempts` consecutive timeouts.
    pub fn delay_after(&self, attempts: u32) -> f64 {
        (self.ask_timeout * self.backoff.powi(attempts as i32)).min(self.max_backoff)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

/// Agent configuration.
#[derive(Debug, Clone)]
pub struct OaConfig {
    pub cache: CacheMode,
    pub creation: XsltCreation,
    /// DNS resolver cache TTL (seconds).
    pub dns_ttl: f64,
    /// Maximum gather iterations per query before answering with whatever
    /// was assembled.
    pub max_iterations: u32,
    /// Probability that a query is allowed to use cached (`complete`) data;
    /// the remainder refresh from owners even when a copy is cached. 1.0
    /// reproduces the paper's aggressive caching, 0.0 its "caching with no
    /// hits" control (Fig. 10).
    pub cache_hit_prob: f64,
    /// Cache eviction policy for gathered fragments (the paper's prototype
    /// uses `KeepForever`).
    pub eviction: EvictionPolicy,
    /// TinyLFU-style admission filter for budgeted eviction policies:
    /// when caching a new unit would overflow the budget, it is admitted
    /// only if its estimated request frequency beats the would-be
    /// victim's, so one-off scans cannot displace hot neighborhoods.
    pub cache_admission: bool,
    /// Generalize subqueries to their id-predicate-only superset (§3.3).
    /// Disabling this is the ablation arm: owners ship exact matches only,
    /// and caches stop serving queries with different value predicates.
    pub generalize_subqueries: bool,
    /// Subquery timeout/retry policy (disabled by default).
    pub retry: RetryPolicy,
}

impl Default for OaConfig {
    fn default() -> Self {
        OaConfig {
            cache: CacheMode::Aggressive,
            creation: XsltCreation::Fast,
            dns_ttl: 60.0,
            max_iterations: 16,
            cache_hit_prob: 1.0,
            eviction: EvictionPolicy::KeepForever,
            cache_admission: true,
            generalize_subqueries: true,
            retry: RetryPolicy::disabled(),
        }
    }
}

/// Per-agent counters and phase timers (Fig. 11's breakdown).
#[derive(Debug, Clone, Default)]
pub struct OaStats {
    pub user_queries: u64,
    pub subqueries_handled: u64,
    pub subqueries_sent: u64,
    /// Batched subquery messages sent (each carries ≥ 2 subqueries for
    /// one owner site).
    pub subquery_batches_sent: u64,
    pub answers_sent: u64,
    pub answered_locally: u64,
    pub updates_applied: u64,
    pub updates_forwarded: u64,
    pub cache_merges: u64,
    pub dropped_asks: u64,
    pub held_messages: u64,
    pub queries_forwarded: u64,
    /// Subqueries resent after an ask-level timeout.
    pub retries_sent: u64,
    /// Asks abandoned after the retry budget was exhausted (each one turns
    /// an exact answer into a partial one).
    pub asks_abandoned: u64,
    /// Answers (user or site) flagged partial.
    pub partial_answers: u64,
    /// Seconds spent creating (compiling/patching) XSLT programs.
    pub time_create_xslt: f64,
    /// Seconds spent executing XSLT programs.
    pub time_exec_xslt: f64,
    /// Seconds spent extracting answers / exporting fragments.
    pub time_extract: f64,
    /// Seconds spent serializing/parsing wire XML (communication CPU).
    pub time_comm: f64,
}

#[derive(Debug)]
enum Origin {
    User { endpoint: Endpoint, qid: QueryId },
    Site { addr: SiteAddr, qid: QueryId },
}

#[derive(Debug, Clone, Copy)]
struct RetryState {
    /// Resends already performed.
    attempts: u32,
    /// When the current wait expires.
    next_at: f64,
}

#[derive(Debug)]
struct Pending {
    plan: QueryPlan,
    /// Whether this query may use cached data (drawn per query from
    /// `cache_hit_prob`).
    use_cache: bool,
    origin: Origin,
    /// Outstanding subqueries: our sub-qid → the ask it serves.
    outstanding: HashMap<QueryId, Ask>,
    /// Retry bookkeeping per outstanding sub-qid (only populated when the
    /// retry policy is enabled).
    retry: HashMap<QueryId, RetryState>,
    /// Ask paths abandoned after retry exhaustion: the covering nodes the
    /// final answer stamps `partial="true"`.
    failed: Vec<IdPath>,
    /// Asks already issued (loop breaker for unsatisfiable/stale-repeat).
    asked: HashSet<(IdPath, AskKind)>,
    iterations: u32,
    /// Gather overlay when caching is off (created lazily on the first
    /// gathered fragment, so purely local queries never pay the clone).
    scratch: Option<SiteDatabase>,
    /// True when gathered fragments must not persist in the site database.
    ephemeral: bool,
    /// Query-arrival time (drives `now()` in consistency predicates).
    posed_at: f64,
    /// Root span id of this query's trace (0 when tracing is off).
    obs_root: u64,
    /// Ask span ids by sub-qid, for parenting retries and sub-answers.
    obs_asks: HashMap<QueryId, u64>,
}

/// The organizing agent: one per site.
#[derive(Debug)]
pub struct OrganizingAgent {
    pub addr: SiteAddr,
    pub service: Arc<Service>,
    /// The site database. Read-path workers hold read locks while
    /// executing QEG programs; every mutation goes through the owner loop
    /// taking the write lock ([`OrganizingAgent::db_mut`]).
    db: Arc<RwLock<SiteDatabase>>,
    pub config: OaConfig,
    pub stats: OaStats,
    /// Shared across read workers; its skeleton cache has interior
    /// mutability so Fast-creation hits don't serialize the pool.
    qeg: Arc<QegFactory>,
    resolver: CachingResolver,
    pending: HashMap<QueryId, Pending>,
    next_qid: QueryId,
    /// Paths currently being delegated away: traffic for them is held.
    migrating_out: HashSet<IdPath>,
    held: Vec<Message>,
    /// Completed transfers: old owner forwards traffic to the new owner.
    forward: HashMap<IdPath, SiteAddr>,
    /// Continuous-query subscribers (§7).
    continuous: ContinuousRegistry,
    /// Cached-unit tracking for the eviction policy. Bookkeeping happens
    /// on the mutation path (owner loop); the budget sweep runs only at
    /// quiescent points ([`OrganizingAgent::maybe_enforce`]) — never while
    /// a query is in flight, and never on the read path.
    cache_mgr: CacheManager,
    /// Read tasks handed to the substrate and not yet completed. Cache
    /// enforcement waits until this hits zero so in-flight QEG passes and
    /// finalize reads never lose data under them.
    tasks_in_flight: usize,
    /// Observability plane (no-op by default; see
    /// [`OrganizingAgent::set_recorder`]).
    obs: ObsPlane,
    /// Queue-wait hint for the next arrival, set by the substrate just
    /// before dispatch and consumed by the arrival span.
    obs_queue_wait: f64,
    /// Root/arrival span of the message currently being dispatched; the
    /// pending entry created under it inherits this as `obs_root`.
    obs_cur_root: u64,
    /// Root-span context (root span id, partial-stub count) for queries
    /// whose finalize read task is in flight — the pending entry is
    /// already gone by the time the task completes.
    finishing: HashMap<QueryId, (u64, u64)>,
    /// Telemetry payloads received from peer sites (site-to-site scrape
    /// mode), bounded; drained by
    /// [`OrganizingAgent::take_telemetry_replies`].
    telemetry_inbox: Vec<(QueryId, String)>,
}

/// Bound on buffered peer telemetry replies: a controller that never
/// drains its inbox sheds the oldest payloads instead of growing.
const TELEMETRY_INBOX_CAP: usize = 64;

impl OrganizingAgent {
    /// Creates an agent with an empty database.
    pub fn new(addr: SiteAddr, service: Arc<Service>, config: OaConfig) -> OrganizingAgent {
        let mut cache_mgr = CacheManager::new(config.eviction);
        cache_mgr.set_admission(config.cache_admission);
        OrganizingAgent {
            addr,
            service: service.clone(),
            db: Arc::new(RwLock::new(SiteDatabase::new(service.clone()))),
            qeg: Arc::new(QegFactory::new(service, config.creation)),
            resolver: CachingResolver::new(config.dns_ttl),
            config,
            stats: OaStats::default(),
            pending: HashMap::new(),
            next_qid: 1,
            migrating_out: HashSet::new(),
            held: Vec::new(),
            forward: HashMap::new(),
            continuous: ContinuousRegistry::new(),
            cache_mgr,
            tasks_in_flight: 0,
            obs: ObsPlane::noop(),
            obs_queue_wait: 0.0,
            obs_cur_root: 0,
            finishing: HashMap::new(),
            telemetry_inbox: Vec::new(),
        }
    }

    /// Attaches an observability recorder. When the recorder is enabled,
    /// every message handled from here on records causally-linked spans,
    /// and the QEG factory's counters are adopted into the recorder's
    /// metrics registry as named per-site series (same storage — the
    /// factory keeps updating them, the registry snapshots them).
    pub fn set_recorder(&mut self, rec: Arc<dyn Recorder>) {
        self.obs = ObsPlane::new(rec);
        if let Some(reg) = self.obs.registry() {
            for (name, counter) in self.qeg.counter_handles() {
                reg.adopt_counter(self.addr.0, name, counter);
            }
        }
    }

    /// Substrate hint: how long the message about to be dispatched waited
    /// in a queue before service. Consumed by the next arrival span.
    pub fn note_queue_wait(&mut self, wait: f64) {
        self.obs_queue_wait = wait;
    }

    /// Publishes the agent's counters into the recorder's registry as
    /// `oa.*` series (call at dump time; values mirror [`OaStats`]).
    pub fn publish_metrics(&self) {
        let Some(reg) = self.obs.registry() else { return };
        let site = self.addr.0;
        let s = &self.stats;
        for (name, v) in [
            ("oa.user_queries", s.user_queries),
            ("oa.subqueries_handled", s.subqueries_handled),
            ("oa.subqueries_sent", s.subqueries_sent),
            ("oa.subquery_batches_sent", s.subquery_batches_sent),
            ("oa.answers_sent", s.answers_sent),
            ("oa.answered_locally", s.answered_locally),
            ("oa.updates_applied", s.updates_applied),
            ("oa.updates_forwarded", s.updates_forwarded),
            ("oa.cache_merges", s.cache_merges),
            ("oa.dropped_asks", s.dropped_asks),
            ("oa.held_messages", s.held_messages),
            ("oa.queries_forwarded", s.queries_forwarded),
            ("oa.retries_sent", s.retries_sent),
            ("oa.asks_abandoned", s.asks_abandoned),
            ("oa.partial_answers", s.partial_answers),
        ] {
            reg.counter(site, name).set(v);
        }
        // The cache plane's counters live in the `CacheManager` (the one
        // irisobs-backed home of eviction accounting); mirror them here.
        let cs = self.cache_mgr.stats();
        for (name, v) in [
            ("cache.hits", cs.hits),
            ("cache.partial_matches", cs.partial_matches),
            ("cache.misses", cs.misses),
            ("cache.evictions", cs.evictions),
            ("cache.admission_rejects", cs.admission_rejects),
            ("cache.sweeps", cs.sweeps),
        ] {
            reg.counter(site, name).set(v);
        }
        // Durability plane: WAL traffic and recovery cost, when attached.
        if let Some(wal) = self.db.read().wal() {
            for (name, v) in [
                ("wal.appends", wal.appends()),
                ("wal.bytes", wal.bytes()),
                ("wal.snapshots", wal.snapshots()),
                ("wal.append_errors", wal.append_errors()),
                ("recovery.replays", wal.replays()),
                ("recovery.records_replayed", wal.replayed_records()),
            ] {
                reg.counter(site, name).set(v);
            }
            for ms in wal.drain_replay_ms() {
                reg.histogram(site, "recovery.replay_ms").observe(ms);
            }
        }
    }

    /// Snapshot of the cache plane's counters and occupancy.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_mgr.stats()
    }

    // ------------------------------------------------------------------
    // Durability (core::storage)
    // ------------------------------------------------------------------

    /// Attaches a durability plane to this site: `store` becomes the
    /// write-ahead log of every database mutation from here on, and
    /// `recovered` (what [`SiteStore::open`] found on the backend) is
    /// replayed first if non-empty — the database must be empty in that
    /// case (recovery *is* the bootstrap).
    ///
    /// Call after setup-time bootstrapping and before the substrate starts
    /// delivering messages. An initial snapshot is always taken, so the
    /// pre-log state (bootstrap or recovery) is durable immediately and
    /// the replayed WAL tail is sealed rather than replayed twice.
    pub fn attach_durability(
        &mut self,
        store: SiteStore,
        recovered: RecoveredState,
        now: f64,
    ) -> CoreResult<RecoveryStats> {
        let wal = Arc::new(SiteWal::new(store));
        wal.note_time(now);
        let mut db = self.db.write();
        let stats = if recovered.is_empty() {
            RecoveryStats::default()
        } else {
            db.attach_wal(wal.clone()); // restore_from reports through it
            match db.restore_from(&recovered) {
                Ok(stats) => stats,
                Err(e) => {
                    db.detach_wal();
                    return Err(e);
                }
            }
        };
        db.attach_wal(wal.clone());
        wal.snapshot(&db.snapshot_xml(), now);
        Ok(stats)
    }

    /// The site's WAL handle, if a durability plane is attached.
    pub fn wal(&self) -> Option<Arc<SiteWal>> {
        self.db.read().wal().cloned()
    }

    /// Writes a snapshot now if one is due (record cadence elapsed or a
    /// non-WAL-expressible mutation happened). Runs at the same quiescent
    /// points as the cache sweep — never on the read path.
    fn maybe_snapshot(&mut self, now: f64) {
        let due = { self.db.read().wal().is_some_and(|w| w.should_snapshot()) };
        if due {
            let db = self.db.write();
            if let Some(w) = db.wal().cloned() {
                w.snapshot(&db.snapshot_xml(), now);
            }
        }
    }

    /// Runs the budget-triggered cache sweep iff the plane needs it *and*
    /// the agent is quiescent: no pending queries and no read tasks in
    /// flight, so eviction can never yank data from under a QEG pass or a
    /// finalize read. O(1) when there is nothing to do, O(evicted) when
    /// there is — and never on the read path: cache-hit queries reach
    /// their answer before this ever takes the write lock.
    fn maybe_enforce(&mut self, now: f64) {
        if self.tasks_in_flight != 0 || !self.pending.is_empty() {
            return;
        }
        if self.cache_mgr.needs_enforcement(now) {
            let mut db = self.db.write();
            self.cache_mgr.enforce(&mut db, now);
        }
        // The durability plane snapshots at the same quiescent points —
        // and so does telemetry window sampling: both stay entirely off
        // the query path.
        self.maybe_snapshot(now);
        if self.obs.on {
            self.maybe_sample_telemetry(now);
        }
    }

    /// Advances this site's telemetry windows if a full bucket width has
    /// passed since the last sample. Rate-limited so the steady-state cost
    /// at quiescent points is one map lookup; sampling itself only mutates
    /// plane-internal state (no messages, no spans), so answers and trace
    /// digests are byte-identical with telemetry on or off.
    fn maybe_sample_telemetry(&self, now: f64) {
        let Some(tel) = self.obs.recorder().telemetry() else { return };
        if !tel.sample_due(self.addr.0, now) {
            return;
        }
        self.sample_telemetry_into(tel, now);
    }

    fn sample_telemetry_into(&self, tel: &TelemetryPlane, now: f64) {
        self.publish_metrics();
        tel.record_heat(
            self.addr.0,
            now,
            &self.cache_mgr.heat_snapshot(now, tel.config().heat_top),
        );
        if let Some(reg) = self.obs.registry() {
            tel.sample_site(self.addr.0, now, reg);
        }
    }

    /// Renders this site's scrape payload: a fresh sample (scrapes always
    /// see current windows, not the last quiescent point's) followed by
    /// the sections `what` selects. Without a telemetry-carrying recorder
    /// the payload is a minimal `enabled:false` header — a scraper can
    /// always tell "plane off" from "site down".
    pub fn telemetry_payload(&self, what: u8, now: f64) -> String {
        let Some(tel) = self.obs.recorder().telemetry() else {
            return disabled_payload(self.addr.0, now);
        };
        self.sample_telemetry_into(tel, now);
        tel.payload(self.addr.0, what, now)
    }

    /// Drains telemetry payloads received from peer sites (the
    /// site-to-site reply mode of [`Message::TelemetryRequest`]).
    pub fn take_telemetry_replies(&mut self) -> Vec<(QueryId, String)> {
        std::mem::take(&mut self.telemetry_inbox)
    }

    /// Forces a cache sweep immediately (maintenance/test hook; the agent
    /// normally sweeps itself at quiescent points). Returns the demoted
    /// unit paths.
    pub fn enforce_cache_now(&mut self, now: f64) -> Vec<IdPath> {
        let mut db = self.db.write();
        self.cache_mgr.enforce(&mut db, now)
    }

    fn fresh_qid(&mut self) -> QueryId {
        let q = self.next_qid;
        self.next_qid += 1;
        q
    }

    /// Read access to the site database (shared with read workers).
    pub fn db(&self) -> RwLockReadGuard<'_, SiteDatabase> {
        self.db.read()
    }

    /// Exclusive access to the site database — owner-loop mutations only.
    pub fn db_mut(&self) -> RwLockWriteGuard<'_, SiteDatabase> {
        self.db.write()
    }

    /// A shared handle to the site database for read-path workers.
    pub fn shared_db(&self) -> Arc<RwLock<SiteDatabase>> {
        self.db.clone()
    }

    /// The shared QEG factory (workers clone the `Arc`).
    pub fn qeg(&self) -> Arc<QegFactory> {
        self.qeg.clone()
    }

    /// The detached read-path handle for shared worker pools (see
    /// [`ReadContext`]).
    pub fn read_context(&self) -> ReadContext {
        ReadContext { db: self.db.clone(), qeg: self.qeg.clone() }
    }

    /// Handles one message, returning generated traffic. `dns` is the
    /// authoritative store (shared by the cluster substrate); `now` is the
    /// current time in seconds.
    ///
    /// This is the strictly serial entry point: read tasks are drained
    /// inline (FIFO) until none remain, exactly reproducing the behavior
    /// of the pre-split single-threaded agent. Substrates that want
    /// parallelism call [`OrganizingAgent::handle_split`] /
    /// [`OrganizingAgent::complete_read`] instead and run
    /// [`perform_read`] on workers.
    pub fn handle(
        &mut self,
        msg: Message,
        dns: &mut AuthoritativeDns,
        now: f64,
    ) -> Vec<Outbound> {
        let oc = self.handle_split(msg, dns, now);
        self.drain_tasks(oc, dns, now)
    }

    /// Handles one message *without* running its read-only work: the
    /// returned [`HandleOutcome`] carries outbound traffic plus the
    /// [`ReadTask`]s the substrate must execute (any thread, read lock)
    /// and feed back through [`OrganizingAgent::complete_read`].
    pub fn handle_split(
        &mut self,
        msg: Message,
        dns: &mut AuthoritativeDns,
        now: f64,
    ) -> HandleOutcome {
        let mut oc = HandleOutcome::default();
        self.dispatch(msg, dns, now, &mut oc);
        self.maybe_enforce(now);
        oc
    }

    /// Applies a completed read task on the owner loop: bookkeeping,
    /// subquery dispatch, and answer emission. May produce follow-up
    /// tasks (the next gather iteration).
    pub fn complete_read(
        &mut self,
        done: ReadDone,
        dns: &mut AuthoritativeDns,
        now: f64,
    ) -> HandleOutcome {
        self.tasks_in_flight = self.tasks_in_flight.saturating_sub(1);
        let mut oc = HandleOutcome::default();
        self.apply_done(done, dns, now, &mut oc);
        self.maybe_enforce(now);
        oc
    }

    fn dispatch(
        &mut self,
        msg: Message,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) {
        match msg {
            Message::UserQuery { qid, text, endpoint } => {
                if let Some(held) = self.maybe_hold_query(&text, Message::UserQuery {
                    qid,
                    text: text.clone(),
                    endpoint,
                }) {
                    self.held.push(held);
                    self.stats.held_messages += 1;
                    return;
                }
                let qwait = std::mem::take(&mut self.obs_queue_wait);
                if let Some(fwd) = self.forward_target_for_query(&text) {
                    self.stats.queries_forwarded += 1;
                    if self.obs.on {
                        let mut sp = self.obs.span(
                            Link::Root { endpoint: endpoint.0, qid },
                            self.addr.0,
                            SpanKind::Forward,
                            now,
                        );
                        sp.queue_wait = qwait;
                        sp.target = fwd.0;
                        self.obs.record(sp);
                    }
                    oc.out.push(Outbound::Send {
                        to: fwd,
                        msg: Message::UserQuery { qid, text, endpoint },
                    });
                    return;
                }
                self.stats.user_queries += 1;
                self.obs_cur_root = 0;
                if self.obs.on {
                    let mut sp = self.obs.span(
                        Link::Root { endpoint: endpoint.0, qid },
                        self.addr.0,
                        SpanKind::UserQuery,
                        now,
                    );
                    sp.queue_wait = qwait;
                    self.obs_cur_root = sp.id;
                    self.obs.record(sp);
                }
                let origin = Origin::User { endpoint, qid };
                if let Err(e) = self.start_query(&text, origin, dns, now, oc) {
                    oc.out.push(Outbound::ReplyUser {
                        endpoint,
                        qid,
                        answer_xml: format!("<error>{e}</error>"),
                        ok: false,
                        partial: false,
                    });
                }
            }
            Message::SubQuery { qid, text, reply_to } => {
                if let Some(held) = self.maybe_hold_query(&text, Message::SubQuery {
                    qid,
                    text: text.clone(),
                    reply_to,
                }) {
                    self.held.push(held);
                    self.stats.held_messages += 1;
                    return;
                }
                let qwait = std::mem::take(&mut self.obs_queue_wait);
                if let Some(fwd) = self.forward_target_for_query(&text) {
                    self.stats.queries_forwarded += 1;
                    if self.obs.on {
                        let mut sp = self.obs.span(
                            Link::Ask { asker: reply_to.0, sub_qid: qid },
                            self.addr.0,
                            SpanKind::Forward,
                            now,
                        );
                        sp.queue_wait = qwait;
                        sp.target = fwd.0;
                        self.obs.record(sp);
                    }
                    oc.out.push(Outbound::Send {
                        to: fwd,
                        msg: Message::SubQuery { qid, text, reply_to },
                    });
                    return;
                }
                self.stats.subqueries_handled += 1;
                self.obs_cur_root = 0;
                if self.obs.on {
                    let mut sp = self.obs.span(
                        Link::Ask { asker: reply_to.0, sub_qid: qid },
                        self.addr.0,
                        SpanKind::SubQuery,
                        now,
                    );
                    sp.queue_wait = qwait;
                    self.obs_cur_root = sp.id;
                    self.obs.record(sp);
                }
                let origin = Origin::Site { addr: reply_to, qid };
                if let Err(e) = self.start_query(&text, origin, dns, now, oc) {
                    // Malformed subqueries get an empty answer so the asker
                    // can converge; the error is recorded locally.
                    let _ = e;
                    oc.out.push(Outbound::Send {
                        to: reply_to,
                        msg: Message::SubAnswer { qid, fragment_xml: String::new(), partial: false },
                    });
                }
            }
            Message::SubQueryBatch { entries, reply_to } => {
                // A batch is just several subqueries on one wire message:
                // unpack and run each through the full SubQuery path
                // (hold/forward checks included).
                for (qid, text) in entries {
                    self.dispatch(Message::SubQuery { qid, text, reply_to }, dns, now, oc);
                }
            }
            Message::SubAnswer { qid, fragment_xml, partial } => {
                self.on_subanswer(qid, &fragment_xml, partial, dns, now, oc);
            }
            Message::Update { path, fields } => {
                self.on_update(path, fields, now, &mut oc.out);
            }
            Message::Delegate { path, to } => {
                self.on_delegate(path, to, now, &mut oc.out);
            }
            Message::TakeOwnership { path, fragment_xml, from } => {
                self.on_take_ownership(path, &fragment_xml, from, dns, now, &mut oc.out);
            }
            Message::TakeAck { path, new_owner } => {
                self.on_take_ack(path, new_owner, dns, now, oc);
            }
            Message::Subscribe { qid, text, endpoint } => {
                let reg = self.continuous.register(
                    qid,
                    endpoint,
                    &text,
                    &self.service,
                    &self.db.read(),
                    now,
                );
                match reg {
                    Ok(n) => oc.out.push(Outbound::ReplyUser {
                        endpoint: n.endpoint,
                        qid: n.qid,
                        answer_xml: n.answer_xml,
                        ok: true,
                        partial: false,
                    }),
                    Err(e) => oc.out.push(Outbound::ReplyUser {
                        endpoint,
                        qid,
                        answer_xml: format!("<error>{e}</error>"),
                        ok: false,
                        partial: false,
                    }),
                }
            }
            Message::Unsubscribe { qid } => {
                self.continuous.cancel(qid);
            }
            // Telemetry handling records no spans on purpose: scraping a
            // cluster must not perturb its trace structure, so the DES
            // equivalence oracle holds with telemetry on or off.
            Message::TelemetryRequest { qid, reply_to, endpoint, what } => {
                let payload = self.telemetry_payload(what, now);
                if reply_to.0 != 0 {
                    oc.out.push(Outbound::Send {
                        to: reply_to,
                        msg: Message::TelemetryReply { qid, payload },
                    });
                } else {
                    oc.out.push(Outbound::ReplyUser {
                        endpoint,
                        qid,
                        answer_xml: payload,
                        ok: true,
                        partial: false,
                    });
                }
            }
            Message::TelemetryReply { qid, payload } => {
                if self.telemetry_inbox.len() >= TELEMETRY_INBOX_CAP {
                    self.telemetry_inbox.remove(0);
                }
                self.telemetry_inbox.push((qid, payload));
            }
        }
    }

    // ------------------------------------------------------------------
    // Query processing
    // ------------------------------------------------------------------

    fn start_query(
        &mut self,
        text: &str,
        origin: Origin,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) -> CoreResult<()> {
        // A freshly joined site with an empty fragment cannot evaluate
        // anything (no ancestor chains to walk): forward to the service
        // apex owner.
        if self.db.read().doc().root().is_none() {
            let apex = self.service.dns_name(&IdPath::root());
            match self.resolver.resolve(&apex, dns, now).map(|o| o.addr) {
                Some(addr) if addr != self.addr => {
                    self.stats.queries_forwarded += 1;
                    if self.obs.on && self.obs_cur_root != 0 {
                        let mut sp = self.obs.span(
                            Link::ChildOf { parent: self.obs_cur_root },
                            self.addr.0,
                            SpanKind::Forward,
                            now,
                        );
                        sp.target = addr.0;
                        sp.detail = "apex".into();
                        self.obs.record(sp);
                    }
                    match origin {
                        Origin::User { endpoint, qid } => oc.out.push(Outbound::Send {
                            to: addr,
                            msg: Message::UserQuery { qid, text: text.to_string(), endpoint },
                        }),
                        Origin::Site { addr: reply_to, qid } => oc.out.push(Outbound::Send {
                            to: addr,
                            msg: Message::SubQuery { qid, text: text.to_string(), reply_to },
                        }),
                    }
                    return Ok(());
                }
                _ => {
                    return Err(CoreError::Unresolvable(
                        "site has no data and the service apex is unresolvable".into(),
                    ))
                }
            }
        }
        // NOTE: no cache enforcement here. The read path never takes the
        // write lock and never does eviction work; policy sweeps run on
        // the owner loop at quiescent points (`maybe_enforce`). A query
        // may therefore be served by a unit the policy has marked for
        // death — that is a staleness question §3.3's timestamp
        // predicates own, not a correctness question.
        let expr = sensorxpath::parse(text).map_err(CoreError::XPath)?;
        let plan = match plan_query(&expr, &self.service) {
            Ok(p) => p,
            Err(_) => {
                // Fallback for non-path / non-distributable queries: gather
                // everything below the document root, then evaluate the
                // original expression over the assembled fragment.
                let root_q = format!("/{}", self.service.schema.root_tag());
                let root_expr = sensorxpath::parse(&root_q).map_err(CoreError::XPath)?;
                let mut p = plan_query(&root_expr, &self.service)?;
                p.expr = expr.clone();
                p
            }
        };
        let pid = self.fresh_qid();
        // Deterministic per-query draw against cache_hit_prob.
        let use_cache = if self.config.cache_hit_prob >= 1.0 {
            true
        } else if self.config.cache_hit_prob <= 0.0 {
            false
        } else {
            let h = pid
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9);
            ((h >> 11) as f64 / (1u64 << 53) as f64) < self.config.cache_hit_prob
        };
        self.pending.insert(
            pid,
            Pending {
                plan,
                use_cache,
                origin,
                outstanding: HashMap::new(),
                retry: HashMap::new(),
                failed: Vec::new(),
                asked: HashSet::new(),
                iterations: 0,
                scratch: None,
                ephemeral: self.config.cache == CacheMode::Off,
                posed_at: now,
                obs_root: self.obs_cur_root,
                obs_asks: HashMap::new(),
            },
        );
        self.issue_iteration(pid, dns, now, oc);
        Ok(())
    }

    /// Starts the next QEG pass for a pending query: bumps the iteration
    /// counter, then either emits an [`ReadTaskKind::Execute`] task (shared
    /// database) or runs it inline (scratch-overlay queries — the overlay
    /// is private to the pending entry, so it never leaves the owner
    /// loop). Over-budget queries skip straight to finalization.
    fn issue_iteration(
        &mut self,
        pid: QueryId,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) {
        let Some(pending) = self.pending.get_mut(&pid) else { return };
        pending.iterations += 1;
        if pending.iterations > self.config.max_iterations {
            self.issue_finalize(pid, dns, now, oc);
            return;
        }
        let task = ReadTask {
            pid,
            posed_at: pending.posed_at,
            kind: ReadTaskKind::Execute {
                plan: pending.plan.clone(),
                ignore_complete: !pending.use_cache,
            },
        };
        if pending.scratch.is_some() {
            let done = {
                let p = self.pending.get(&pid).expect("still pending");
                perform_read(&task, &self.qeg, p.scratch.as_ref().expect("has scratch"))
            };
            self.apply_done(done, dns, now, oc);
        } else {
            self.tasks_in_flight += 1;
            oc.tasks.push(task);
        }
    }

    /// Owner-loop half of a completed read task (see
    /// [`OrganizingAgent::complete_read`]).
    fn apply_done(
        &mut self,
        done: ReadDone,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) {
        self.stats.time_create_xslt += done.time_create;
        self.stats.time_exec_xslt += done.time_exec;
        self.stats.time_extract += done.time_extract;
        self.stats.time_comm += done.time_comm;
        match done.result {
            ReadResult::Executed { asks } => {
                // Filter asks: drop anything already asked (unsatisfiable
                // or best-effort-stale), and dedup by path+kind.
                let Some(pending) = self.pending.get_mut(&done.pid) else { return };
                let mut fresh: Vec<Ask> = Vec::new();
                for ask in asks {
                    let key = (ask.path.clone(), ask.kind);
                    if pending.asked.contains(&key) {
                        self.stats.dropped_asks += 1;
                        continue;
                    }
                    pending.asked.insert(key);
                    fresh.push(ask);
                }
                // §3.2 outcome of the cached view, judged from the first
                // pass's fresh asks: nothing to fetch = hit; an ask
                // at/above the query LCA = the cache contributed nothing;
                // asks strictly below = the cached skeleton answered part
                // of the query.
                let lookup = (pending.iterations == 1).then(|| {
                    let lca = lca_id_path(&pending.plan.expr);
                    let outcome = if fresh.is_empty() {
                        CacheLookup::Hit
                    } else if fresh.iter().any(|a| a.path.is_prefix_of(&lca)) {
                        CacheLookup::Miss
                    } else {
                        CacheLookup::PartialMatch
                    };
                    if matches!(pending.origin, Origin::User { .. }) {
                        self.cache_mgr.record_lookup(outcome);
                    }
                    if pending.use_cache && !pending.ephemeral {
                        // O(depth) heat touch of the covering cached unit
                        // plus a demand-sketch bump — no locks, no scans.
                        self.cache_mgr.note_query(&lca, now);
                    }
                    outcome
                });
                if self.obs.on && pending.obs_root != 0 {
                    let mut sp = self.obs.span(
                        Link::ChildOf { parent: pending.obs_root },
                        self.addr.0,
                        SpanKind::Execute,
                        now,
                    );
                    sp.dur = done.time_create + done.time_exec;
                    sp.phases.compile = done.time_create;
                    sp.phases.execute = done.time_exec;
                    sp.detail = format!("iter={}", pending.iterations);
                    sp.cache = lookup.map(|l| match l {
                        CacheLookup::Hit => CacheOutcome::Hit,
                        CacheLookup::PartialMatch => CacheOutcome::PartialMatch,
                        CacheLookup::Miss => CacheOutcome::Miss,
                    });
                    self.obs.record(sp);
                }
                if fresh.is_empty() {
                    self.issue_finalize(done.pid, dns, now, oc);
                    return;
                }
                let dispatched = self.dispatch_subqueries(done.pid, fresh, dns, now, &mut oc.out);
                if dispatched == 0 {
                    self.issue_finalize(done.pid, dns, now, oc);
                }
            }
            ReadResult::UserAnswer { endpoint, qid, answer_xml, ok, partial } => {
                if ok {
                    self.stats.answers_sent += 1;
                }
                if partial {
                    self.stats.partial_answers += 1;
                }
                self.record_finalize(done.pid, done.time_extract + done.time_comm, partial, 0, "user", now);
                oc.out.push(Outbound::ReplyUser { endpoint, qid, answer_xml, ok, partial });
            }
            ReadResult::Fragment { addr, qid, fragment_xml, partial } => {
                self.stats.answers_sent += 1;
                if partial {
                    self.stats.partial_answers += 1;
                }
                self.record_finalize(done.pid, done.time_extract + done.time_comm, partial, addr.0, "site", now);
                oc.out.push(Outbound::Send {
                    to: addr,
                    msg: Message::SubAnswer { qid, fragment_xml, partial },
                });
            }
            ReadResult::ExecError { error_xml } => {
                self.finalize_error(done.pid, &error_xml, now, &mut oc.out);
            }
        }
    }

    /// Sends subqueries for a round of fresh asks. Owner resolution is
    /// memoized per (owner path, round), and asks that resolve to the same
    /// owner site are coalesced into one [`Message::SubQueryBatch`].
    fn dispatch_subqueries(
        &mut self,
        pid: QueryId,
        fresh: Vec<Ask>,
        dns: &mut AuthoritativeDns,
        now: f64,
        out: &mut Vec<Outbound>,
    ) -> usize {
        let plan_snapshot = self.pending[&pid].plan.clone();
        // Per-round owner-resolution memo: sibling asks share owner paths
        // often enough that duplicate resolver work is pure waste.
        let mut owners: HashMap<IdPath, Option<SiteAddr>> = HashMap::new();
        // Per-owner coalescing, insertion-ordered for determinism.
        let mut per_site: Vec<(SiteAddr, Vec<(QueryId, String)>)> = Vec::new();
        let mut site_slot: HashMap<SiteAddr, usize> = HashMap::new();
        let mut dispatched = 0usize;
        for ask in fresh {
            let text = if self.config.generalize_subqueries {
                generalized_subquery(&plan_snapshot, &ask)
            } else {
                literal_subquery(&plan_snapshot, &ask)
            };
            let addr = match owners.get(&ask.path) {
                Some(a) => *a,
                None => {
                    let a = self.resolve_owner(&ask.path, dns, now);
                    owners.insert(ask.path.clone(), a);
                    a
                }
            };
            match addr {
                Some(addr) if addr != self.addr => {
                    let sub_qid = self.fresh_qid();
                    let pending = self.pending.get_mut(&pid).expect("still pending");
                    if self.obs.on && pending.obs_root != 0 {
                        let mut sp = self.obs.span(
                            Link::ChildOf { parent: pending.obs_root },
                            self.addr.0,
                            SpanKind::Ask,
                            now,
                        );
                        sp.corr = sub_qid;
                        sp.target = addr.0;
                        sp.detail = format!("path={} kind={}", ask.path, ask.kind.as_str());
                        pending.obs_asks.insert(sub_qid, sp.id);
                        self.obs.record(sp);
                    }
                    pending.outstanding.insert(sub_qid, ask);
                    if self.config.retry.enabled() {
                        pending.retry.insert(
                            sub_qid,
                            RetryState { attempts: 0, next_at: now + self.config.retry.ask_timeout },
                        );
                    }
                    self.stats.subqueries_sent += 1;
                    dispatched += 1;
                    let slot = *site_slot.entry(addr).or_insert_with(|| {
                        per_site.push((addr, Vec::new()));
                        per_site.len() - 1
                    });
                    per_site[slot].1.push((sub_qid, text));
                }
                _ => {
                    // Either unresolvable or (stale DNS) points at
                    // ourselves: skip; the loop breaker will answer with
                    // what we have.
                    self.stats.dropped_asks += 1;
                }
            }
        }
        for (addr, mut entries) in per_site {
            if entries.len() == 1 {
                let (qid, text) = entries.pop().expect("one entry");
                out.push(Outbound::Send {
                    to: addr,
                    msg: Message::SubQuery { qid, text, reply_to: self.addr },
                });
            } else {
                self.stats.subquery_batches_sent += 1;
                out.push(Outbound::Send {
                    to: addr,
                    msg: Message::SubQueryBatch { entries, reply_to: self.addr },
                });
            }
        }
        dispatched
    }

    /// DNS resolution for the owner of `path`, preferring a forwarding
    /// entry when we migrated the node away ourselves.
    fn resolve_owner(
        &mut self,
        path: &IdPath,
        dns: &mut AuthoritativeDns,
        now: f64,
    ) -> Option<SiteAddr> {
        for (p, addr) in &self.forward {
            if p.is_prefix_of(path) {
                return Some(*addr);
            }
        }
        let name = self.service.dns_name(path);
        self.resolver.resolve(&name, dns, now).map(|o| o.addr)
    }

    /// Like [`OrganizingAgent::resolve_owner`] but bypasses the local DNS
    /// cache (used on retry, where the cached address is suspect).
    fn resolve_owner_fresh(
        &mut self,
        path: &IdPath,
        dns: &mut AuthoritativeDns,
        now: f64,
    ) -> Option<SiteAddr> {
        for (p, addr) in &self.forward {
            if p.is_prefix_of(path) {
                return Some(*addr);
            }
        }
        let name = self.service.dns_name(path);
        self.resolver.resolve_fresh(&name, dns, now).map(|o| o.addr)
    }

    fn on_subanswer(
        &mut self,
        sub_qid: QueryId,
        fragment_xml: &str,
        partial: bool,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) {
        // Find the pending query owning this sub-qid. A duplicate or late
        // answer (retries, network duplication) finds nothing — the first
        // copy already removed the sub-qid — and is ignored, which is the
        // idempotency the retry path relies on.
        let Some((&pid, _)) = self
            .pending
            .iter()
            .find(|(_, p)| p.outstanding.contains_key(&sub_qid))
        else {
            return; // late answer for a finished query
        };
        let mut merge_secs = 0.0;
        if !fragment_xml.is_empty() {
            let t = Instant::now();
            let parsed = sensorxml::parse(fragment_xml);
            self.stats.time_comm += t.elapsed().as_secs_f64();
            match parsed {
                Ok(frag) => {
                    let pending = self.pending.get_mut(&pid).expect("found above");
                    if pending.ephemeral && pending.scratch.is_none() {
                        pending.scratch = Some(self.db.read().clone());
                    }
                    // Merge into the private overlay when one exists;
                    // otherwise take the write lock on the shared database
                    // (the cache fill of §3.3).
                    let t_m = self.obs.on.then(Instant::now);
                    let merged = match pending.scratch.as_mut() {
                        Some(scratch) => merge_and_compact(scratch, &frag),
                        None => merge_and_compact(&mut self.db.write(), &frag),
                    };
                    if let Some(t_m) = t_m {
                        merge_secs = t_m.elapsed().as_secs_f64();
                    }
                    if merged {
                        self.stats.cache_merges += 1;
                    }
                }
                Err(_) => { /* drop malformed fragment */ }
            }
        }
        let pending = self.pending.get_mut(&pid).expect("found above");
        let ask = pending.outstanding.remove(&sub_qid);
        pending.retry.remove(&sub_qid);
        if self.obs.on && pending.obs_root != 0 {
            let parent = pending.obs_asks.remove(&sub_qid).unwrap_or(pending.obs_root);
            if let Some(a) = &ask {
                let mut sp = self.obs.span(
                    Link::ChildOf { parent },
                    self.addr.0,
                    SpanKind::SubAnswer,
                    now,
                );
                sp.partial = partial;
                sp.dur = merge_secs;
                sp.phases.merge = merge_secs;
                sp.detail = format!("path={}", a.path);
                self.obs.record(sp);
            }
        }
        if partial {
            // The answering site itself degraded: our covering node for
            // this ask inherits the partial flag.
            if let Some(a) = &ask {
                pending.failed.push(a.path.clone());
            }
        }
        let track = !pending.ephemeral && !partial;
        if let (true, Some(a)) = (track, ask) {
            // Mutation-path bookkeeping only: size the unit (same order as
            // the merge that just created it) and run the O(1) admission
            // decision. The budget sweep itself is deferred to a quiescent
            // point (`maybe_enforce`) so it can never stall this query's
            // remaining gather iterations.
            let cost = if self.cache_mgr.is_keep_forever() {
                UnitCost::default()
            } else {
                self.db.read().unit_cost(&a.path).unwrap_or_default()
            };
            self.cache_mgr.note_cached(a.path, cost, now);
        }
        let pending = self.pending.get_mut(&pid).expect("found above");
        if pending.outstanding.is_empty() {
            self.issue_iteration(pid, dns, now, oc);
        }
    }

    /// Retires a pending query and issues the read task that assembles
    /// its answer (inline for scratch-overlay queries).
    fn issue_finalize(
        &mut self,
        pid: QueryId,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) {
        let Some(pending) = self.pending.remove(&pid) else { return };
        if pending.iterations == 1 {
            self.stats.answered_locally += 1;
        }
        let failed = coalesce_covering(pending.failed);
        if self.obs.on && pending.obs_root != 0 {
            // The Finalize read completes after this entry is gone from
            // `pending`, so the trace root (and the stub count, §3.2's
            // partial-answer evidence) is parked until apply_done.
            self.finishing.insert(pid, (pending.obs_root, failed.len() as u64));
        }
        let kind = match pending.origin {
            Origin::User { endpoint, qid } => {
                ReadTaskKind::FinalizeUser { plan: pending.plan, endpoint, qid, failed }
            }
            Origin::Site { addr, qid } => {
                ReadTaskKind::FinalizeSite {
                    plan: pending.plan,
                    addr,
                    qid,
                    partial: !failed.is_empty(),
                }
            }
        };
        let task = ReadTask { pid, posed_at: pending.posed_at, kind };
        match pending.scratch {
            Some(scratch) => {
                let done = perform_read(&task, &self.qeg, &scratch);
                self.apply_done(done, dns, now, oc);
            }
            None => {
                self.tasks_in_flight += 1;
                oc.tasks.push(task);
            }
        }
    }

    /// Migration-side span hook: the migration module lives outside this
    /// file and `obs` is private, so ownership transfers record through
    /// this. All three hops of one transfer share `Link::Transfer{path}`,
    /// which the assembler chains into a single tree per moved node.
    pub(crate) fn record_migration(&self, kind: SpanKind, path: &IdPath, peer: u32, now: f64) {
        if !self.obs.on {
            return;
        }
        let mut sp =
            self.obs.span(Link::Transfer { path: path.to_string() }, self.addr.0, kind, now);
        sp.target = peer;
        self.obs.record(sp);
    }

    /// Emits the terminal span of a query's trace, consuming the root id
    /// parked in `finishing` by [`OrganizingAgent::issue_finalize`].
    fn record_finalize(
        &mut self,
        pid: QueryId,
        gather: f64,
        partial: bool,
        target: u32,
        detail: &str,
        now: f64,
    ) {
        if !self.obs.on {
            return; // `finishing` only gains entries while recording
        }
        let Some((root, stubs)) = self.finishing.remove(&pid) else { return };
        let mut sp = self.obs.span(Link::ChildOf { parent: root }, self.addr.0, SpanKind::Finalize, now);
        sp.dur = gather;
        sp.phases.gather = gather;
        sp.partial = partial;
        sp.corr = stubs;
        sp.target = target;
        sp.detail = detail.to_string();
        self.obs.record(sp);
    }

    fn finalize_error(
        &mut self,
        pid: QueryId,
        error_xml: &str,
        now: f64,
        out: &mut Vec<Outbound>,
    ) {
        let fin_root = self.finishing.remove(&pid).map(|(root, _)| root);
        let pending = self.pending.remove(&pid);
        if self.obs.on {
            let root = fin_root.or_else(|| pending.as_ref().map(|p| p.obs_root)).unwrap_or(0);
            if root != 0 {
                let mut sp = self.obs.span(
                    Link::ChildOf { parent: root },
                    self.addr.0,
                    SpanKind::Finalize,
                    now,
                );
                sp.detail = "error".to_string();
                self.obs.record(sp);
            }
        }
        let Some(pending) = pending else { return };
        match pending.origin {
            Origin::User { endpoint, qid } => out.push(Outbound::ReplyUser {
                endpoint,
                qid,
                answer_xml: error_xml.to_string(),
                ok: false,
                partial: false,
            }),
            Origin::Site { addr, qid } => out.push(Outbound::Send {
                to: addr,
                msg: Message::SubAnswer { qid, fragment_xml: String::new(), partial: false },
            }),
        }
    }

    // ------------------------------------------------------------------
    // Ask-level timeouts and retries
    // ------------------------------------------------------------------

    /// The earliest armed retry deadline across every pending query, or
    /// `None` when no timers are armed. Substrates use this to schedule
    /// the next [`OrganizingAgent::tick`].
    pub fn next_deadline(&self) -> Option<f64> {
        self.pending
            .values()
            .flat_map(|p| p.retry.values().map(|r| r.next_at))
            .min_by(f64::total_cmp)
    }

    /// Timer entry point, serial form: fires every expired ask timeout
    /// (resend or abandon) and drains any follow-up read tasks inline,
    /// mirroring [`OrganizingAgent::handle`].
    pub fn tick(&mut self, dns: &mut AuthoritativeDns, now: f64) -> Vec<Outbound> {
        let oc = self.on_tick(dns, now);
        self.drain_tasks(oc, dns, now)
    }

    /// Timer entry point, split form (see [`OrganizingAgent::handle_split`]).
    /// Expired asks are processed in sorted `(pid, sub_qid)` order so both
    /// substrates replay the same decision sequence.
    pub fn on_tick(&mut self, dns: &mut AuthoritativeDns, now: f64) -> HandleOutcome {
        let mut oc = HandleOutcome::default();
        let mut due: Vec<(QueryId, QueryId)> = self
            .pending
            .iter()
            .flat_map(|(&pid, p)| {
                p.retry
                    .iter()
                    .filter(|(_, r)| r.next_at <= now)
                    .map(move |(&sq, _)| (pid, sq))
            })
            .collect();
        due.sort_unstable();
        for (pid, sub_qid) in due {
            self.retry_or_abandon(pid, sub_qid, dns, now, &mut oc);
        }
        oc
    }

    /// One expired ask: resend through a *fresh* DNS resolution (the owner
    /// may have migrated or restarted elsewhere), or — once the budget is
    /// spent — abandon it and let the answer degrade to partial.
    fn retry_or_abandon(
        &mut self,
        pid: QueryId,
        sub_qid: QueryId,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) {
        let policy = self.config.retry;
        let resend = {
            let Some(p) = self.pending.get_mut(&pid) else { return };
            let Some(rs) = p.retry.get_mut(&sub_qid) else { return };
            if rs.attempts >= policy.max_retries {
                p.retry.remove(&sub_qid);
                if let Some(ask) = p.outstanding.remove(&sub_qid) {
                    p.failed.push(ask.path);
                    self.stats.asks_abandoned += 1;
                }
                if p.outstanding.is_empty() {
                    self.issue_iteration(pid, dns, now, oc);
                }
                return;
            }
            rs.attempts += 1;
            rs.next_at = now + policy.delay_after(rs.attempts);
            let Some(ask) = p.outstanding.get(&sub_qid) else { return };
            let text = if self.config.generalize_subqueries {
                generalized_subquery(&p.plan, ask)
            } else {
                literal_subquery(&p.plan, ask)
            };
            (ask.path.clone(), text)
        };
        let (path, text) = resend;
        // Re-resolve from the authoritative store: a stale cached address
        // is the likeliest reason the first attempt vanished.
        match self.resolve_owner_fresh(&path, dns, now) {
            Some(addr) if addr != self.addr => {
                self.stats.retries_sent += 1;
                if self.obs.on {
                    if let Some(p) = self.pending.get(&pid) {
                        if p.obs_root != 0 {
                            let parent =
                                p.obs_asks.get(&sub_qid).copied().unwrap_or(p.obs_root);
                            let mut sp = self.obs.span(
                                Link::ChildOf { parent },
                                self.addr.0,
                                SpanKind::Retry,
                                now,
                            );
                            sp.corr = sub_qid;
                            sp.target = addr.0;
                            self.obs.record(sp);
                        }
                    }
                }
                oc.out.push(Outbound::Send {
                    to: addr,
                    msg: Message::SubQuery { qid: sub_qid, text, reply_to: self.addr },
                });
            }
            _ => {
                // Owner currently unresolvable (or ourselves): keep the
                // timer armed; a later tick retries or abandons.
            }
        }
    }

    /// Fails every pending query with [`CoreError::SiteDown`]: user queries
    /// get an error reply, subqueries an empty partial answer. Used when a
    /// site shuts down with work in flight so no caller blocks forever.
    pub fn fail_pending(&mut self) -> Vec<Outbound> {
        let mut out = Vec::new();
        let mut pids: Vec<QueryId> = self.pending.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            let Some(pending) = self.pending.remove(&pid) else { continue };
            match pending.origin {
                Origin::User { endpoint, qid } => out.push(Outbound::ReplyUser {
                    endpoint,
                    qid,
                    answer_xml: format!("<error>{}</error>", CoreError::SiteDown),
                    ok: false,
                    partial: true,
                }),
                Origin::Site { addr, qid } => out.push(Outbound::Send {
                    to: addr,
                    msg: Message::SubAnswer {
                        qid,
                        fragment_xml: String::new(),
                        partial: true,
                    },
                }),
            }
        }
        out
    }

    /// Drains a [`HandleOutcome`]'s read tasks inline (FIFO), as
    /// [`OrganizingAgent::handle`] does.
    fn drain_tasks(
        &mut self,
        mut oc: HandleOutcome,
        dns: &mut AuthoritativeDns,
        now: f64,
    ) -> Vec<Outbound> {
        let mut out = std::mem::take(&mut oc.out);
        let mut queue: VecDeque<ReadTask> = oc.tasks.into();
        while let Some(task) = queue.pop_front() {
            let done = {
                let db = self.db.read();
                perform_read(&task, &self.qeg, &db)
            };
            let mut more = self.complete_read(done, dns, now);
            out.append(&mut more.out);
            queue.extend(more.tasks);
        }
        out
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    fn on_update(
        &mut self,
        path: IdPath,
        fields: Vec<(String, String)>,
        now: f64,
        out: &mut Vec<Outbound>,
    ) {
        // Forward if we migrated the node away.
        for (p, addr) in &self.forward {
            if p.is_prefix_of(&path) {
                self.stats.updates_forwarded += 1;
                out.push(Outbound::Send {
                    to: *addr,
                    msg: Message::Update { path, fields },
                });
                return;
            }
        }
        if self.migrating_out.iter().any(|p| p.is_prefix_of(&path)) {
            self.held.push(Message::Update { path, fields });
            self.stats.held_messages += 1;
            return;
        }
        let applied = {
            let mut db = self.db.write();
            db.status_at(&path) == Some(Status::Owned)
                && db.apply_update(&path, &fields, now).is_ok()
        };
        if applied {
            self.stats.updates_applied += 1;
            for n in self.continuous.on_update(&path, &self.db.read(), now) {
                out.push(Outbound::ReplyUser {
                    endpoint: n.endpoint,
                    qid: n.qid,
                    answer_xml: n.answer_xml,
                    ok: true,
                    partial: false,
                });
            }
        }
        // Non-owned updates are dropped: SAs are repointed on migration.
    }

    // ------------------------------------------------------------------
    // Migration hooks (protocol bodies live in migration.rs)
    // ------------------------------------------------------------------

    pub(crate) fn hold_set(&mut self) -> &mut HashSet<IdPath> {
        &mut self.migrating_out
    }

    pub(crate) fn forward_map(&mut self) -> &mut HashMap<IdPath, SiteAddr> {
        &mut self.forward
    }

    /// Holds queries targeting a path being migrated away.
    fn maybe_hold_query(&self, text: &str, msg: Message) -> Option<Message> {
        if self.migrating_out.is_empty() {
            return None;
        }
        let target = query_target(text)?;
        if self
            .migrating_out
            .iter()
            .any(|p| p.is_prefix_of(&target) || target.is_prefix_of(p))
        {
            Some(msg)
        } else {
            None
        }
    }

    /// Returns the forwarding destination when the query's target has been
    /// migrated away entirely.
    fn forward_target_for_query(&self, text: &str) -> Option<SiteAddr> {
        if self.forward.is_empty() {
            return None;
        }
        let target = query_target(text)?;
        for (p, addr) in &self.forward {
            if p.is_prefix_of(&target) {
                return Some(*addr);
            }
        }
        None
    }

    /// Replays held messages once a migration completes.
    pub(crate) fn release_held(
        &mut self,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) {
        let held = std::mem::take(&mut self.held);
        for msg in held {
            self.dispatch(msg, dns, now, oc);
        }
    }

    // Migration message bodies are implemented in `migration.rs`.
}

/// Merges a gathered fragment into `target`, then compacts the arena when
/// garbage dominates (merges replace content and leave dead slots behind).
/// Returns whether the merge succeeded.
fn merge_and_compact(target: &mut SiteDatabase, frag: &sensorxml::Document) -> bool {
    let merged = target.merge_fragment(frag).is_ok();
    if target.doc().arena_len() > 256
        && target.doc().arena_len() > 3 * target.doc().reachable_count()
    {
        target.compact();
    }
    merged
}

/// Sorts, dedups, and prefix-coalesces a set of failed ask paths into
/// covering paths: a path whose ancestor also failed is subsumed by it.
fn coalesce_covering(mut failed: Vec<IdPath>) -> Vec<IdPath> {
    failed.sort();
    failed.dedup();
    let mut out: Vec<IdPath> = Vec::new();
    for p in failed {
        if !out.iter().any(|q| q.is_prefix_of(&p)) {
            out.push(p);
        }
    }
    out
}

/// The id-pinned target of a query text (its LCA path), used for migration
/// holds and forwarding decisions.
fn query_target(text: &str) -> Option<IdPath> {
    let expr: Expr = sensorxpath::parse(text).ok()?;
    let p = lca_id_path(&expr);
    if p.is_empty() {
        None
    } else {
        Some(p)
    }
}

// ---------------------------------------------------------------------
// Sensing agents
// ---------------------------------------------------------------------

/// A sensor proxy: produces timestamped update messages for the nodes it
/// monitors. Reading extraction (image processing on webcam frames in the
/// paper's prototype) is abstracted to a closure over a deterministic RNG,
/// matching the paper's own "fake SAs that produce random data updates"
/// used in every large-scale experiment.
#[derive(Debug)]
pub struct SensingAgent {
    /// Nodes this SA reports on.
    pub targets: Vec<IdPath>,
    /// The OA address updates are sent to (repointed on migration).
    pub report_to: SiteAddr,
    seed: u64,
    counter: u64,
}

impl SensingAgent {
    /// Creates an SA reporting on `targets` to `report_to`.
    pub fn new(targets: Vec<IdPath>, report_to: SiteAddr, seed: u64) -> SensingAgent {
        SensingAgent { targets, report_to, seed, counter: 0 }
    }

    /// Produces the next update message (round-robin over targets, with a
    /// deterministic pseudo-random availability flip).
    pub fn next_update(&mut self) -> Option<(SiteAddr, Message)> {
        if self.targets.is_empty() {
            return None;
        }
        let idx = (self.counter as usize) % self.targets.len();
        self.counter += 1;
        // SplitMix64 keeps the SA dependency-free and deterministic.
        let mut z = self.seed.wrapping_add(self.counter.wrapping_mul(0x9E3779B97F4A7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        let avail = (z ^ (z >> 31)) & 1 == 0;
        let path = self.targets[idx].clone();
        Some((
            self.report_to,
            Message::Update {
                path,
                fields: vec![(
                    "available".to_string(),
                    if avail { "yes" } else { "no" }.to_string(),
                )],
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensing_agent_round_robins_targets() {
        let a = IdPath::from_pairs([("usRegion", "NE")]);
        let b = a.child("state", "PA");
        let mut sa = SensingAgent::new(vec![a.clone(), b.clone()], SiteAddr(1), 42);
        let (_, m1) = sa.next_update().unwrap();
        let (_, m2) = sa.next_update().unwrap();
        let (_, m3) = sa.next_update().unwrap();
        let path_of = |m: &Message| match m {
            Message::Update { path, .. } => path.clone(),
            _ => panic!(),
        };
        assert_eq!(path_of(&m1), a);
        assert_eq!(path_of(&m2), b);
        assert_eq!(path_of(&m3), a);
    }

    #[test]
    fn sensing_agent_is_deterministic() {
        let p = IdPath::from_pairs([("usRegion", "NE")]);
        let mut s1 = SensingAgent::new(vec![p.clone()], SiteAddr(1), 7);
        let mut s2 = SensingAgent::new(vec![p], SiteAddr(1), 7);
        for _ in 0..10 {
            let (_, m1) = s1.next_update().unwrap();
            let (_, m2) = s2.next_update().unwrap();
            let f = |m: &Message| match m {
                Message::Update { fields, .. } => fields.clone(),
                _ => panic!(),
            };
            assert_eq!(f(&m1), f(&m2));
        }
    }

    #[test]
    fn empty_sensing_agent_yields_nothing() {
        let mut sa = SensingAgent::new(vec![], SiteAddr(1), 0);
        assert!(sa.next_update().is_none());
    }
}
