//! IDable nodes, ID paths, and local information (Definitions 3.1 / 3.2).

use std::fmt;

use sensorxml::{Document, NodeId};

use crate::service::Schema;

/// A root-to-node sequence of `(element name, id)` pairs — the globally
/// addressable identity of an IDable node ("each IDable node can be
/// uniquely identified by the sequence of IDs on the path from the root").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct IdPath {
    segments: Vec<(String, String)>,
}

impl IdPath {
    /// An empty path (the document node).
    pub fn root() -> IdPath {
        IdPath::default()
    }

    /// Builds a path from `(tag, id)` pairs, root first.
    pub fn from_pairs<T: Into<String>, U: Into<String>>(
        pairs: impl IntoIterator<Item = (T, U)>,
    ) -> IdPath {
        IdPath {
            segments: pairs
                .into_iter()
                .map(|(t, i)| (t.into(), i.into()))
                .collect(),
        }
    }

    /// The `(tag, id)` segments, root first.
    pub fn segments(&self) -> &[(String, String)] {
        &self.segments
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True for the empty (document-node) path.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Appends a segment, returning the extended path.
    pub fn child(&self, tag: impl Into<String>, id: impl Into<String>) -> IdPath {
        let mut p = self.clone();
        p.segments.push((tag.into(), id.into()));
        p
    }

    /// The parent path (`None` for the empty path).
    pub fn parent(&self) -> Option<IdPath> {
        if self.segments.is_empty() {
            None
        } else {
            Some(IdPath {
                segments: self.segments[..self.segments.len() - 1].to_vec(),
            })
        }
    }

    /// The last `(tag, id)` segment.
    pub fn last(&self) -> Option<(&str, &str)> {
        self.segments.last().map(|(t, i)| (t.as_str(), i.as_str()))
    }

    /// True if `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &IdPath) -> bool {
        other.segments.len() >= self.segments.len()
            && other.segments[..self.segments.len()] == self.segments[..]
    }

    /// Renders the absolute XPath selecting exactly this node:
    /// `/usRegion[@id='NE']/state[@id='PA']/...`.
    pub fn to_xpath(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (tag, id) in &self.segments {
            let _ = write!(s, "/{tag}[@id='{id}']");
        }
        if s.is_empty() {
            s.push('/');
        }
        s
    }

    /// Resolves this path inside a document, walking `(tag, id)` child
    /// lookups from the root. Returns `None` if any segment is missing or
    /// the root does not match.
    pub fn resolve(&self, doc: &Document) -> Option<NodeId> {
        let root = doc.root()?;
        let mut segs = self.segments.iter();
        let (rt, ri) = segs.next()?.clone();
        if doc.name(root) != rt || doc.attr(root, "id") != Some(&ri) {
            return None;
        }
        let mut cur = root;
        for (tag, id) in segs {
            cur = doc.child_by_name_id(cur, tag, id)?;
        }
        Some(cur)
    }

    /// [`IdPath::resolve`] with every segment forced through the linear
    /// sibling scan instead of the sibling index — the pre-index baseline,
    /// kept public for benchmarks and as a property-test oracle.
    pub fn resolve_linear(&self, doc: &Document) -> Option<NodeId> {
        let root = doc.root()?;
        let mut segs = self.segments.iter();
        let (rt, ri) = segs.next()?.clone();
        if doc.name(root) != rt || doc.attr(root, "id") != Some(&ri) {
            return None;
        }
        let mut cur = root;
        for (tag, id) in segs {
            cur = doc.child_by_name_id_linear(cur, tag, id)?;
        }
        Some(cur)
    }

    /// The ID path of `node` inside `doc`, read from the `id` attributes on
    /// the root path. Returns `None` if any node on the path lacks an id.
    pub fn of_node(doc: &Document, node: NodeId) -> Option<IdPath> {
        let mut rev: Vec<(String, String)> = Vec::new();
        let mut cur = Some(node);
        while let Some(n) = cur {
            let id = doc.attr(n, "id")?;
            rev.push((doc.name(n).to_string(), id.to_string()));
            cur = doc.parent(n);
        }
        rev.reverse();
        Some(IdPath { segments: rev })
    }
}

impl fmt::Display for IdPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            return write!(f, "/");
        }
        for (tag, id) in &self.segments {
            write!(f, "/{tag}={id}")?;
        }
        Ok(())
    }
}

/// Dynamic IDable check (Definition 3.1): the node has an `id` attribute
/// unique among its same-named siblings, and its parent chain up to the
/// root is IDable too. The document root is IDable by definition (but we
/// still require an id so it is addressable).
pub fn is_idable_node(doc: &Document, node: NodeId) -> bool {
    if !doc.is_element(node) {
        return false;
    }
    let Some(id) = doc.attr(node, "id") else {
        return false;
    };
    match doc.parent(node) {
        None => doc.root() == Some(node),
        Some(parent) => {
            let name = doc.name(node);
            let dups = doc
                .child_elements(parent)
                .filter(|&c| doc.name(c) == name && doc.attr(c, "id") == Some(id))
                .count();
            dups == 1 && is_idable_node(doc, parent)
        }
    }
}

/// Attributes internal to the fragment machinery, never part of user
/// answers: `status` and the freshness timestamp.
pub const STATUS_ATTR: &str = "status";

/// Copies `node`'s **local information** (Definition 3.2) from `src` into
/// `dst` as a detached element: all attributes, all non-IDable children
/// with their full subtrees, and ID-only stubs for IDable children.
///
/// IDable-ness is decided by the `schema` (tags), which is how a site can
/// extract fragments without global document knowledge.
pub fn copy_local_information(
    src: &Document,
    node: NodeId,
    schema: &Schema,
    dst: &mut Document,
) -> NodeId {
    let e = src.shallow_copy_into(node, dst);
    for c in src.children(node) {
        let c = *c;
        if src.is_element(c) && schema.is_idable(src.name(c)) {
            let stub = id_stub(src, c, dst);
            dst.append_child(e, stub);
        } else {
            let full = src.deep_copy_into(c, dst);
            dst.append_child(e, full);
        }
    }
    e
}

/// Copies `node`'s **local ID information** (Definition 3.2): the node's
/// `(name, id)` plus ID stubs for its IDable children.
pub fn copy_local_id_information(
    src: &Document,
    node: NodeId,
    schema: &Schema,
    dst: &mut Document,
) -> NodeId {
    let e = id_stub(src, node, dst);
    for c in src.child_elements(node) {
        if schema.is_idable(src.name(c)) {
            let stub = id_stub(src, c, dst);
            dst.append_child(e, stub);
        }
    }
    e
}

/// An element carrying only the name and `id` attribute of `node`.
fn id_stub(src: &Document, node: NodeId, dst: &mut Document) -> NodeId {
    let e = dst.create_element(src.name(node).to_string());
    if let Some(id) = src.attr(node, "id") {
        dst.set_attr(e, "id", id.to_string());
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Schema;
    use sensorxml::parse;

    fn doc() -> Document {
        parse(
            r#"<neighborhood id="Oakland" zipcode="15213">
                 <block id="1">
                   <parkingSpace id="1"><available>yes</available></parkingSpace>
                 </block>
                 <block id="2"/>
                 <available-spaces>8</available-spaces>
               </neighborhood>"#,
        )
        .unwrap()
    }

    fn schema() -> Schema {
        Schema::chain(["neighborhood", "block", "parkingSpace"])
    }

    #[test]
    fn idpath_basics() {
        let p = IdPath::from_pairs([("a", "1"), ("b", "2")]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.last(), Some(("b", "2")));
        assert_eq!(p.to_xpath(), "/a[@id='1']/b[@id='2']");
        assert_eq!(p.to_string(), "/a=1/b=2");
        assert_eq!(p.parent().unwrap().to_string(), "/a=1");
        assert!(p.parent().unwrap().is_prefix_of(&p));
        assert!(!p.is_prefix_of(&p.parent().unwrap()));
        let c = p.child("c", "3");
        assert_eq!(c.len(), 3);
        assert!(p.is_prefix_of(&c));
    }

    #[test]
    fn idpath_root_rendering() {
        assert_eq!(IdPath::root().to_xpath(), "/");
        assert_eq!(IdPath::root().to_string(), "/");
        assert!(IdPath::root().is_empty());
    }

    #[test]
    fn resolve_and_of_node_roundtrip() {
        let d = doc();
        let p = IdPath::from_pairs([
            ("neighborhood", "Oakland"),
            ("block", "1"),
            ("parkingSpace", "1"),
        ]);
        let node = p.resolve(&d).unwrap();
        assert_eq!(d.name(node), "parkingSpace");
        assert_eq!(IdPath::of_node(&d, node).unwrap(), p);
        // Missing segments fail.
        assert!(IdPath::from_pairs([("neighborhood", "Oakland"), ("block", "9")])
            .resolve(&d)
            .is_none());
        // Wrong root fails.
        assert!(IdPath::from_pairs([("city", "X")]).resolve(&d).is_none());
    }

    #[test]
    fn dynamic_idable_detection() {
        let d = doc();
        let root = d.root().unwrap();
        assert!(is_idable_node(&d, root));
        let b1 = d.child_by_name_id(root, "block", "1").unwrap();
        assert!(is_idable_node(&d, b1));
        // available-spaces has no id.
        let avail = d.child_by_name(root, "available-spaces").unwrap();
        assert!(!is_idable_node(&d, avail));
    }

    #[test]
    fn duplicate_sibling_ids_break_idability() {
        let d = parse(r#"<a id="r"><b id="1"/><b id="1"/></a>"#).unwrap();
        let root = d.root().unwrap();
        let b = d.child_by_name(root, "b").unwrap();
        assert!(!is_idable_node(&d, b));
        // ...and a child of a non-IDable parent is not IDable either.
        let d2 = parse(r#"<a id="r"><b id="1"/><b id="1"><c id="x"/></b></a>"#).unwrap();
        let root2 = d2.root().unwrap();
        let b2 = d2.child_elements(root2).nth(1).unwrap();
        let c = d2.child_by_name(b2, "c").unwrap();
        assert!(!is_idable_node(&d2, c));
    }

    #[test]
    fn local_information_matches_paper_example() {
        let d = doc();
        let mut dst = Document::new();
        let li = copy_local_information(&d, d.root().unwrap(), &schema(), &mut dst);
        dst.set_root(li).unwrap();
        // All attributes present.
        assert_eq!(dst.attr(li, "id"), Some("Oakland"));
        assert_eq!(dst.attr(li, "zipcode"), Some("15213"));
        // IDable children are bare ID stubs.
        let b1 = dst.child_by_name_id(li, "block", "1").unwrap();
        assert!(dst.children(b1).is_empty());
        assert_eq!(dst.attrs(b1).len(), 1);
        // Non-IDable children keep their subtree.
        let avail = dst.child_by_name(li, "available-spaces").unwrap();
        assert_eq!(dst.text_content(avail), "8");
    }

    #[test]
    fn local_id_information_is_a_subset() {
        let d = doc();
        let mut dst = Document::new();
        let li = copy_local_id_information(&d, d.root().unwrap(), &schema(), &mut dst);
        dst.set_root(li).unwrap();
        assert_eq!(dst.attr(li, "id"), Some("Oakland"));
        assert_eq!(dst.attr(li, "zipcode"), None); // ids only
        assert_eq!(dst.child_elements(li).count(), 2); // two block stubs
        assert!(dst.child_by_name(li, "available-spaces").is_none());
    }
}
