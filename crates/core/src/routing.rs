//! Self-starting distributed queries (§3.4).
//!
//! A query posed anywhere on the Internet is routed *directly* to the site
//! owning the lowest common ancestor (LCA) of its result, with no global
//! state: the DNS-style name of the LCA is extracted from the query text
//! itself (the maximal `/tag[@id='x']` prefix), resolved through DNS, and
//! the query is sent to the returned address.

use irisdns::DnsName;
use sensorxpath::analysis::id_prefix;
use sensorxpath::Expr;

use crate::error::{CoreError, CoreResult};
use crate::idable::IdPath;
use crate::service::Service;

/// Extracts the LCA ID path of a parsed query: the id-pinned prefix of its
/// steps (empty when the query pins nothing below the document root).
pub fn lca_id_path(query: &Expr) -> IdPath {
    IdPath::from_pairs(id_prefix(query))
}

/// Builds the DNS-style site name for a query — the paper's example yields
/// `pittsburgh.allegheny.pa.ne.parking.intel-iris.net`. Queries that pin no
/// prefix (`//parkingSpace[...]`) route to the service apex (the root
/// owner's name).
pub fn lca_dns_name(query: &Expr, service: &Service) -> DnsName {
    let path = lca_id_path(query);
    service.dns_name(&path)
}

/// Parses a query string and produces `(parsed query, LCA id path, DNS
/// name)` in one go — what a front-end does for every user query.
pub fn route_query(text: &str, service: &Service) -> CoreResult<(Expr, IdPath, DnsName)> {
    let expr = sensorxpath::parse(text).map_err(CoreError::XPath)?;
    let path = lca_id_path(&expr);
    let name = service.dns_name(&path);
    Ok((expr, path, name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;

    #[test]
    fn paper_query_routes_to_pittsburgh() {
        let svc = Service::parking();
        let (_, path, name) = route_query(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
             /city[@id='Pittsburgh']\
             /neighborhood[@id='Oakland' or @id='Shadyside']\
             /block[@id='1']/parkingSpace[available='yes']",
            &svc,
        )
        .unwrap();
        assert_eq!(path.last(), Some(("city", "Pittsburgh")));
        assert_eq!(
            name.to_string(),
            "pittsburgh.allegheny.pa.ne.parking.intel-iris.net"
        );
    }

    #[test]
    fn fully_pinned_query_routes_to_leaf() {
        let svc = Service::parking();
        let (_, path, _) = route_query(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
             /neighborhood[@id='Oakland']/block[@id='1']",
            &svc,
        )
        .unwrap();
        assert_eq!(path.len(), 6);
        assert_eq!(path.last(), Some(("block", "1")));
    }

    #[test]
    fn unpinned_query_routes_to_apex() {
        let svc = Service::parking();
        let (_, path, name) = route_query("//parkingSpace[available='yes']", &svc).unwrap();
        assert!(path.is_empty());
        assert_eq!(name.to_string(), "parking.intel-iris.net");
    }

    #[test]
    fn bad_query_is_an_error() {
        let svc = Service::parking();
        assert!(route_query("/a[", &svc).is_err());
    }
}
