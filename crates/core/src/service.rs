//! Service definitions: the document schema and service-wide constants.
//!
//! A *service* (Parking Space Finder, coastal monitoring, ...) fixes the
//! XML document shape: which element tags are IDable (Definition 3.1),
//! how they nest, the DNS suffix under which node names are registered,
//! and the name of the freshness field used by query-based consistency.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use irisdns::DnsName;

use crate::idable::IdPath;

/// Static schema knowledge about the IDable hierarchy.
///
/// Only the *IDable* skeleton is declared; non-IDable content (readings,
/// GPS coordinates, prices...) is schemaless, matching the paper's
/// "constantly evolving schema" motivation — schema changes below IDable
/// nodes need no coordination (§4).
#[derive(Debug, Clone)]
pub struct Schema {
    root_tag: String,
    idable: HashSet<String>,
    /// IDable child tags per IDable tag.
    children: HashMap<String, Vec<String>>,
}

impl Schema {
    /// Builds a schema from `(tag, [idable child tags])` pairs; `root_tag`
    /// must appear among the tags.
    pub fn new(
        root_tag: impl Into<String>,
        edges: impl IntoIterator<Item = (String, Vec<String>)>,
    ) -> Schema {
        let children: HashMap<String, Vec<String>> = edges.into_iter().collect();
        let mut idable: HashSet<String> = children.keys().cloned().collect();
        for kids in children.values() {
            idable.extend(kids.iter().cloned());
        }
        let root_tag = root_tag.into();
        idable.insert(root_tag.clone());
        Schema { root_tag, idable, children }
    }

    /// A linear chain schema (each level has exactly one IDable child tag)
    /// — the shape of the paper's geographic hierarchy.
    pub fn chain<S: Into<String>>(tags: impl IntoIterator<Item = S>) -> Schema {
        let tags: Vec<String> = tags.into_iter().map(Into::into).collect();
        assert!(!tags.is_empty(), "chain schema needs at least one tag");
        let mut edges = Vec::new();
        for w in tags.windows(2) {
            edges.push((w[0].clone(), vec![w[1].clone()]));
        }
        if let Some(last) = tags.last() {
            edges.push((last.clone(), Vec::new()));
        }
        Schema::new(tags[0].clone(), edges)
    }

    /// The document root tag.
    pub fn root_tag(&self) -> &str {
        &self.root_tag
    }

    /// True if `tag` denotes IDable nodes.
    pub fn is_idable(&self, tag: &str) -> bool {
        self.idable.contains(tag)
    }

    /// IDable child tags of `tag`.
    pub fn idable_children(&self, tag: &str) -> &[String] {
        self.children.get(tag).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All IDable tags at or below `tag` (including `tag` itself), i.e. the
    /// tags whose local information is part of any answer rooted at `tag`.
    pub fn idable_descendants_inclusive(&self, tag: &str) -> HashSet<String> {
        let mut out = HashSet::new();
        let mut stack = vec![tag.to_string()];
        while let Some(t) = stack.pop() {
            if !out.insert(t.clone()) {
                continue;
            }
            for c in self.idable_children(&t) {
                stack.push(c.clone());
            }
        }
        out
    }

    /// All IDable tags in the schema.
    pub fn idable_tags(&self) -> impl Iterator<Item = &str> {
        self.idable.iter().map(String::as_str)
    }
}

/// A deployed sensor service.
#[derive(Debug, Clone)]
pub struct Service {
    /// Human name, e.g. "parking".
    pub name: String,
    /// DNS suffix under which IDable node names live, e.g.
    /// `parking.intel-iris.net`.
    pub dns_suffix: String,
    pub schema: Schema,
    /// Attribute/element name carrying per-node update timestamps
    /// ("timestamp" in the paper).
    pub timestamp_field: String,
}

impl Service {
    /// Creates a service with the conventional `timestamp` field.
    pub fn new(name: impl Into<String>, dns_suffix: impl Into<String>, schema: Schema) -> Service {
        Service {
            name: name.into(),
            dns_suffix: dns_suffix.into(),
            schema,
            timestamp_field: "timestamp".to_string(),
        }
    }

    /// The paper's Parking Space Finder service schema:
    /// usRegion → state → county → city → neighborhood → block → parkingSpace.
    pub fn parking() -> Arc<Service> {
        Arc::new(Service::new(
            "parking",
            "parking.intel-iris.net",
            Schema::chain([
                "usRegion",
                "state",
                "county",
                "city",
                "neighborhood",
                "block",
                "parkingSpace",
            ]),
        ))
    }

    /// The DNS name of an IDable node given its root-to-node id path.
    pub fn dns_name(&self, path: &IdPath) -> DnsName {
        let ids: Vec<&str> = path.segments().iter().map(|(_, id)| id.as_str()).collect();
        DnsName::from_id_path(&ids, &self.dns_suffix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_schema_shape() {
        let s = Schema::chain(["a", "b", "c"]);
        assert_eq!(s.root_tag(), "a");
        assert!(s.is_idable("a") && s.is_idable("b") && s.is_idable("c"));
        assert!(!s.is_idable("x"));
        assert_eq!(s.idable_children("a"), &["b".to_string()]);
        assert_eq!(s.idable_children("c"), &[] as &[String]);
    }

    #[test]
    fn idable_descendants() {
        let s = Schema::new(
            "city",
            vec![
                ("city".to_string(), vec!["neighborhood".to_string()]),
                ("neighborhood".to_string(), vec!["block".to_string(), "park".to_string()]),
                ("block".to_string(), vec![]),
                ("park".to_string(), vec![]),
            ],
        );
        let d = s.idable_descendants_inclusive("neighborhood");
        assert_eq!(d.len(), 3);
        assert!(d.contains("neighborhood") && d.contains("block") && d.contains("park"));
        let all = s.idable_descendants_inclusive("city");
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn parking_service_dns_name() {
        let svc = Service::parking();
        let path = IdPath::from_pairs([
            ("usRegion", "NE"),
            ("state", "PA"),
            ("county", "Allegheny"),
            ("city", "Pittsburgh"),
        ]);
        assert_eq!(
            svc.dns_name(&path).to_string(),
            "pittsburgh.allegheny.pa.ne.parking.intel-iris.net"
        );
    }
}
