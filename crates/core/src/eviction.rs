//! Cache management policies (§3.3).
//!
//! The paper's prototype "never removes cached data, but only replaces it
//! if a fresh copy of the same data is available" and leaves richer cache
//! management to future work. This module provides that future work: a
//! size-budgeted LRU over *cached units* (the subtrees that arrived via
//! fragment merges) and a TTL sweep, both of which evict strictly in units
//! of local information, preserving C1/C2 by construction (eviction
//! demotes a unit to an `incomplete` ID stub via
//! [`SiteDatabase::evict`]).

use std::collections::HashMap;

use crate::fragment::{SiteDatabase, Status};
use crate::idable::IdPath;

/// When to evict cached units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionPolicy {
    /// The paper's prototype policy: cache forever, replace on refresh.
    KeepForever,
    /// Evict least-recently-used units once the fragment document exceeds
    /// `max_nodes` stored nodes.
    Lru { max_nodes: usize },
    /// Evict units older (since last touch) than `max_age` seconds.
    Ttl { max_age: f64 },
}

/// Tracks cached units (root paths of merged fragments) and applies the
/// policy against a site database.
#[derive(Debug)]
pub struct CacheManager {
    policy: EvictionPolicy,
    /// Cached unit → last touch time.
    units: HashMap<IdPath, f64>,
    pub evictions: u64,
}

impl CacheManager {
    /// Creates a manager with the given policy.
    pub fn new(policy: EvictionPolicy) -> CacheManager {
        CacheManager { policy, units: HashMap::new(), evictions: 0 }
    }

    /// The active policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// Number of tracked cached units.
    pub fn tracked(&self) -> usize {
        self.units.len()
    }

    /// Records that a fragment rooted at `unit` was cached (or refreshed).
    pub fn note_cached(&mut self, unit: IdPath, now: f64) {
        self.units.insert(unit, now);
    }

    /// Records that a query used the cached data under `unit`.
    pub fn note_used(&mut self, unit: &IdPath, now: f64) {
        if let Some(t) = self.units.get_mut(unit) {
            *t = now;
        }
    }

    /// Applies the policy, evicting from `db` as needed. Returns the paths
    /// evicted. Owned data is never touched ([`SiteDatabase::evict`]
    /// refuses it, and owned units are not tracked to begin with).
    pub fn enforce(&mut self, db: &mut SiteDatabase, now: f64) -> Vec<IdPath> {
        // Drop tracking for units that no longer exist or got promoted.
        self.units.retain(|p, _| {
            matches!(db.status_at(p), Some(Status::Complete | Status::IdComplete))
        });
        let mut evicted = Vec::new();
        match self.policy {
            EvictionPolicy::KeepForever => {}
            EvictionPolicy::Ttl { max_age } => {
                let expired: Vec<IdPath> = self
                    .units
                    .iter()
                    .filter(|(_, &t)| now - t > max_age)
                    .map(|(p, _)| p.clone())
                    .collect();
                for p in expired {
                    if db.evict(&p).is_ok() {
                        self.units.remove(&p);
                        self.evictions += 1;
                        evicted.push(p);
                    }
                }
            }
            EvictionPolicy::Lru { max_nodes } => {
                while db.doc().reachable_count() > max_nodes && !self.units.is_empty() {
                    let victim = self
                        .units
                        .iter()
                        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                        .map(|(p, _)| p.clone())
                        .expect("non-empty");
                    self.units.remove(&victim);
                    if db.evict(&victim).is_ok() {
                        self.evictions += 1;
                        evicted.push(victim);
                    }
                }
                if db.doc().arena_len() > 2 * db.doc().reachable_count() {
                    db.compact();
                }
            }
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use sensorxml::parse;

    fn setup() -> (SiteDatabase, SiteDatabase, Vec<IdPath>) {
        let master = parse(
            r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
                 <neighborhood id="n1">
                   <block id="1"><parkingSpace id="1"><available>no</available></parkingSpace></block>
                   <block id="2"><parkingSpace id="1"><available>no</available></parkingSpace></block>
                   <block id="3"><parkingSpace id="1"><available>no</available></parkingSpace></block>
                 </neighborhood>
               </city></county></state></usRegion>"#,
        )
        .unwrap();
        let root = IdPath::from_pairs([("usRegion", "NE")]);
        let mut owner = SiteDatabase::new(Service::parking());
        owner.bootstrap_owned(&master, &root, true).unwrap();
        let nb = root
            .child("state", "PA")
            .child("county", "A")
            .child("city", "P")
            .child("neighborhood", "n1");
        let blocks: Vec<IdPath> = (1..=3).map(|i| nb.child("block", i.to_string())).collect();
        let cache = SiteDatabase::new(Service::parking());
        (owner, cache, blocks)
    }

    fn fill(owner: &SiteDatabase, cache: &mut SiteDatabase, mgr: &mut CacheManager, blocks: &[IdPath], t0: f64) {
        for (i, b) in blocks.iter().enumerate() {
            let frag = owner.export_subtrees(std::slice::from_ref(b)).unwrap();
            cache.merge_fragment(&frag).unwrap();
            mgr.note_cached(b.clone(), t0 + i as f64);
        }
    }

    #[test]
    fn keep_forever_never_evicts() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::KeepForever);
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        assert!(mgr.enforce(&mut cache, 1e9).is_empty());
        assert_eq!(mgr.tracked(), 3);
    }

    #[test]
    fn ttl_evicts_only_expired_units() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::Ttl { max_age: 10.0 });
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0); // touched at 0,1,2
        let evicted = mgr.enforce(&mut cache, 11.5); // 0 and 1 expired
        assert_eq!(evicted.len(), 2);
        assert_eq!(cache.status_at(&blocks[0]), Some(Status::Incomplete));
        assert_eq!(cache.status_at(&blocks[2]), Some(Status::Complete));
        assert_eq!(mgr.evictions, 2);
    }

    #[test]
    fn ttl_touch_refreshes_age() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::Ttl { max_age: 10.0 });
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        mgr.note_used(&blocks[0], 9.0);
        let evicted = mgr.enforce(&mut cache, 11.5);
        // Block 0 was touched at 9.0: survives. Block 1 (t=1) expires.
        assert!(!evicted.contains(&blocks[0]));
        assert!(evicted.contains(&blocks[1]));
    }

    #[test]
    fn lru_respects_node_budget() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::Lru { max_nodes: 1 });
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        let before = cache.doc().reachable_count();
        let evicted = mgr.enforce(&mut cache, 100.0);
        // Budget of 1 node cannot hold everything: all cached units go
        // (the ancestor ID skeleton remains — it is not a cached unit).
        assert_eq!(evicted.len(), 3);
        assert!(cache.doc().reachable_count() < before);
        for b in &blocks {
            assert_eq!(cache.status_at(b), Some(Status::Incomplete));
        }
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let (owner, mut cache, blocks) = setup();
        // A budget that forces exactly one eviction.
        let mut mgr = CacheManager::new(EvictionPolicy::KeepForever);
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        let nodes_with_all = cache.doc().reachable_count();
        let mut mgr = CacheManager::new(EvictionPolicy::Lru { max_nodes: nodes_with_all - 1 });
        for (i, b) in blocks.iter().enumerate() {
            mgr.note_cached(b.clone(), i as f64);
        }
        mgr.note_used(&blocks[0], 50.0); // block 1 becomes the LRU victim
        let evicted = mgr.enforce(&mut cache, 100.0);
        assert!(!evicted.is_empty());
        assert_eq!(evicted[0], blocks[1]);
    }

    #[test]
    fn tracking_drops_promoted_or_missing_units() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::Ttl { max_age: 1.0 });
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        // Manually promote one unit to owned (e.g. migration landed here):
        cache.set_status_subtree(&blocks[2], Status::Owned).unwrap();
        let evicted = mgr.enforce(&mut cache, 100.0);
        // The owned unit is neither tracked nor evicted.
        assert!(!evicted.contains(&blocks[2]));
        assert_eq!(cache.status_at(&blocks[2]), Some(Status::Owned));
    }
}
