//! Bounded partial-state cache management (§3.3).
//!
//! The paper's prototype "never removes cached data, but only replaces it
//! if a fresh copy of the same data is available" and leaves richer cache
//! management to future work. This module provides that future work as a
//! *bounded partial-state plane*: cached units (the subtrees that arrived
//! via fragment merges) are tracked in an intrusive doubly-linked LRU list
//! plus an admission-order list, with per-unit decayed heat counters and
//! per-unit size accounting ([`crate::fragment::UnitCost`]) against a
//! per-site budget expressed in local-information nodes and/or bytes.
//!
//! Every bookkeeping operation ([`CacheManager::note_cached`],
//! [`CacheManager::note_query`]) is O(1) amortized — intrusive list splices
//! plus a frequency-sketch bump — so nothing here ever belongs on the read
//! path. Enforcement ([`CacheManager::enforce`]) is a budget-triggered
//! sweep whose cost is O(evicted): victims come off the cold end of the
//! appropriate list (recency order for LRU, admission order for TTL and
//! segment-age, a bounded cold-end sample for the heat-weighted policy),
//! never from a full scan. The agent runs the sweep on the owner loop at
//! quiescent points only, so user queries — cache hits in particular —
//! perform zero eviction work.
//!
//! A TinyLFU-style admission filter guards budgeted policies: when caching
//! a new unit would overflow the budget, the unit is admitted only if its
//! sketch-estimated request frequency is at least that of the would-be
//! victim. One-off scans therefore cannot displace hot neighborhoods; the
//! rejected unit itself is demoted at the next sweep instead.
//!
//! Eviction always demotes a unit to an `incomplete` ID stub via
//! [`SiteDatabase::evict`], so C1/C2 hold by construction and a later miss
//! drives the paper's refill-by-subquery machinery exactly as a cold cache
//! would.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use irisobs::Counter;

use crate::fragment::{SiteDatabase, Status, UnitCost};
use crate::idable::IdPath;

/// Half-life (seconds) of the per-unit heat counter: a unit untouched for
/// one half-life counts half as hot. Chosen so heat is meaningful both at
/// test timescales (seconds) and bench runs (minutes of virtual time).
/// Public so the telemetry plane's per-fragment heat series decay on the
/// same clock as the eviction scores they mirror.
pub const HEAT_HALF_LIFE: f64 = 120.0;

/// Cold-end sample size for the heat-weighted policy: the victim is the
/// worst-scoring of up to this many least-recently-used entries, keeping
/// each eviction O(1) instead of a full scan.
const HEAT_SAMPLE: usize = 8;

const NIL: usize = usize::MAX;

/// A per-site cache budget in units of local information. A zero axis is
/// unlimited; a budget with both axes zero never triggers eviction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheBudget {
    /// Maximum stored nodes across all cached (non-owned) units.
    pub max_nodes: usize,
    /// Maximum approximate bytes across all cached units.
    pub max_bytes: usize,
}

impl CacheBudget {
    /// A node-count budget (bytes unlimited).
    pub fn nodes(max_nodes: usize) -> CacheBudget {
        CacheBudget { max_nodes, max_bytes: 0 }
    }

    /// A byte budget (nodes unlimited).
    pub fn bytes(max_bytes: usize) -> CacheBudget {
        CacheBudget { max_nodes: 0, max_bytes }
    }

    /// No limit on either axis.
    pub fn unlimited() -> CacheBudget {
        CacheBudget { max_nodes: 0, max_bytes: 0 }
    }

    fn exceeded_by(&self, nodes: usize, bytes: usize) -> bool {
        (self.max_nodes != 0 && nodes > self.max_nodes)
            || (self.max_bytes != 0 && bytes > self.max_bytes)
    }
}

/// When — and in what order — to evict cached units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionPolicy {
    /// The paper's prototype policy: cache forever, replace on refresh.
    KeepForever,
    /// Evict units whose *data* is older than `max_age` seconds (age runs
    /// from the merge that brought the copy in; a refresh resets it).
    Ttl { max_age: f64 },
    /// Evict least-recently-used units once the budget is exceeded.
    Lru { budget: CacheBudget },
    /// Evict cold-large units first: the victim minimizes
    /// decayed-heat / size over a bounded cold-end sample.
    HeatWeighted { budget: CacheBudget },
    /// Segment-age: units are evicted strictly in admission order (oldest
    /// data first) when over budget, and unconditionally once older than
    /// `max_age` (use `f64::INFINITY` for a pure FIFO-by-admission cap).
    SegmentAge { budget: CacheBudget, max_age: f64 },
}

impl EvictionPolicy {
    /// The budget this policy enforces, if any.
    pub fn budget(&self) -> Option<CacheBudget> {
        match *self {
            EvictionPolicy::KeepForever | EvictionPolicy::Ttl { .. } => None,
            EvictionPolicy::Lru { budget }
            | EvictionPolicy::HeatWeighted { budget }
            | EvictionPolicy::SegmentAge { budget, .. } => Some(budget),
        }
    }

    /// The data-age cap this policy enforces, if any.
    fn max_age(&self) -> Option<f64> {
        match *self {
            EvictionPolicy::Ttl { max_age } => Some(max_age),
            EvictionPolicy::SegmentAge { max_age, .. } if max_age.is_finite() => Some(max_age),
            _ => None,
        }
    }
}

/// One tracked cached unit: a slab slot threaded onto two intrusive lists
/// (recency order and admission order).
#[derive(Debug, Clone)]
struct Entry {
    path: IdPath,
    /// Recency list (head = most recently touched).
    lru_prev: usize,
    lru_next: usize,
    /// Admission-order list (head = most recently admitted/refreshed).
    seg_prev: usize,
    seg_next: usize,
    /// Exponentially-decayed touch count as of `last_touch`.
    heat: f64,
    last_touch: f64,
    /// When this copy of the data was merged (refreshed on re-cache).
    admitted_at: f64,
    nodes: usize,
    bytes: usize,
}

/// Snapshot of the cache plane's counters and occupancy.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// First-pass user queries fully answered from the cached view.
    pub hits: u64,
    /// First-pass user queries partially answered (asks strictly below
    /// the query LCA).
    pub partial_matches: u64,
    /// First-pass user queries the cache contributed nothing to.
    pub misses: u64,
    /// Units demoted to incomplete stubs by policy sweeps.
    pub evictions: u64,
    /// Units denied admission by the TinyLFU filter.
    pub admission_rejects: u64,
    /// Enforcement sweeps that performed any work.
    pub sweeps: u64,
    /// Entries examined across all sweeps (the amortization witness:
    /// bounded by a constant times evictions + rejects).
    pub sweep_examined: u64,
    /// Currently tracked cached units.
    pub tracked: usize,
    /// Total stored nodes across tracked units.
    pub cached_nodes: usize,
    /// Total approximate bytes across tracked units.
    pub cached_bytes: usize,
}

impl CacheStats {
    /// Element-wise accumulation (for cluster-wide aggregates).
    pub fn accumulate(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.partial_matches += other.partial_matches;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.admission_rejects += other.admission_rejects;
        self.sweeps += other.sweeps;
        self.sweep_examined += other.sweep_examined;
        self.tracked += other.tracked;
        self.cached_nodes += other.cached_nodes;
        self.cached_bytes += other.cached_bytes;
    }

    /// Fraction of first-pass user queries fully served by the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.partial_matches + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A 4-hash count-min sketch with saturating 4-bit-style counters and
/// periodic halving — the TinyLFU frequency estimator behind admission.
#[derive(Debug)]
struct FreqSketch {
    counters: Vec<u8>,
    mask: usize,
    samples: u32,
    sample_cap: u32,
}

impl FreqSketch {
    fn new() -> FreqSketch {
        let size = 4096;
        FreqSketch { counters: vec![0; size], mask: size - 1, samples: 0, sample_cap: 4 * size as u32 }
    }

    fn slots(&self, h: u64) -> [usize; 4] {
        let mut out = [0usize; 4];
        let mut x = h | 1;
        for slot in &mut out {
            // SplitMix64-style remix per probe; deterministic everywhere.
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = (z ^ (z >> 31)) as usize & self.mask;
        }
        out
    }

    fn bump(&mut self, h: u64) {
        for i in self.slots(h) {
            let c = &mut self.counters[i];
            if *c < 15 {
                *c += 1;
            }
        }
        self.samples += 1;
        if self.samples >= self.sample_cap {
            for c in &mut self.counters {
                *c >>= 1;
            }
            self.samples /= 2;
        }
    }

    fn estimate(&self, h: u64) -> u8 {
        self.slots(h).into_iter().map(|i| self.counters[i]).min().unwrap_or(0)
    }
}

fn path_hash(p: &IdPath) -> u64 {
    // DefaultHasher has fixed keys: deterministic across runs and between
    // the DES and live substrates (required for answer equivalence).
    let mut h = std::collections::hash_map::DefaultHasher::new();
    p.hash(&mut h);
    h.finish()
}

/// Tracks cached units (root paths of merged fragments) and applies the
/// eviction policy against a site database. All bookkeeping is O(1)
/// amortized; the sweep is O(evicted).
#[derive(Debug)]
pub struct CacheManager {
    policy: EvictionPolicy,
    admission_enabled: bool,
    sketch: FreqSketch,
    slab: Vec<Entry>,
    free: Vec<usize>,
    index: HashMap<IdPath, usize>,
    lru_head: usize,
    lru_tail: usize,
    seg_head: usize,
    seg_tail: usize,
    cached_nodes: usize,
    cached_bytes: usize,
    /// Units denied admission, queued for demotion at the next sweep
    /// (their data was already merged to answer the triggering query).
    rejected: Vec<IdPath>,
    // The single, irisobs-backed home of the cache counters; the agent
    // mirrors them into the metrics registry via `publish_metrics`.
    hits: Counter,
    partial_matches: Counter,
    misses: Counter,
    evictions: Counter,
    admission_rejects: Counter,
    sweeps: Counter,
    sweep_examined: Counter,
}

/// §3.2 first-pass outcome of the cached view for one user query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLookup {
    Hit,
    PartialMatch,
    Miss,
}

impl CacheManager {
    /// Creates a manager with the given policy. The admission filter
    /// defaults to on (it only ever engages for budgeted policies).
    pub fn new(policy: EvictionPolicy) -> CacheManager {
        CacheManager {
            policy,
            admission_enabled: true,
            sketch: FreqSketch::new(),
            slab: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            lru_head: NIL,
            lru_tail: NIL,
            seg_head: NIL,
            seg_tail: NIL,
            cached_nodes: 0,
            cached_bytes: 0,
            rejected: Vec::new(),
            hits: Counter::new(),
            partial_matches: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            admission_rejects: Counter::new(),
            sweeps: Counter::new(),
            sweep_examined: Counter::new(),
        }
    }

    /// Enables or disables the TinyLFU admission filter.
    pub fn set_admission(&mut self, enabled: bool) {
        self.admission_enabled = enabled;
    }

    /// The active policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// True under the paper's prototype policy (track, never evict).
    pub fn is_keep_forever(&self) -> bool {
        matches!(self.policy, EvictionPolicy::KeepForever)
    }

    /// Number of tracked cached units.
    pub fn tracked(&self) -> usize {
        self.index.len()
    }

    /// Paths of every tracked cached unit, unordered (audit/test hook).
    pub fn tracked_paths(&self) -> Vec<IdPath> {
        self.index.keys().cloned().collect()
    }

    /// The `top` hottest tracked units as `(path, decayed heat at now)`,
    /// hottest first. This is the telemetry plane's heat feed: decaying
    /// here (with [`HEAT_HALF_LIFE`]) means the windowed heat series and
    /// the eviction policy score a unit identically at the same instant.
    pub fn heat_snapshot(&self, now: f64, top: usize) -> Vec<(String, f64)> {
        let mut heats: Vec<(String, f64)> = self
            .index
            .values()
            .map(|&i| (self.slab[i].path.to_string(), self.decayed_heat(i, now)))
            .collect();
        heats.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        heats.truncate(top);
        heats
    }

    /// Counter snapshot plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            partial_matches: self.partial_matches.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            admission_rejects: self.admission_rejects.get(),
            sweeps: self.sweeps.get(),
            sweep_examined: self.sweep_examined.get(),
            tracked: self.index.len(),
            cached_nodes: self.cached_nodes,
            cached_bytes: self.cached_bytes,
        }
    }

    // ------------------------------------------------------------------
    // Intrusive list plumbing
    // ------------------------------------------------------------------

    fn lru_unlink(&mut self, i: usize) {
        let (p, n) = (self.slab[i].lru_prev, self.slab[i].lru_next);
        match p {
            NIL => self.lru_head = n,
            p => self.slab[p].lru_next = n,
        }
        match n {
            NIL => self.lru_tail = p,
            n => self.slab[n].lru_prev = p,
        }
        self.slab[i].lru_prev = NIL;
        self.slab[i].lru_next = NIL;
    }

    fn lru_push_front(&mut self, i: usize) {
        self.slab[i].lru_prev = NIL;
        self.slab[i].lru_next = self.lru_head;
        match self.lru_head {
            NIL => self.lru_tail = i,
            h => self.slab[h].lru_prev = i,
        }
        self.lru_head = i;
    }

    fn seg_unlink(&mut self, i: usize) {
        let (p, n) = (self.slab[i].seg_prev, self.slab[i].seg_next);
        match p {
            NIL => self.seg_head = n,
            p => self.slab[p].seg_next = n,
        }
        match n {
            NIL => self.seg_tail = p,
            n => self.slab[n].seg_prev = p,
        }
        self.slab[i].seg_prev = NIL;
        self.slab[i].seg_next = NIL;
    }

    fn seg_push_front(&mut self, i: usize) {
        self.slab[i].seg_prev = NIL;
        self.slab[i].seg_next = self.seg_head;
        match self.seg_head {
            NIL => self.seg_tail = i,
            h => self.slab[h].seg_prev = i,
        }
        self.seg_head = i;
    }

    fn decayed_heat(&self, i: usize, now: f64) -> f64 {
        let e = &self.slab[i];
        let age = (now - e.last_touch).max(0.0);
        e.heat * 0.5f64.powf(age / HEAT_HALF_LIFE)
    }

    fn touch(&mut self, i: usize, now: f64) {
        let heat = self.decayed_heat(i, now) + 1.0;
        let e = &mut self.slab[i];
        e.heat = heat;
        e.last_touch = now;
        if self.lru_head != i {
            self.lru_unlink(i);
            self.lru_push_front(i);
        }
    }

    /// Removes entry `i` from all structures, returning its path.
    fn remove_entry(&mut self, i: usize) -> IdPath {
        self.lru_unlink(i);
        self.seg_unlink(i);
        let e = &self.slab[i];
        self.cached_nodes = self.cached_nodes.saturating_sub(e.nodes);
        self.cached_bytes = self.cached_bytes.saturating_sub(e.bytes);
        let path = e.path.clone();
        self.index.remove(&path);
        self.free.push(i);
        path
    }

    // ------------------------------------------------------------------
    // Bookkeeping (mutation path, O(1) amortized)
    // ------------------------------------------------------------------

    /// Records that a fragment rooted at `unit` of size `cost` was merged
    /// (cached or refreshed). Returns `false` when the admission filter
    /// rejects the unit — it stays merged for the triggering query but is
    /// queued for demotion at the next sweep.
    pub fn note_cached(&mut self, unit: IdPath, cost: UnitCost, now: f64) -> bool {
        let h = path_hash(&unit);
        self.sketch.bump(h);
        if let Some(&i) = self.index.get(&unit) {
            // Refresh: re-account size, restamp the data age, touch.
            let e = &mut self.slab[i];
            self.cached_nodes = self.cached_nodes - e.nodes + cost.nodes;
            self.cached_bytes = self.cached_bytes - e.bytes + cost.bytes;
            e.nodes = cost.nodes;
            e.bytes = cost.bytes;
            e.admitted_at = now;
            self.touch(i, now);
            if self.seg_head != i {
                self.seg_unlink(i);
                self.seg_push_front(i);
            }
            return true;
        }
        if let Some(budget) = self.policy.budget() {
            let would_exceed = budget
                .exceeded_by(self.cached_nodes + cost.nodes, self.cached_bytes + cost.bytes);
            if self.admission_enabled && would_exceed {
                if let Some(v) = self.victim_candidate(now) {
                    let victim_freq = self.sketch.estimate(path_hash(&self.slab[v].path));
                    if self.sketch.estimate(h) < victim_freq {
                        self.admission_rejects.inc();
                        self.rejected.push(unit);
                        return false;
                    }
                }
            }
        }
        let entry = Entry {
            path: unit.clone(),
            lru_prev: NIL,
            lru_next: NIL,
            seg_prev: NIL,
            seg_next: NIL,
            heat: 1.0,
            last_touch: now,
            admitted_at: now,
            nodes: cost.nodes,
            bytes: cost.bytes,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = entry;
                i
            }
            None => {
                self.slab.push(entry);
                self.slab.len() - 1
            }
        };
        self.index.insert(unit, i);
        self.cached_nodes += cost.nodes;
        self.cached_bytes += cost.bytes;
        self.lru_push_front(i);
        self.seg_push_front(i);
        true
    }

    /// Records that a query with the given LCA consulted the cached view:
    /// bumps the demand sketch and touches the tracked unit covering the
    /// LCA, walking at most the hierarchy depth (O(1) for our schemas).
    pub fn note_query(&mut self, lca: &IdPath, now: f64) {
        self.sketch.bump(path_hash(lca));
        let mut cur = Some(lca.clone());
        while let Some(p) = cur {
            if let Some(&i) = self.index.get(&p) {
                self.touch(i, now);
                return;
            }
            cur = p.parent();
        }
    }

    /// Records the §3.2 first-pass outcome of one user query.
    pub fn record_lookup(&self, outcome: CacheLookup) {
        match outcome {
            CacheLookup::Hit => self.hits.inc(),
            CacheLookup::PartialMatch => self.partial_matches.inc(),
            CacheLookup::Miss => self.misses.inc(),
        }
    }

    // ------------------------------------------------------------------
    // Enforcement (owner loop, budget-triggered, O(evicted))
    // ------------------------------------------------------------------

    fn over_budget(&self) -> bool {
        self.policy
            .budget()
            .is_some_and(|b| b.exceeded_by(self.cached_nodes, self.cached_bytes))
    }

    /// O(1) check: does [`CacheManager::enforce`] have any work to do?
    pub fn needs_enforcement(&self, now: f64) -> bool {
        if !self.rejected.is_empty() || self.over_budget() {
            return true;
        }
        if let (Some(max_age), tail) = (self.policy.max_age(), self.seg_tail) {
            if tail != NIL && now - self.slab[tail].admitted_at > max_age {
                return true;
            }
        }
        false
    }

    /// The entry the next eviction would remove, per policy, without
    /// removing it. Used both by the sweep and by the admission filter.
    fn victim_candidate(&self, now: f64) -> Option<usize> {
        match self.policy {
            EvictionPolicy::KeepForever => None,
            EvictionPolicy::Ttl { .. } | EvictionPolicy::SegmentAge { .. } => {
                (self.seg_tail != NIL).then_some(self.seg_tail)
            }
            EvictionPolicy::Lru { .. } => (self.lru_tail != NIL).then_some(self.lru_tail),
            EvictionPolicy::HeatWeighted { .. } => {
                let mut best: Option<(usize, f64)> = None;
                let mut cur = self.lru_tail;
                let mut seen = 0;
                while cur != NIL && seen < HEAT_SAMPLE {
                    let score =
                        self.decayed_heat(cur, now) / self.slab[cur].nodes.max(1) as f64;
                    if best.is_none_or(|(_, s)| score < s) {
                        best = Some((cur, score));
                    }
                    cur = self.slab[cur].lru_prev;
                    seen += 1;
                }
                best.map(|(i, _)| i)
            }
        }
    }

    /// Demotes entry `i` in `db` (if it is still an evictable cached
    /// unit) and drops it from tracking. Returns the path if the database
    /// was actually changed.
    fn evict_entry(&mut self, i: usize, db: &mut SiteDatabase) -> Option<IdPath> {
        let path = self.remove_entry(i);
        let evictable =
            matches!(db.status_at(&path), Some(Status::Complete | Status::IdComplete));
        if evictable && db.evict(&path).is_ok() {
            self.evictions.inc();
            Some(path)
        } else {
            // Promoted (e.g. ownership moved here) or already gone:
            // silently untracked, never evicted.
            None
        }
    }

    /// Applies the policy, evicting from `db` as needed, and returns the
    /// paths demoted. Cost is O(evicted + rejected): victims come off list
    /// tails (or a bounded cold-end sample), never from a full scan. Call
    /// from the owner loop at quiescent points — never on the read path.
    pub fn enforce(&mut self, db: &mut SiteDatabase, now: f64) -> Vec<IdPath> {
        if !self.needs_enforcement(now) {
            return Vec::new();
        }
        self.sweeps.inc();
        let mut out = Vec::new();
        // 1. Demote units the admission filter turned away (unless they
        //    earned admission since).
        for p in std::mem::take(&mut self.rejected) {
            self.sweep_examined.inc();
            if self.index.contains_key(&p) {
                continue;
            }
            if matches!(db.status_at(&p), Some(Status::Complete | Status::IdComplete))
                && db.evict(&p).is_ok()
            {
                out.push(p);
            }
        }
        // 2. Data-age cap (TTL / segment-age): oldest-admitted first.
        if let Some(max_age) = self.policy.max_age() {
            while self.seg_tail != NIL
                && now - self.slab[self.seg_tail].admitted_at > max_age
            {
                self.sweep_examined.inc();
                if let Some(p) = self.evict_entry(self.seg_tail, db) {
                    out.push(p);
                }
            }
        }
        // 3. Budget sweep: evict cold-end victims until within budget.
        while self.over_budget() && !self.index.is_empty() {
            let Some(v) = self.victim_candidate(now) else { break };
            self.sweep_examined.add(match self.policy {
                EvictionPolicy::HeatWeighted { .. } => HEAT_SAMPLE.min(self.index.len()) as u64,
                _ => 1,
            });
            if let Some(p) = self.evict_entry(v, db) {
                out.push(p);
            }
        }
        // 4. Reclaim arena garbage once eviction has created enough of it.
        if db.doc().arena_len() > 2 * db.doc().reachable_count() {
            db.compact();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use sensorxml::parse;

    fn setup() -> (SiteDatabase, SiteDatabase, Vec<IdPath>) {
        let master = parse(
            r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
                 <neighborhood id="n1">
                   <block id="1"><parkingSpace id="1"><available>no</available></parkingSpace></block>
                   <block id="2"><parkingSpace id="1"><available>no</available></parkingSpace></block>
                   <block id="3"><parkingSpace id="1"><available>no</available></parkingSpace></block>
                 </neighborhood>
               </city></county></state></usRegion>"#,
        )
        .unwrap();
        let root = IdPath::from_pairs([("usRegion", "NE")]);
        let mut owner = SiteDatabase::new(Service::parking());
        owner.bootstrap_owned(&master, &root, true).unwrap();
        let nb = root
            .child("state", "PA")
            .child("county", "A")
            .child("city", "P")
            .child("neighborhood", "n1");
        let blocks: Vec<IdPath> = (1..=3).map(|i| nb.child("block", i.to_string())).collect();
        let cache = SiteDatabase::new(Service::parking());
        (owner, cache, blocks)
    }

    /// Merges each block into `cache` and tracks it with its real cost.
    fn fill(
        owner: &SiteDatabase,
        cache: &mut SiteDatabase,
        mgr: &mut CacheManager,
        blocks: &[IdPath],
        t0: f64,
    ) {
        for (i, b) in blocks.iter().enumerate() {
            let frag = owner.export_subtrees(std::slice::from_ref(b)).unwrap();
            cache.merge_fragment(&frag).unwrap();
            let cost = cache.unit_cost(b).unwrap();
            mgr.note_cached(b.clone(), cost, t0 + i as f64);
        }
    }

    fn unit_nodes(cache: &SiteDatabase, b: &IdPath) -> usize {
        cache.unit_cost(b).unwrap().nodes
    }

    #[test]
    fn keep_forever_never_evicts() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::KeepForever);
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        assert!(!mgr.needs_enforcement(1e9));
        assert!(mgr.enforce(&mut cache, 1e9).is_empty());
        assert_eq!(mgr.tracked(), 3);
    }

    #[test]
    fn ttl_evicts_only_expired_units() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::Ttl { max_age: 10.0 });
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0); // admitted at 0,1,2
        assert!(mgr.needs_enforcement(11.5));
        let evicted = mgr.enforce(&mut cache, 11.5); // 0 and 1 expired
        assert_eq!(evicted.len(), 2);
        assert_eq!(cache.status_at(&blocks[0]), Some(Status::Incomplete));
        assert_eq!(cache.status_at(&blocks[2]), Some(Status::Complete));
        assert_eq!(mgr.stats().evictions, 2);
    }

    #[test]
    fn ttl_refresh_resets_data_age() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::Ttl { max_age: 10.0 });
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        // A fresh copy of block 0 arrives at t=9: its age restarts. Plain
        // query touches do NOT reset the TTL — it bounds data age, not
        // recency of use.
        let cost = cache.unit_cost(&blocks[0]).unwrap();
        mgr.note_cached(blocks[0].clone(), cost, 9.0);
        mgr.note_query(&blocks[1], 11.0);
        let evicted = mgr.enforce(&mut cache, 11.5);
        assert!(!evicted.contains(&blocks[0]), "refreshed unit survives");
        assert!(evicted.contains(&blocks[1]), "touched-but-stale unit expires");
    }

    #[test]
    fn lru_respects_node_budget() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr =
            CacheManager::new(EvictionPolicy::Lru { budget: CacheBudget::nodes(1) });
        mgr.set_admission(false); // force-admit so the sweep does the work
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        let before = cache.doc().reachable_count();
        let evicted = mgr.enforce(&mut cache, 100.0);
        // Budget of 1 node cannot hold any unit: all cached units go (the
        // ancestor ID skeleton remains — it is not a cached unit).
        assert_eq!(evicted.len(), 3);
        assert!(cache.doc().reachable_count() < before);
        assert_eq!(mgr.stats().cached_nodes, 0);
        for b in &blocks {
            assert_eq!(cache.status_at(b), Some(Status::Incomplete));
        }
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let (owner, mut cache, blocks) = setup();
        let total: usize = blocks.iter().map(|b| {
            let frag = owner.export_subtrees(std::slice::from_ref(b)).unwrap();
            cache.merge_fragment(&frag).unwrap();
            unit_nodes(&cache, b)
        }).sum();
        // A budget that forces exactly one eviction.
        let mut mgr =
            CacheManager::new(EvictionPolicy::Lru { budget: CacheBudget::nodes(total - 1) });
        mgr.set_admission(false);
        for (i, b) in blocks.iter().enumerate() {
            let cost = cache.unit_cost(b).unwrap();
            mgr.note_cached(b.clone(), cost, i as f64);
        }
        mgr.note_query(&blocks[0], 50.0); // block 1 becomes the LRU victim
        let evicted = mgr.enforce(&mut cache, 100.0);
        assert!(!evicted.is_empty());
        assert_eq!(evicted[0], blocks[1]);
    }

    #[test]
    fn heat_weighted_evicts_cold_large_first() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::HeatWeighted {
            budget: CacheBudget::nodes(1),
        });
        mgr.set_admission(false);
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        // Blocks are equal-sized; heat block 2 hard so 0 and 1 go first.
        for t in 0..20 {
            mgr.note_query(&blocks[2], 10.0 + t as f64 * 0.1);
        }
        let evicted = mgr.enforce(&mut cache, 20.0);
        assert_eq!(evicted.len(), 3, "budget 1 evicts everything eventually");
        assert_eq!(
            evicted.last(),
            Some(&blocks[2]),
            "the hottest unit is the last to go"
        );
    }

    #[test]
    fn segment_age_evicts_in_admission_order() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::SegmentAge {
            budget: CacheBudget::nodes(1),
            max_age: f64::INFINITY,
        });
        mgr.set_admission(false);
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0); // admitted 0,1,2
        mgr.note_query(&blocks[0], 50.0); // touches must NOT reorder FIFO
        let evicted = mgr.enforce(&mut cache, 100.0);
        assert_eq!(evicted, blocks, "strict admission order");
    }

    #[test]
    fn byte_budget_is_enforced() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr =
            CacheManager::new(EvictionPolicy::Lru { budget: CacheBudget::bytes(1) });
        mgr.set_admission(false);
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        assert!(mgr.stats().cached_bytes > 1);
        let evicted = mgr.enforce(&mut cache, 10.0);
        assert_eq!(evicted.len(), 3);
        assert_eq!(mgr.stats().cached_bytes, 0);
    }

    #[test]
    fn admission_filter_rejects_cold_newcomers() {
        let (owner, mut cache, blocks) = setup();
        let per_unit = {
            let frag = owner.export_subtrees(std::slice::from_ref(&blocks[0])).unwrap();
            let mut probe = SiteDatabase::new(Service::parking());
            probe.merge_fragment(&frag).unwrap();
            probe.unit_cost(&blocks[0]).unwrap().nodes
        };
        // Budget fits exactly two units; make blocks 0 and 1 hot first.
        let mut mgr = CacheManager::new(EvictionPolicy::Lru {
            budget: CacheBudget::nodes(2 * per_unit),
        });
        fill(&owner, &mut cache, &mut mgr, &blocks[..2], 0.0);
        for t in 0..10 {
            mgr.note_query(&blocks[0], 1.0 + t as f64);
            mgr.note_query(&blocks[1], 1.5 + t as f64);
        }
        // A one-off unit shows up: over budget, colder than the victim.
        let frag = owner.export_subtrees(std::slice::from_ref(&blocks[2])).unwrap();
        cache.merge_fragment(&frag).unwrap();
        let cost = cache.unit_cost(&blocks[2]).unwrap();
        let admitted = mgr.note_cached(blocks[2].clone(), cost, 20.0);
        assert!(!admitted, "one-off scan must not displace hot units");
        assert_eq!(mgr.stats().admission_rejects, 1);
        // The sweep demotes the rejected unit, not the hot ones.
        let evicted = mgr.enforce(&mut cache, 21.0);
        assert_eq!(evicted, vec![blocks[2].clone()]);
        assert_eq!(cache.status_at(&blocks[0]), Some(Status::Complete));
        assert_eq!(cache.status_at(&blocks[1]), Some(Status::Complete));
        assert_eq!(cache.status_at(&blocks[2]), Some(Status::Incomplete));
    }

    #[test]
    fn rejected_unit_that_earns_admission_survives_the_sweep() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr =
            CacheManager::new(EvictionPolicy::Lru { budget: CacheBudget::nodes(1) });
        fill(&owner, &mut cache, &mut mgr, &blocks[..1], 0.0);
        for t in 0..12 {
            mgr.note_query(&blocks[0], 1.0 + t as f64);
        }
        let frag = owner.export_subtrees(std::slice::from_ref(&blocks[1])).unwrap();
        cache.merge_fragment(&frag).unwrap();
        let cost = cache.unit_cost(&blocks[1]).unwrap();
        assert!(!mgr.note_cached(blocks[1].clone(), cost, 20.0), "first try rejected");
        // Demand builds up; a re-merge now clears the admission bar.
        for t in 0..12 {
            mgr.note_query(&blocks[1], 21.0 + t as f64);
        }
        assert!(mgr.note_cached(blocks[1].clone(), cost, 40.0));
        let evicted = mgr.enforce(&mut cache, 41.0);
        // The stale rejection must not demote the now-admitted unit; the
        // budget sweep evicts by LRU as usual instead.
        assert!(mgr.index.contains_key(&blocks[1]) || evicted.contains(&blocks[1]));
        assert!(!evicted.is_empty(), "budget 1 still forces eviction work");
    }

    #[test]
    fn tracking_drops_promoted_or_missing_units() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr = CacheManager::new(EvictionPolicy::Ttl { max_age: 1.0 });
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        // Manually promote one unit to owned (e.g. migration landed here):
        cache.set_status_subtree(&blocks[2], Status::Owned).unwrap();
        let evicted = mgr.enforce(&mut cache, 100.0);
        // The owned unit is neither tracked nor evicted.
        assert!(!evicted.contains(&blocks[2]));
        assert_eq!(cache.status_at(&blocks[2]), Some(Status::Owned));
        assert_eq!(mgr.tracked(), 0);
    }

    #[test]
    fn sweep_work_is_proportional_to_evictions() {
        let (owner, mut cache, blocks) = setup();
        let mut mgr =
            CacheManager::new(EvictionPolicy::Lru { budget: CacheBudget::nodes(1) });
        mgr.set_admission(false);
        fill(&owner, &mut cache, &mut mgr, &blocks, 0.0);
        // Hit-path checks are free...
        assert!(mgr.needs_enforcement(5.0));
        let evicted = mgr.enforce(&mut cache, 5.0);
        let s = mgr.stats();
        // ...and the sweep examined no more than a constant per demotion.
        assert!(
            s.sweep_examined <= (HEAT_SAMPLE as u64) * (evicted.len() as u64 + 1),
            "examined {} for {} evictions",
            s.sweep_examined,
            evicted.len()
        );
        // Nothing left to do: the next check is O(1) and does no work.
        assert!(!mgr.needs_enforcement(6.0));
        assert!(mgr.enforce(&mut cache, 6.0).is_empty());
        assert_eq!(mgr.stats().sweeps, s.sweeps);
    }
}
