//! Error type for the core query-processing layer.

use std::fmt;

/// Result alias used throughout the crate.
pub type CoreResult<T> = Result<T, CoreError>;

/// An error raised by the core layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying XML problem.
    Xml(sensorxml::XmlError),
    /// Underlying XPath problem (parse or evaluation).
    XPath(sensorxpath::XPathError),
    /// Underlying XSLT problem.
    Xslt(sensorxslt::XsltError),
    /// A query was malformed for distributed processing (e.g. no id-pinned
    /// prefix and no root owner to fall back to).
    Query(String),
    /// A fragment violated the partitioning/cache invariants (I1/I2, C1/C2).
    Invariant(String),
    /// A message referenced unknown state (unknown query id, missing node).
    Protocol(String),
    /// DNS could not resolve a required site name.
    Unresolvable(String),
    /// The target site has shut down (or is shutting down): its pending
    /// work is completed with this error instead of blocking callers.
    SiteDown,
    /// The durability plane failed (backend I/O, or recovery applied to a
    /// non-empty database).
    Storage(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Xml(e) => write!(f, "xml: {e}"),
            CoreError::XPath(e) => write!(f, "xpath: {e}"),
            CoreError::Xslt(e) => write!(f, "xslt: {e}"),
            CoreError::Query(m) => write!(f, "bad query: {m}"),
            CoreError::Invariant(m) => write!(f, "invariant violation: {m}"),
            CoreError::Protocol(m) => write!(f, "protocol error: {m}"),
            CoreError::Unresolvable(m) => write!(f, "unresolvable site name: {m}"),
            CoreError::SiteDown => write!(f, "site down"),
            CoreError::Storage(m) => write!(f, "storage: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sensorxml::XmlError> for CoreError {
    fn from(e: sensorxml::XmlError) -> Self {
        CoreError::Xml(e)
    }
}

impl From<sensorxpath::XPathError> for CoreError {
    fn from(e: sensorxpath::XPathError) -> Self {
        CoreError::XPath(e)
    }
}

impl From<sensorxslt::XsltError> for CoreError {
    fn from(e: sensorxslt::XsltError) -> Self {
        CoreError::Xslt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::Query("no prefix".into()).to_string().contains("bad query"));
        assert!(CoreError::Invariant("I2".into()).to_string().contains("invariant"));
    }
}
