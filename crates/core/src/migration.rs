//! Ownership migration and load balancing (§4 "Ownership changes", §5.4).
//!
//! Transferring an IDable node (and its subtree) from site A to site B:
//!
//! 1. B receives a copy of the subtree from A (`TakeOwnership`);
//! 2. sensor proxies reporting to A are repointed (modelled by A
//!    forwarding updates until the cluster repoints its SAs);
//! 3. B marks the subtree `owned`, A demotes its copy to `complete`;
//! 4. the DNS entry flips to B — the linearization point: the rest of the
//!    system is oblivious until then, and stale DNS caches are tolerated
//!    because A forwards anything it receives for the migrated node.
//!
//! While a transfer is in flight, A *holds* queries and updates for the
//! node and replays them once the `TakeAck` arrives, making the transition
//! appear atomic.

use irisdns::{AuthoritativeDns, SiteAddr};
use irisobs::SpanKind;

use crate::agent::{HandleOutcome, Message, OrganizingAgent, Outbound};
use crate::fragment::Status;
use crate::idable::IdPath;

impl OrganizingAgent {
    /// Administrative request: delegate ownership of `path` (whole subtree)
    /// to `to`. Must currently be the owner.
    pub(crate) fn on_delegate(
        &mut self,
        path: IdPath,
        to: SiteAddr,
        now: f64,
        out: &mut Vec<Outbound>,
    ) {
        if to == self.addr {
            return; // nothing to do
        }
        let fragment_xml = {
            let db = self.db();
            if db.status_at(&path) != Some(Status::Owned) {
                return; // not ours (possibly already delegated)
            }
            let Ok(frag) = db.export_subtrees(std::slice::from_ref(&path)) else {
                return;
            };
            frag.root()
                .map(|r| sensorxml::serialize(&frag, r))
                .unwrap_or_default()
        };
        self.record_migration(SpanKind::MigrateOut, &path, to.0, now);
        self.hold_set().insert(path.clone());
        out.push(Outbound::Send {
            to,
            msg: Message::TakeOwnership { path, fragment_xml, from: self.addr },
        });
    }

    /// New owner side: install the fragment, claim ownership, update DNS,
    /// acknowledge.
    pub(crate) fn on_take_ownership(
        &mut self,
        path: IdPath,
        fragment_xml: &str,
        from: SiteAddr,
        dns: &mut AuthoritativeDns,
        now: f64,
        out: &mut Vec<Outbound>,
    ) {
        {
            let mut db = self.db_mut();
            if let Ok(frag) = sensorxml::parse(fragment_xml) {
                if db.merge_fragment(&frag).is_err() {
                    return; // refuse broken transfers; old owner keeps holding
                }
            }
            if db.set_status_subtree(&path, Status::Owned).is_err() {
                return;
            }
        }
        // Taking ownership supersedes any forwarding entry we held from a
        // past delegation of the same node.
        self.forward_map().remove(&path);
        // Step 4: flip the DNS entry — the atomicity point. Timed so a
        // configured staleness window keeps serving the old owner briefly
        // (tolerated via that owner's forwarding entry).
        let name = self.service.dns_name(&path);
        dns.register_at(&name, self.addr, now);
        self.record_migration(SpanKind::MigrateIn, &path, from.0, now);
        out.push(Outbound::Send {
            to: from,
            msg: Message::TakeAck { path, new_owner: self.addr },
        });
    }

    /// Old owner side: demote to a cached copy, install forwarding, replay
    /// held traffic.
    pub(crate) fn on_take_ack(
        &mut self,
        path: IdPath,
        new_owner: SiteAddr,
        dns: &mut AuthoritativeDns,
        now: f64,
        oc: &mut HandleOutcome,
    ) {
        let _ = self.db_mut().set_status_subtree(&path, Status::Complete);
        self.hold_set().remove(&path);
        self.record_migration(SpanKind::MigrateAck, &path, new_owner.0, now);
        self.forward_map().insert(path, new_owner);
        self.release_held(dns, now, oc);
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::agent::{Endpoint, OaConfig};
    use crate::service::Service;
    use sensorxml::parse;

    fn master() -> sensorxml::Document {
        parse(
            r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
                 <neighborhood id="Oakland">
                   <block id="1"><parkingSpace id="1"><available>yes</available></parkingSpace></block>
                   <block id="2"><parkingSpace id="1"><available>no</available></parkingSpace></block>
                 </neighborhood>
               </city></county></state></usRegion>"#,
        )
        .unwrap()
    }

    fn oakland() -> IdPath {
        IdPath::from_pairs([
            ("usRegion", "NE"),
            ("state", "PA"),
            ("county", "A"),
            ("city", "P"),
            ("neighborhood", "Oakland"),
        ])
    }

    fn setup() -> (OrganizingAgent, OrganizingAgent, AuthoritativeDns, Arc<Service>) {
        let svc = Service::parking();
        let a = OrganizingAgent::new(SiteAddr(1), svc.clone(), OaConfig::default());
        let b = OrganizingAgent::new(SiteAddr(2), svc.clone(), OaConfig::default());
        let mut dns = AuthoritativeDns::new();
        a.db_mut().bootstrap_owned(&master(), &IdPath::from_pairs([("usRegion", "NE")]), true)
            .unwrap();
        dns.register(&svc.dns_name(&IdPath::from_pairs([("usRegion", "NE")])), SiteAddr(1));
        (a, b, dns, svc)
    }

    /// Runs the full delegation handshake A → B for `path`.
    fn migrate(
        a: &mut OrganizingAgent,
        b: &mut OrganizingAgent,
        dns: &mut AuthoritativeDns,
        path: &IdPath,
    ) {
        let out1 = a.handle(
            Message::Delegate { path: path.clone(), to: SiteAddr(2) },
            dns,
            0.0,
        );
        assert_eq!(out1.len(), 1);
        let Outbound::Send { to, msg } = &out1[0] else { panic!() };
        assert_eq!(*to, SiteAddr(2));
        let out2 = b.handle(msg.clone(), dns, 0.0);
        let Outbound::Send { to, msg } = &out2[0] else { panic!() };
        assert_eq!(*to, SiteAddr(1));
        let _ = a.handle(msg.clone(), dns, 0.0);
    }

    #[test]
    fn delegation_transfers_ownership_and_dns() {
        let (mut a, mut b, mut dns, svc) = setup();
        let block = oakland().child("block", "1");
        migrate(&mut a, &mut b, &mut dns, &block);

        assert_eq!(b.db().status_at(&block), Some(Status::Owned));
        assert_eq!(
            b.db().status_at(&block.child("parkingSpace", "1")),
            Some(Status::Owned)
        );
        assert_eq!(a.db().status_at(&block), Some(Status::Complete));
        // DNS now maps the block to B.
        let ans = dns.lookup(&svc.dns_name(&block)).unwrap();
        assert_eq!(ans.addr, SiteAddr(2));
        // B passes invariants against the master.
        b.db().check_invariants(&master()).unwrap();
        a.db().check_invariants(&master()).unwrap();
    }

    #[test]
    fn old_owner_forwards_updates_after_transfer() {
        let (mut a, mut b, mut dns, _svc) = setup();
        let block = oakland().child("block", "1");
        migrate(&mut a, &mut b, &mut dns, &block);

        let space = block.child("parkingSpace", "1");
        let out = a.handle(
            Message::Update {
                path: space.clone(),
                fields: vec![("available".into(), "no".into())],
            },
            &mut dns,
            5.0,
        );
        // Forwarded to B rather than applied.
        assert_eq!(a.stats.updates_forwarded, 1);
        let Outbound::Send { to, msg } = &out[0] else { panic!() };
        assert_eq!(*to, SiteAddr(2));
        let _ = b.handle(msg.clone(), &mut dns, 5.0);
        assert_eq!(b.stats.updates_applied, 1);
        assert_eq!(b.db().timestamp_at(&space), 5.0);
    }

    #[test]
    fn queries_held_during_migration_are_replayed() {
        let (mut a, mut b, mut dns, _svc) = setup();
        let block = oakland().child("block", "1");
        // Start the delegation but do not complete the handshake yet.
        let out1 = a.handle(
            Message::Delegate { path: block.clone(), to: SiteAddr(2) },
            &mut dns,
            0.0,
        );
        let Outbound::Send { msg: take_msg, .. } = &out1[0] else { panic!() };

        // A query for the migrating block is held.
        let q = format!("{}/parkingSpace", block.to_xpath());
        let held_out = a.handle(
            Message::UserQuery { qid: 9, text: q.clone(), endpoint: Endpoint(1) },
            &mut dns,
            0.0,
        );
        assert!(held_out.is_empty());
        assert_eq!(a.stats.held_messages, 1);

        // Complete the handshake; the held query is replayed and now
        // forwarded to the new owner.
        let out2 = b.handle(take_msg.clone(), &mut dns, 0.0);
        let Outbound::Send { msg: ack, .. } = &out2[0] else { panic!() };
        let out3 = a.handle(ack.clone(), &mut dns, 0.0);
        assert!(out3.iter().any(|o| matches!(
            o,
            Outbound::Send { to: SiteAddr(2), msg: Message::UserQuery { .. } }
        )));
    }

    #[test]
    fn delegate_refuses_non_owned_paths() {
        let (_, mut b, mut dns, _svc) = setup();
        // B owns nothing; delegation is a no-op.
        let out = b.handle(
            Message::Delegate { path: oakland(), to: SiteAddr(3) },
            &mut dns,
            0.0,
        );
        assert!(out.is_empty());
    }
}
