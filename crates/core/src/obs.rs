//! The agent-side handle to the observability plane.
//!
//! [`ObsPlane`] wraps an `Arc<dyn Recorder>` and caches `enabled()` once,
//! so every instrumentation site in the agent guards on a plain `bool`
//! field — with the default no-op recorder the whole tracing layer costs
//! one predictable branch per message, which is the budget the release
//! overhead guard enforces.

use std::sync::Arc;

use irisobs::{Link, NoopRecorder, Recorder, Registry, SpanRecord, SpanKind};

#[derive(Debug, Clone)]
pub struct ObsPlane {
    rec: Arc<dyn Recorder>,
    /// Cached `rec.enabled()`. Instrumentation sites check this field and
    /// skip all span construction when false.
    pub on: bool,
}

impl ObsPlane {
    /// The zero-cost default.
    pub fn noop() -> ObsPlane {
        ObsPlane { rec: Arc::new(NoopRecorder), on: false }
    }

    pub fn new(rec: Arc<dyn Recorder>) -> ObsPlane {
        let on = rec.enabled();
        ObsPlane { rec, on }
    }

    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.rec
    }

    pub fn registry(&self) -> Option<&Registry> {
        self.rec.registry()
    }

    /// Allocates a span with a fresh id. Callers fill the optional fields
    /// and hand it back through [`ObsPlane::record`].
    #[inline]
    pub fn span(&self, link: Link, site: u32, kind: SpanKind, t0: f64) -> SpanRecord {
        SpanRecord::new(self.rec.next_span_id(), link, site, kind, t0)
    }

    #[inline]
    pub fn record(&self, span: SpanRecord) {
        self.rec.record_span(span);
    }
}
