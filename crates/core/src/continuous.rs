//! Continuous queries (paper §7, future work).
//!
//! "Continuous queries are an important class of queries that are natural
//! to a sensor database system. Our architecture naturally allows us to
//! support continuous queries through the various data structures that we
//! maintain."
//!
//! A continuous query registers at a site (normally the LCA owner of its
//! result). After every sensor update that falls inside the query's
//! id-pinned scope, the site re-evaluates the query against its fragment;
//! when the answer *changes* (compared by canonical form, so sibling order
//! is irrelevant), a fresh answer is pushed to the subscriber. This is the
//! Parking Space Finder's "directions are automatically updated" loop
//! from §1.

use std::collections::HashMap;

use sensorxml::Document;

use crate::agent::{Endpoint, QueryId};
use crate::error::{CoreError, CoreResult};
use crate::fragment::SiteDatabase;
use crate::idable::IdPath;
use crate::qeg::{extract_user_answer, plan_query, QueryPlan};
use crate::routing::lca_id_path;
use crate::service::Service;

/// One registered continuous query.
#[derive(Debug)]
pub struct ContinuousQuery {
    pub qid: QueryId,
    pub endpoint: Endpoint,
    pub text: String,
    plan: QueryPlan,
    /// Scope: updates outside this prefix cannot change the answer.
    scope: IdPath,
    /// Canonical form of the last pushed answer.
    last_answer: Option<String>,
}

/// The registry a site keeps for its continuous subscribers.
#[derive(Debug, Default)]
pub struct ContinuousRegistry {
    queries: HashMap<QueryId, ContinuousQuery>,
}

/// A change notification to push to a subscriber.
#[derive(Debug, Clone)]
pub struct Notification {
    pub qid: QueryId,
    pub endpoint: Endpoint,
    pub answer_xml: String,
}

impl ContinuousRegistry {
    /// Creates an empty registry.
    pub fn new() -> ContinuousRegistry {
        ContinuousRegistry::default()
    }

    /// Number of registered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Registers a continuous query. Returns the initial answer so the
    /// subscriber starts with a consistent snapshot.
    pub fn register(
        &mut self,
        qid: QueryId,
        endpoint: Endpoint,
        text: &str,
        service: &Service,
        db: &SiteDatabase,
        now: f64,
    ) -> CoreResult<Notification> {
        let expr = sensorxpath::parse(text).map_err(CoreError::XPath)?;
        let plan = plan_query(&expr, service)?;
        let scope = lca_id_path(&expr);
        let answer = extract_user_answer(&plan, db, now)?;
        let (xml, canonical) = render(&answer);
        self.queries.insert(
            qid,
            ContinuousQuery {
                qid,
                endpoint,
                text: text.to_string(),
                plan,
                scope,
                last_answer: Some(canonical),
            },
        );
        Ok(Notification { qid, endpoint, answer_xml: xml })
    }

    /// Cancels a continuous query; returns true if it existed.
    pub fn cancel(&mut self, qid: QueryId) -> bool {
        self.queries.remove(&qid).is_some()
    }

    /// Called after an update at `updated` was applied to `db`: re-evaluates
    /// every query whose scope covers the update and returns notifications
    /// for those whose answer changed.
    pub fn on_update(
        &mut self,
        updated: &IdPath,
        db: &SiteDatabase,
        now: f64,
    ) -> Vec<Notification> {
        let mut out = Vec::new();
        for cq in self.queries.values_mut() {
            if !cq.scope.is_prefix_of(updated) {
                continue;
            }
            let Ok(answer) = extract_user_answer(&cq.plan, db, now) else {
                continue;
            };
            let (xml, canonical) = render(&answer);
            if cq.last_answer.as_deref() != Some(canonical.as_str()) {
                cq.last_answer = Some(canonical);
                out.push(Notification {
                    qid: cq.qid,
                    endpoint: cq.endpoint,
                    answer_xml: xml,
                });
            }
        }
        out.sort_by_key(|n| n.qid);
        out
    }
}

fn render(answer: &Document) -> (String, String) {
    match answer.root() {
        Some(r) => (
            sensorxml::serialize(answer, r),
            sensorxml::canonical_string(answer, r),
        ),
        None => (String::new(), String::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::Endpoint;
    use crate::service::Service;
    use sensorxml::parse;

    fn setup() -> (SiteDatabase, IdPath) {
        let master = parse(
            r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
                 <neighborhood id="Oakland">
                   <block id="1">
                     <parkingSpace id="1"><available>no</available></parkingSpace>
                     <parkingSpace id="2"><available>no</available></parkingSpace>
                   </block>
                 </neighborhood>
               </city></county></state></usRegion>"#,
        )
        .unwrap();
        let mut db = SiteDatabase::new(Service::parking());
        let root = IdPath::from_pairs([("usRegion", "NE")]);
        db.bootstrap_owned(&master, &root, true).unwrap();
        let block = root
            .child("state", "PA")
            .child("county", "A")
            .child("city", "P")
            .child("neighborhood", "Oakland")
            .child("block", "1");
        (db, block)
    }

    const CQ: &str = "/usRegion[@id='NE']/state[@id='PA']/county[@id='A']/city[@id='P']\
        /neighborhood[@id='Oakland']/block[@id='1']/parkingSpace[available='yes']";

    #[test]
    fn register_returns_initial_snapshot() {
        let (db, _) = setup();
        let mut reg = ContinuousRegistry::new();
        let svc = Service::parking();
        let n = reg.register(1, Endpoint(5), CQ, &svc, &db, 0.0).unwrap();
        assert_eq!(n.qid, 1);
        // Nothing available yet.
        assert_eq!(n.answer_xml, "<result/>");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn update_triggers_notification_only_on_change() {
        let (mut db, block) = setup();
        let mut reg = ContinuousRegistry::new();
        let svc = Service::parking();
        reg.register(1, Endpoint(5), CQ, &svc, &db, 0.0).unwrap();

        // Space 1 becomes available: one notification.
        let sp1 = block.child("parkingSpace", "1");
        db.apply_update(&sp1, &[("available".into(), "yes".into())], 1.0).unwrap();
        let n = reg.on_update(&sp1, &db, 1.0);
        assert_eq!(n.len(), 1);
        assert!(n[0].answer_xml.contains("parkingSpace"));

        // The same value again: answer unchanged, no notification.
        db.apply_update(&sp1, &[("available".into(), "yes".into())], 2.0).unwrap();
        assert!(reg.on_update(&sp1, &db, 2.0).is_empty());

        // It flips back: notification with an empty result.
        db.apply_update(&sp1, &[("available".into(), "no".into())], 3.0).unwrap();
        let n = reg.on_update(&sp1, &db, 3.0);
        assert_eq!(n.len(), 1);
        assert_eq!(n[0].answer_xml, "<result/>");
    }

    #[test]
    fn updates_outside_scope_are_ignored() {
        let (db, block) = setup();
        let mut reg = ContinuousRegistry::new();
        let svc = Service::parking();
        // The continuous query is scoped to block 1 of Oakland.
        reg.register(1, Endpoint(5), CQ, &svc, &db, 0.0).unwrap();
        // An (imaginary) update elsewhere does not trigger re-evaluation.
        let elsewhere = IdPath::from_pairs([
            ("usRegion", "NE"),
            ("state", "PA"),
            ("county", "A"),
            ("city", "P"),
            ("neighborhood", "Shadyside"),
            ("block", "9"),
        ]);
        let _ = block;
        assert!(reg.on_update(&elsewhere, &db, 1.0).is_empty());
    }

    #[test]
    fn cancel_stops_notifications() {
        let (mut db, block) = setup();
        let mut reg = ContinuousRegistry::new();
        let svc = Service::parking();
        reg.register(7, Endpoint(5), CQ, &svc, &db, 0.0).unwrap();
        assert!(reg.cancel(7));
        assert!(!reg.cancel(7));
        let sp1 = block.child("parkingSpace", "1");
        db.apply_update(&sp1, &[("available".into(), "yes".into())], 1.0).unwrap();
        assert!(reg.on_update(&sp1, &db, 1.0).is_empty());
        assert!(reg.is_empty());
    }

    #[test]
    fn multiple_subscribers_each_notified() {
        let (mut db, block) = setup();
        let mut reg = ContinuousRegistry::new();
        let svc = Service::parking();
        reg.register(1, Endpoint(10), CQ, &svc, &db, 0.0).unwrap();
        reg.register(2, Endpoint(11), CQ, &svc, &db, 0.0).unwrap();
        let sp2 = block.child("parkingSpace", "2");
        db.apply_update(&sp2, &[("available".into(), "yes".into())], 1.0).unwrap();
        let n = reg.on_update(&sp2, &db, 1.0);
        assert_eq!(n.len(), 2);
        assert_eq!(n[0].qid, 1);
        assert_eq!(n[1].qid, 2);
        assert_eq!(n[0].endpoint, Endpoint(10));
    }
}
