//! Storage backends: where segment bytes live.
//!
//! A [`StorageBackend`] is a flat namespace of named byte blobs (segments)
//! supporting append, whole-blob write, read, delete and listing — the
//! minimal contract the per-site store ([`crate::storage::SiteStore`])
//! needs. Two implementations ship: [`MemoryBackend`] (a mutex-guarded
//! map, the default for the DES and for tests that don't exercise real
//! I/O) and [`FileBackend`] (one file per segment under a root directory).
//!
//! Both are deliberately dumb: framing, checksums, sealing and expiry
//! policy all live a layer up, so a torn write corrupts *bytes*, never the
//! store's logic — recovery validates every record it reads regardless of
//! which backend produced it.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A backend I/O failure (wraps the OS error text; the memory backend
/// never fails).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageError(pub String);

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage: {}", self.0)
    }
}

impl std::error::Error for StorageError {}

/// A flat namespace of append-able byte blobs. `&self` methods with
/// interior mutability: the store above serializes access (appends happen
/// on the owner loop only), but handles are shared across the agent and
/// its substrate.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// Appends bytes to `name`, creating it if absent.
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;

    /// Creates or replaces `name` with exactly `bytes`.
    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError>;

    /// The full contents of `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError>;

    /// Removes `name` (idempotent). This is the O(1) whole-segment expiry
    /// primitive: no content is scanned.
    fn remove(&self, name: &str) -> Result<(), StorageError>;

    /// Every segment name present, in unspecified order.
    fn list(&self) -> Result<Vec<String>, StorageError>;
}

/// Shared handles delegate: a crash/restart test keeps an
/// `Arc<MemoryBackend>` alive across the agent it kills, then hands a
/// clone to the replacement.
impl<T: StorageBackend + ?Sized> StorageBackend for std::sync::Arc<T> {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        (**self).append(name, bytes)
    }

    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        (**self).write(name, bytes)
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        (**self).read(name)
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        (**self).remove(name)
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        (**self).list()
    }
}

/// In-memory backend: a mutex-guarded name → bytes map. Durable only for
/// the lifetime of the process, which is exactly what the DES and the
/// torn-write/compaction proptests need (they corrupt and re-read bytes
/// without touching a disk).
#[derive(Debug, Default)]
pub struct MemoryBackend {
    blobs: Mutex<HashMap<String, Vec<u8>>>,
}

impl MemoryBackend {
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }
}

impl StorageBackend for MemoryBackend {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let mut g = self.blobs.lock().unwrap_or_else(|e| e.into_inner());
        g.entry(name.to_string()).or_default().extend_from_slice(bytes);
        Ok(())
    }

    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let mut g = self.blobs.lock().unwrap_or_else(|e| e.into_inner());
        g.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        let g = self.blobs.lock().unwrap_or_else(|e| e.into_inner());
        Ok(g.get(name).cloned())
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        let mut g = self.blobs.lock().unwrap_or_else(|e| e.into_inner());
        g.remove(name);
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let g = self.blobs.lock().unwrap_or_else(|e| e.into_inner());
        Ok(g.keys().cloned().collect())
    }
}

/// File backend: one file per segment under `root` (created on first use).
/// Appends open the file in append mode per call — segment appends are
/// already batched per mutation, and recovery never trusts file contents
/// anyway (every record is checksum-validated), so there is no in-process
/// write buffer to lose. fsync is out of scope: the crash model here is
/// process loss, not power loss (DESIGN §4i).
#[derive(Debug)]
pub struct FileBackend {
    root: PathBuf,
}

impl FileBackend {
    /// Opens (creating if needed) the segment directory at `root`.
    pub fn new(root: impl AsRef<Path>) -> Result<FileBackend, StorageError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root).map_err(|e| StorageError(e.to_string()))?;
        Ok(FileBackend { root })
    }

    /// The directory segments live in.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl StorageBackend for FileBackend {
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path_of(name))
            .map_err(|e| StorageError(e.to_string()))?;
        f.write_all(bytes).map_err(|e| StorageError(e.to_string()))
    }

    fn write(&self, name: &str, bytes: &[u8]) -> Result<(), StorageError> {
        fs::write(self.path_of(name), bytes).map_err(|e| StorageError(e.to_string()))
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>, StorageError> {
        match fs::read(self.path_of(name)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError(e.to_string())),
        }
    }

    fn remove(&self, name: &str) -> Result<(), StorageError> {
        match fs::remove_file(self.path_of(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError(e.to_string())),
        }
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let rd = fs::read_dir(&self.root).map_err(|e| StorageError(e.to_string()))?;
        let mut names = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| StorageError(e.to_string()))?;
            if entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                if let Some(n) = entry.file_name().to_str() {
                    names.push(n.to_string());
                }
            }
        }
        Ok(names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(b: &dyn StorageBackend) {
        assert_eq!(b.read("a").unwrap(), None);
        b.append("a", b"one").unwrap();
        b.append("a", b"two").unwrap();
        assert_eq!(b.read("a").unwrap().as_deref(), Some(&b"onetwo"[..]));
        b.write("a", b"fresh").unwrap();
        assert_eq!(b.read("a").unwrap().as_deref(), Some(&b"fresh"[..]));
        b.write("b", b"x").unwrap();
        let mut names = b.list().unwrap();
        names.sort();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
        b.remove("a").unwrap();
        b.remove("a").unwrap(); // idempotent
        assert_eq!(b.read("a").unwrap(), None);
        assert_eq!(b.list().unwrap(), vec!["b".to_string()]);
    }

    #[test]
    fn memory_backend_contract() {
        exercise(&MemoryBackend::new());
    }

    #[test]
    fn file_backend_contract() {
        let dir = std::env::temp_dir().join(format!(
            "iris-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let b = FileBackend::new(&dir).unwrap();
        exercise(&b);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
