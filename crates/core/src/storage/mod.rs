//! Durable segment-based fragment storage (ROADMAP item 1).
//!
//! Each site may attach a [`SiteStore`]: a per-site **write-ahead log** of
//! fragment mutations (update / merge / evict / migrate, as
//! [`WalRecord`]s — length-framed, versioned, CRC-checksummed like
//! `simnet::wire` frames) plus periodic **snapshots**, organized as
//! time-partitioned sealed segments over a pluggable [`StorageBackend`]
//! ([`MemoryBackend`] / [`FileBackend`]).
//!
//! ## Segment lifecycle (active → sealed → expired)
//!
//! Mutations append to the *active* WAL segment `wal-<seq>.seg`. Writing a
//! snapshot seals it: the snapshot becomes segment `snap-<seq+1>.seg`
//! (holding one checksummed [`WalRecord::Snapshot`]), a fresh WAL segment
//! opens, and every segment older than the snapshot is *superseded* —
//! recovery will never read it, so it can be expired with one O(1)
//! `remove` per whole segment, no content scan
//! ([`DurabilityConfig::retain_segments`] keeps a bounded history). Each
//! segment header carries the substrate-clock time at which it opened
//! (`t_lo`), so retention is by *time window*, which fits sensor data's
//! append-heavy, recency-weighted shape.
//!
//! ## Recovery
//!
//! [`SiteStore::open`] scans the backend: the newest intact snapshot is
//! the base state, and WAL segments with a higher sequence number replay
//! on top, in order, **stopping cleanly at the first invalid record** — a
//! torn tail (truncated or bit-flipped by a crash mid-append) loses at
//! most the mutations after the last valid checksum and can never
//! resurrect a half-applied one, because records apply atomically after
//! full validation. [`SiteDatabase::restore_from`] replays the recovered
//! state through the very mutation methods that produced it.
//!
//! Appends happen inside `SiteDatabase`'s mutation methods, which the
//! organizing agent only calls on its owner loop — the read path never
//! touches the log. Snapshots run at owner-loop quiescent points, next to
//! the cache sweep.

mod backend;
mod record;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

pub use backend::{FileBackend, MemoryBackend, StorageBackend, StorageError};
pub use record::{
    crc32, encode_record, encode_segment_header, split_record, split_segment_header,
    RecordError, SegmentHeader, WalRecord, RECORD_HEADER_LEN, SEGMENT_HEADER_LEN,
    SEGMENT_KIND_SNAPSHOT, SEGMENT_KIND_WAL, SEGMENT_MAGIC, STORE_VERSION,
};

/// Tuning knobs for a site's durability plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Automatic snapshot cadence: after this many WAL records a snapshot
    /// is taken at the next owner-loop quiescent point (0 = only explicit
    /// snapshots).
    pub snapshot_every: u64,
    /// How many superseded sealed segments to retain as history windows;
    /// older ones are expired O(1) at snapshot time. 0 keeps only the live
    /// snapshot + active WAL.
    pub retain_segments: usize,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig { snapshot_every: 256, retain_segments: 0 }
    }
}

/// A sealed (no longer written) segment known to the store.
#[derive(Debug, Clone, PartialEq)]
pub struct SealedSegment {
    pub name: String,
    pub kind: u8,
    pub seq: u64,
    /// Substrate-clock time at which the segment opened.
    pub t_lo: f64,
}

/// Everything [`SiteStore::open`] could recover from the backend.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Serialized database state of the newest intact snapshot (internal
    /// attributes included). `None` on a fresh store; `Some("")` is a
    /// snapshot of the empty database.
    pub snapshot_xml: Option<String>,
    /// WAL records to replay on top of the snapshot, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded after the last valid record (torn/corrupt tail).
    pub torn_bytes: usize,
    /// Segments scanned during recovery.
    pub segments_scanned: usize,
}

impl RecoveredState {
    /// True when the backend held no usable state at all.
    pub fn is_empty(&self) -> bool {
        self.snapshot_xml.is_none() && self.records.is_empty()
    }
}

/// Outcome of a completed recovery ([`SiteDatabase::restore_from`]),
/// mirrored into `recovery.*` metrics by the agent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    pub snapshot_loaded: bool,
    pub records_replayed: u64,
    pub torn_bytes: usize,
    /// Wall-clock milliseconds spent parsing the snapshot and replaying
    /// the log tail.
    pub replay_ms: f64,
}

fn wal_name(seq: u64) -> String {
    format!("wal-{seq:016x}.seg")
}

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:016x}.seg")
}

/// The per-site segment store: framing, sealing, recovery and expiry over
/// a [`StorageBackend`]. One instance per site; the agent serializes all
/// access through its owner loop (via [`SiteWal`]).
#[derive(Debug)]
pub struct SiteStore {
    backend: Box<dyn StorageBackend>,
    config: DurabilityConfig,
    /// Next segment sequence number to allocate.
    next_seq: u64,
    /// Active WAL segment (created lazily on first append).
    active: Option<(String, u64)>,
    /// Records appended to the active segment.
    active_records: u64,
    /// Seq of the newest durable snapshot.
    snapshot_seq: Option<u64>,
    /// Sealed segments still present on the backend, ascending seq.
    sealed: Vec<SealedSegment>,
}

impl SiteStore {
    /// Opens a store over `backend`, recovering whatever intact state it
    /// holds. New appends always go to a *fresh* segment — nothing is ever
    /// written after a possibly-torn tail.
    pub fn open(
        backend: Box<dyn StorageBackend>,
        config: DurabilityConfig,
    ) -> Result<(SiteStore, RecoveredState), StorageError> {
        let mut segments: Vec<(SegmentHeader, String, Vec<u8>)> = Vec::new();
        for name in backend.list()? {
            let Some(bytes) = backend.read(&name)? else { continue };
            // Segments with unreadable headers are ignored (and left in
            // place for forensics), never misreplayed.
            if let Ok((header, body)) = split_segment_header(&bytes) {
                segments.push((header, name, body.to_vec()));
            }
        }
        segments.sort_by_key(|(h, _, _)| h.seq);
        let segments_scanned = segments.len();

        // Newest snapshot whose single record is intact is the base state.
        let mut snapshot_xml = None;
        let mut snapshot_seq = None;
        for (h, _, body) in segments.iter().rev() {
            if h.kind != SEGMENT_KIND_SNAPSHOT {
                continue;
            }
            if let Ok((WalRecord::Snapshot { xml }, _)) = split_record(body) {
                snapshot_xml = Some(xml);
                snapshot_seq = Some(h.seq);
                break;
            }
        }

        // Replay WAL segments after the snapshot, in order, stopping at
        // the first invalid record anywhere: applying a later segment
        // across a torn one would reorder mutations.
        let mut records = Vec::new();
        let mut torn_bytes = 0usize;
        'outer: for (h, _, body) in &segments {
            if h.kind != SEGMENT_KIND_WAL || Some(h.seq) <= snapshot_seq {
                continue;
            }
            let mut rest: &[u8] = body;
            while !rest.is_empty() {
                match split_record(rest) {
                    Ok((rec, r)) => {
                        records.push(rec);
                        rest = r;
                    }
                    Err(_) => {
                        torn_bytes = rest.len();
                        break 'outer;
                    }
                }
            }
        }

        let next_seq = segments.last().map_or(0, |(h, _, _)| h.seq + 1);
        let sealed = segments
            .into_iter()
            .map(|(h, name, _)| SealedSegment { name, kind: h.kind, seq: h.seq, t_lo: h.t_lo })
            .collect();
        let store = SiteStore {
            backend,
            config,
            next_seq,
            active: None,
            active_records: 0,
            snapshot_seq,
            sealed,
        };
        let recovered =
            RecoveredState { snapshot_xml, records, torn_bytes, segments_scanned };
        Ok((store, recovered))
    }

    /// The store's configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// Appends one mutation record to the active WAL segment (creating it,
    /// stamped with window start `now`, if none is open). Returns the
    /// bytes written.
    pub fn append(&mut self, rec: &WalRecord, now: f64) -> Result<usize, StorageError> {
        let name = match &self.active {
            Some((name, _)) => name.clone(),
            None => {
                let seq = self.next_seq;
                self.next_seq += 1;
                let name = wal_name(seq);
                let header = encode_segment_header(&SegmentHeader {
                    kind: SEGMENT_KIND_WAL,
                    seq,
                    t_lo: now,
                });
                self.backend.write(&name, &header)?;
                self.active = Some((name.clone(), seq));
                self.active_records = 0;
                name
            }
        };
        let bytes = encode_record(rec);
        self.backend.append(&name, &bytes)?;
        self.active_records += 1;
        Ok(bytes.len())
    }

    /// Records appended to the active segment since it opened (i.e. since
    /// the last snapshot or open).
    pub fn active_records(&self) -> u64 {
        self.active_records
    }

    /// Writes `xml` (a full serialized database state) as a new snapshot
    /// segment, seals the active WAL, and expires superseded segments
    /// beyond the retention budget — O(1) per expired segment.
    pub fn write_snapshot(&mut self, xml: &str, now: f64) -> Result<(), StorageError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let name = snap_name(seq);
        let mut bytes = encode_segment_header(&SegmentHeader {
            kind: SEGMENT_KIND_SNAPSHOT,
            seq,
            t_lo: now,
        });
        bytes.extend_from_slice(&encode_record(&WalRecord::Snapshot { xml: xml.into() }));
        self.backend.write(&name, &bytes)?;
        if let Some((active_name, active_seq)) = self.active.take() {
            self.sealed.push(SealedSegment {
                name: active_name,
                kind: SEGMENT_KIND_WAL,
                seq: active_seq,
                t_lo: now,
            });
        }
        self.active_records = 0;
        self.snapshot_seq = Some(seq);
        self.sealed.push(SealedSegment {
            name,
            kind: SEGMENT_KIND_SNAPSHOT,
            seq,
            t_lo: now,
        });
        self.expire_superseded()?;
        Ok(())
    }

    /// Drops superseded sealed segments (those recovery can no longer
    /// need: seq below the newest snapshot) beyond the retention budget,
    /// oldest windows first. Each expiry is a single backend `remove` —
    /// whole-window, O(1), no content scan.
    fn expire_superseded(&mut self) -> Result<(), StorageError> {
        let Some(snap) = self.snapshot_seq else { return Ok(()) };
        let superseded: Vec<usize> = self
            .sealed
            .iter()
            .enumerate()
            .filter(|(_, s)| s.seq < snap)
            .map(|(i, _)| i)
            .collect();
        if superseded.len() <= self.config.retain_segments {
            return Ok(());
        }
        let drop_n = superseded.len() - self.config.retain_segments;
        // `sealed` is seq-ascending, so the first `drop_n` superseded
        // entries are the oldest windows.
        let mut doomed: Vec<String> = Vec::with_capacity(drop_n);
        for &i in superseded.iter().take(drop_n) {
            doomed.push(self.sealed[i].name.clone());
        }
        for name in &doomed {
            self.backend.remove(name)?;
        }
        self.sealed.retain(|s| !doomed.contains(&s.name));
        Ok(())
    }

    /// Sealed segments currently present, ascending seq (inspection).
    pub fn sealed_segments(&self) -> &[SealedSegment] {
        &self.sealed
    }

    /// Total segments on the backend (sealed + active), for tests.
    pub fn segment_count(&self) -> usize {
        self.sealed.len() + usize::from(self.active.is_some())
    }
}

/// The shared durability handle a [`crate::fragment::SiteDatabase`]
/// carries: the store behind a mutex (appends are owner-loop-only, so the
/// lock is uncontended) plus lock-free counters the metrics plane mirrors
/// as `wal.*` / `recovery.*` series.
#[derive(Debug)]
pub struct SiteWal {
    store: Mutex<SiteStore>,
    appends: AtomicU64,
    bytes: AtomicU64,
    snapshots: AtomicU64,
    append_errors: AtomicU64,
    /// Substrate clock (f64 bits), refreshed by timestamped mutations and
    /// snapshots; stamps new segment windows.
    clock: AtomicU64,
    /// Set when a non-WAL-expressible mutation happened (bootstrap, raw
    /// document surgery): the next quiescent point must snapshot.
    dirty: AtomicBool,
    replays: AtomicU64,
    replayed_records: AtomicU64,
    /// Replay durations not yet mirrored into the metrics registry.
    pending_replay_ms: Mutex<Vec<f64>>,
}

impl SiteWal {
    pub fn new(store: SiteStore) -> SiteWal {
        SiteWal {
            store: Mutex::new(store),
            appends: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            clock: AtomicU64::new(0f64.to_bits()),
            dirty: AtomicBool::new(false),
            replays: AtomicU64::new(0),
            replayed_records: AtomicU64::new(0),
            pending_replay_ms: Mutex::new(Vec::new()),
        }
    }

    fn now(&self) -> f64 {
        f64::from_bits(self.clock.load(Ordering::Relaxed))
    }

    /// Advances the wal's notion of substrate time (monotone).
    pub fn note_time(&self, now: f64) {
        if now > self.now() {
            self.clock.store(now.to_bits(), Ordering::Relaxed);
        }
    }

    /// Appends one mutation record. Backend failures are counted, not
    /// propagated: the site keeps serving (availability over durability;
    /// the error counter makes the gap observable).
    pub fn append(&self, rec: &WalRecord) {
        if let WalRecord::Update { ts, .. } = rec {
            self.note_time(*ts);
        }
        let now = self.now();
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        match store.append(rec, now) {
            Ok(n) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Flags that the database changed through a path the WAL cannot
    /// express; the next [`SiteWal::should_snapshot`] check fires.
    pub fn mark_dirty(&self) {
        self.dirty.store(true, Ordering::Relaxed);
    }

    /// True when a snapshot is due (dirty flag, or the configured record
    /// cadence elapsed). O(1); called from owner-loop quiescent checks.
    pub fn should_snapshot(&self) -> bool {
        if self.dirty.load(Ordering::Relaxed) {
            return true;
        }
        let store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        let every = store.config.snapshot_every;
        every != 0 && store.active_records() >= every
    }

    /// Writes `xml` as a new snapshot segment at time `now`.
    pub fn snapshot(&self, xml: &str, now: f64) {
        self.note_time(now);
        let mut store = self.store.lock().unwrap_or_else(|e| e.into_inner());
        match store.write_snapshot(xml, self.now()) {
            Ok(()) => {
                self.snapshots.fetch_add(1, Ordering::Relaxed);
                self.dirty.store(false, Ordering::Relaxed);
            }
            Err(_) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records a completed recovery for the metrics plane.
    pub fn note_recovery(&self, stats: &RecoveryStats) {
        self.replays.fetch_add(1, Ordering::Relaxed);
        self.replayed_records.fetch_add(stats.records_replayed, Ordering::Relaxed);
        self.pending_replay_ms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(stats.replay_ms);
    }

    /// Drains replay durations recorded since the last call (mirrored into
    /// the `recovery.replay_ms` histogram at publish time).
    pub fn drain_replay_ms(&self) -> Vec<f64> {
        std::mem::take(
            &mut *self.pending_replay_ms.lock().unwrap_or_else(|e| e.into_inner()),
        )
    }

    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    pub fn snapshots(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    pub fn append_errors(&self) -> u64 {
        self.append_errors.load(Ordering::Relaxed)
    }

    pub fn replays(&self) -> u64 {
        self.replays.load(Ordering::Relaxed)
    }

    pub fn replayed_records(&self) -> u64 {
        self.replayed_records.load(Ordering::Relaxed)
    }

    /// Segment count on the backend (tests/inspection).
    pub fn segment_count(&self) -> usize {
        self.store.lock().unwrap_or_else(|e| e.into_inner()).segment_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idable::IdPath;

    fn rec(i: u64) -> WalRecord {
        WalRecord::Update {
            path: IdPath::from_pairs([("usRegion", "NE")]),
            fields: vec![("available".into(), format!("v{i}"))],
            ts: i as f64,
        }
    }

    fn open_mem(cfg: DurabilityConfig) -> (SiteStore, RecoveredState) {
        SiteStore::open(Box::new(MemoryBackend::new()), cfg).unwrap()
    }

    #[test]
    fn fresh_store_recovers_nothing() {
        let (_, recovered) = open_mem(DurabilityConfig::default());
        assert!(recovered.is_empty());
        assert_eq!(recovered.torn_bytes, 0);
    }

    /// Round-trips through a *shared* backend: a second open sees exactly
    /// what the first wrote, snapshot base + WAL tail.
    #[test]
    fn snapshot_plus_tail_recovery() {
        let backend = std::sync::Arc::new(MemoryBackend::new());
        let (mut store, _) =
            SiteStore::open(Box::new(backend.clone()), DurabilityConfig::default()).unwrap();
        store.append(&rec(1), 1.0).unwrap();
        store.write_snapshot("<usRegion id=\"NE\"/>", 2.0).unwrap();
        store.append(&rec(3), 3.0).unwrap();
        store.append(&rec(4), 4.0).unwrap();

        let (_, recovered) =
            SiteStore::open(Box::new(backend), DurabilityConfig::default()).unwrap();
        assert_eq!(recovered.snapshot_xml.as_deref(), Some("<usRegion id=\"NE\"/>"));
        assert_eq!(recovered.records, vec![rec(3), rec(4)]);
        assert_eq!(recovered.torn_bytes, 0);
    }

    #[test]
    fn snapshot_expires_superseded_segments_o1() {
        let (mut store, _) = open_mem(DurabilityConfig::default());
        store.append(&rec(1), 1.0).unwrap();
        store.write_snapshot("<a/>", 2.0).unwrap();
        store.append(&rec(3), 3.0).unwrap();
        store.write_snapshot("<b/>", 4.0).unwrap();
        // Only the newest snapshot survives with retain_segments = 0; the
        // next append opens a fresh WAL.
        assert_eq!(store.segment_count(), 1);
        store.append(&rec(5), 5.0).unwrap();
        assert_eq!(store.segment_count(), 2);
    }

    #[test]
    fn retention_keeps_history_windows() {
        let (mut store, _) =
            open_mem(DurabilityConfig { snapshot_every: 0, retain_segments: 2 });
        for i in 0..4u64 {
            store.append(&rec(i), i as f64).unwrap();
            store.write_snapshot(&format!("<s{i}/>"), i as f64).unwrap();
        }
        // Live snapshot + 2 retained superseded windows.
        let superseded = store
            .sealed_segments()
            .iter()
            .filter(|s| s.seq < store.snapshot_seq.unwrap())
            .count();
        assert_eq!(superseded, 2);
    }
}
