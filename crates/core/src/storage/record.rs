//! On-disk record and segment-header codec for the write-ahead log.
//!
//! The layout follows the `simnet::wire` discipline — length-framed,
//! versioned, little-endian — with one addition the network codec does not
//! need: a CRC-32 over the payload, because a disk can hand back a *torn*
//! or bit-rotted record where a stream socket only truncates.
//!
//! ```text
//! record   := [version u8][payload_len u32 LE][crc32 u32 LE][payload]
//! payload  := [tag u8][fields...]
//! segment  := [magic "IRSG"][version u8][kind u8][seq u64 LE][t_lo f64-bits LE] records*
//! ```
//!
//! The CRC covers exactly the payload bytes (tag included). Any byte-level
//! change to this layout is a [`STORE_VERSION`] bump, not a silent
//! re-encode — pinned by the golden-bytes test in `tests/storage_prop.rs`
//! exactly as `tests/wire_prop.rs` pins network frames.

use crate::fragment::Status;
use crate::idable::IdPath;

/// Version byte every record and segment header starts with (after the
/// magic, for segments).
pub const STORE_VERSION: u8 = 1;

/// Bytes before a record's payload: version + length + crc.
pub const RECORD_HEADER_LEN: usize = 1 + 4 + 4;

/// Segment file magic.
pub const SEGMENT_MAGIC: [u8; 4] = *b"IRSG";

/// Bytes in a segment header: magic + version + kind + seq + t_lo.
pub const SEGMENT_HEADER_LEN: usize = 4 + 1 + 1 + 8 + 8;

/// Segment kind byte: an append-only run of mutation records.
pub const SEGMENT_KIND_WAL: u8 = 1;
/// Segment kind byte: a sealed snapshot (one `Snapshot` record).
pub const SEGMENT_KIND_SNAPSHOT: u8 = 2;

/// One durable fragment mutation (or a full-state snapshot). The variants
/// mirror the [`crate::fragment::SiteDatabase`] mutation surface, so a
/// replayed record re-runs exactly the code path that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A sensor update applied at `path` ([`SiteDatabase::apply_update`]).
    Update { path: IdPath, fields: Vec<(String, String)>, ts: f64 },
    /// A fragment merge ([`SiteDatabase::merge_fragment`]) — cache fills,
    /// sub-answer merges and the receiving half of an ownership migration.
    /// The XML carries internal status/timestamp attributes verbatim.
    Merge { fragment_xml: String },
    /// An eviction/demotion to an incomplete stub ([`SiteDatabase::evict`]).
    Evict { path: IdPath },
    /// A status change ([`SiteDatabase::set_status`] /
    /// [`set_status_subtree`]) — both halves of an ownership migration.
    SetStatus { path: IdPath, status: Status, subtree: bool },
    /// A full serialized database state (the single record of a snapshot
    /// segment). Empty XML encodes the empty database.
    Snapshot { xml: String },
}

/// Why a record (or header) failed to decode. Recovery treats every
/// variant the same way — stop replaying at the previous record — but the
/// distinction matters for tests and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// Fewer bytes than a header, or than the header's claimed length.
    Truncated,
    /// Unknown record/segment version.
    Version(u8),
    /// CRC mismatch: the payload bytes are not what was written.
    Checksum,
    /// Unknown payload tag (within a valid checksum — format drift).
    UnknownTag(u8),
    /// A length-prefixed field overran the payload or held invalid UTF-8.
    Malformed,
    /// Segment header magic/kind mismatch.
    BadSegment,
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Truncated => write!(f, "truncated record"),
            RecordError::Version(v) => write!(f, "unknown store version {v}"),
            RecordError::Checksum => write!(f, "record checksum mismatch"),
            RecordError::UnknownTag(t) => write!(f, "unknown record tag {t}"),
            RecordError::Malformed => write!(f, "malformed record payload"),
            RecordError::BadSegment => write!(f, "bad segment header"),
        }
    }
}

impl std::error::Error for RecordError {}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected). Table built at compile time; no deps.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Field encoding helpers (LE, length-prefixed — the wire.rs idiom).
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_path(buf: &mut Vec<u8>, p: &IdPath) {
    let segs = p.segments();
    put_u32(buf, segs.len() as u32);
    for (tag, id) in segs {
        put_str(buf, tag);
        put_str(buf, id);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RecordError> {
        if self.buf.len() - self.pos < n {
            return Err(RecordError::Malformed);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RecordError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RecordError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, RecordError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, RecordError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, RecordError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| RecordError::Malformed)
    }

    fn path(&mut self) -> Result<IdPath, RecordError> {
        let n = self.u32()? as usize;
        // Cap pre-allocation: a corrupt count must not OOM the decoder.
        let mut segs = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let tag = self.string()?;
            let id = self.string()?;
            segs.push((tag, id));
        }
        Ok(IdPath::from_pairs(segs))
    }

    fn done(&self) -> Result<(), RecordError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(RecordError::Malformed)
        }
    }
}

fn status_byte(s: Status) -> u8 {
    match s {
        Status::Incomplete => 0,
        Status::IdComplete => 1,
        Status::Complete => 2,
        Status::Owned => 3,
    }
}

fn byte_status(b: u8) -> Result<Status, RecordError> {
    Ok(match b {
        0 => Status::Incomplete,
        1 => Status::IdComplete,
        2 => Status::Complete,
        3 => Status::Owned,
        _ => return Err(RecordError::Malformed),
    })
}

const TAG_UPDATE: u8 = 1;
const TAG_MERGE: u8 = 2;
const TAG_EVICT: u8 = 3;
const TAG_SET_STATUS: u8 = 4;
const TAG_SNAPSHOT: u8 = 5;

fn encode_payload(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::new();
    match rec {
        WalRecord::Update { path, fields, ts } => {
            buf.push(TAG_UPDATE);
            put_path(&mut buf, path);
            put_u32(&mut buf, fields.len() as u32);
            for (k, v) in fields {
                put_str(&mut buf, k);
                put_str(&mut buf, v);
            }
            put_f64(&mut buf, *ts);
        }
        WalRecord::Merge { fragment_xml } => {
            buf.push(TAG_MERGE);
            put_str(&mut buf, fragment_xml);
        }
        WalRecord::Evict { path } => {
            buf.push(TAG_EVICT);
            put_path(&mut buf, path);
        }
        WalRecord::SetStatus { path, status, subtree } => {
            buf.push(TAG_SET_STATUS);
            put_path(&mut buf, path);
            buf.push(status_byte(*status));
            buf.push(u8::from(*subtree));
        }
        WalRecord::Snapshot { xml } => {
            buf.push(TAG_SNAPSHOT);
            put_str(&mut buf, xml);
        }
    }
    buf
}

fn decode_payload(payload: &[u8]) -> Result<WalRecord, RecordError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    let rec = match tag {
        TAG_UPDATE => {
            let path = r.path()?;
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let k = r.string()?;
                let v = r.string()?;
                fields.push((k, v));
            }
            let ts = r.f64()?;
            WalRecord::Update { path, fields, ts }
        }
        TAG_MERGE => WalRecord::Merge { fragment_xml: r.string()? },
        TAG_EVICT => WalRecord::Evict { path: r.path()? },
        TAG_SET_STATUS => {
            let path = r.path()?;
            let status = byte_status(r.u8()?)?;
            let subtree = r.u8()? != 0;
            WalRecord::SetStatus { path, status, subtree }
        }
        TAG_SNAPSHOT => WalRecord::Snapshot { xml: r.string()? },
        t => return Err(RecordError::UnknownTag(t)),
    };
    r.done()?;
    Ok(rec)
}

/// Encodes a record into its framed, checksummed on-disk form.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_payload(rec);
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.push(STORE_VERSION);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes the record at the front of `buf`, returning it and the rest of
/// the buffer. Every failure mode a torn or rotted tail can produce maps
/// to an error — never a panic, never a half-decoded record.
pub fn split_record(buf: &[u8]) -> Result<(WalRecord, &[u8]), RecordError> {
    if buf.len() < RECORD_HEADER_LEN {
        return Err(RecordError::Truncated);
    }
    if buf[0] != STORE_VERSION {
        return Err(RecordError::Version(buf[0]));
    }
    let len = u32::from_le_bytes(buf[1..5].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(buf[5..9].try_into().unwrap());
    let rest = &buf[RECORD_HEADER_LEN..];
    if rest.len() < len {
        return Err(RecordError::Truncated);
    }
    let (payload, rest) = rest.split_at(len);
    if crc32(payload) != crc {
        return Err(RecordError::Checksum);
    }
    let rec = decode_payload(payload)?;
    Ok((rec, rest))
}

/// A parsed segment header.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentHeader {
    /// [`SEGMENT_KIND_WAL`] or [`SEGMENT_KIND_SNAPSHOT`].
    pub kind: u8,
    /// Monotonic segment sequence number (total order across kinds).
    pub seq: u64,
    /// Start of the segment's time window (seconds, substrate clock).
    pub t_lo: f64,
}

/// Encodes a segment header.
pub fn encode_segment_header(h: &SegmentHeader) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_LEN);
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.push(STORE_VERSION);
    out.push(h.kind);
    put_u64(&mut out, h.seq);
    put_u64(&mut out, h.t_lo.to_bits());
    out
}

/// Decodes a segment header from the front of `buf`, returning it and the
/// record bytes that follow.
pub fn split_segment_header(buf: &[u8]) -> Result<(SegmentHeader, &[u8]), RecordError> {
    if buf.len() < SEGMENT_HEADER_LEN {
        return Err(RecordError::Truncated);
    }
    if buf[..4] != SEGMENT_MAGIC {
        return Err(RecordError::BadSegment);
    }
    if buf[4] != STORE_VERSION {
        return Err(RecordError::Version(buf[4]));
    }
    let kind = buf[5];
    if kind != SEGMENT_KIND_WAL && kind != SEGMENT_KIND_SNAPSHOT {
        return Err(RecordError::BadSegment);
    }
    let seq = u64::from_le_bytes(buf[6..14].try_into().unwrap());
    let t_lo = f64::from_bits(u64::from_le_bytes(buf[14..22].try_into().unwrap()));
    Ok((SegmentHeader { kind, seq, t_lo }, &buf[SEGMENT_HEADER_LEN..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<WalRecord> {
        let p = IdPath::from_pairs([("usRegion", "NE"), ("state", "PA")]);
        vec![
            WalRecord::Update {
                path: p.clone(),
                fields: vec![("available".into(), "yes".into())],
                ts: 12.5,
            },
            WalRecord::Merge { fragment_xml: "<usRegion id=\"NE\"/>".into() },
            WalRecord::Evict { path: p.clone() },
            WalRecord::SetStatus { path: p, status: Status::Owned, subtree: true },
            WalRecord::Snapshot { xml: String::new() },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for rec in samples() {
            let bytes = encode_record(&rec);
            let (back, rest) = split_record(&bytes).expect("decodes");
            assert_eq!(back, rec);
            assert!(rest.is_empty());
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value: CRC-32("123456789") = 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let bytes = encode_record(&samples()[0]);
        for i in RECORD_HEADER_LEN..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0x5A;
            assert!(
                matches!(split_record(&b), Err(RecordError::Checksum | RecordError::Truncated)),
                "payload corruption at {i} went unnoticed"
            );
        }
    }

    #[test]
    fn truncation_is_detected_at_every_cut() {
        let bytes = encode_record(&samples()[1]);
        for cut in 0..bytes.len() {
            assert_eq!(
                split_record(&bytes[..cut]).err(),
                Some(RecordError::Truncated),
                "prefix of length {cut} misparsed"
            );
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = encode_record(&samples()[2]);
        bytes[0] = 9;
        assert_eq!(split_record(&bytes).err(), Some(RecordError::Version(9)));
    }

    #[test]
    fn segment_header_roundtrip() {
        let h = SegmentHeader { kind: SEGMENT_KIND_SNAPSHOT, seq: 42, t_lo: 100.25 };
        let mut bytes = encode_segment_header(&h);
        bytes.extend_from_slice(b"tail");
        let (back, rest) = split_segment_header(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(rest, b"tail");
        assert_eq!(
            split_segment_header(b"IRSX").err(),
            Some(RecordError::Truncated)
        );
        let mut bad = encode_segment_header(&h);
        bad[0] = b'X';
        assert_eq!(split_segment_header(&bad).err(), Some(RecordError::BadSegment));
    }
}
