//! Schema changes (§4 "Schema changes").
//!
//! Changes that do not affect the IDable hierarchy are purely local to the
//! organizing agent owning the fragment: adding/removing attributes and
//! adding/removing non-IDable nodes. Changes that add or delete IDable
//! nodes are performed by the owner of the *parent* node (whose local
//! information records the child IDs). Cached copies elsewhere become
//! transiently inconsistent and converge through normal refreshes, exactly
//! as the paper accepts.

use sensorxml::NodeId;

use crate::error::{CoreError, CoreResult};
use crate::fragment::{format_ts, SiteDatabase, Status};
use crate::idable::{IdPath, STATUS_ATTR};

impl SiteDatabase {
    fn owned_node(&self, path: &IdPath) -> CoreResult<NodeId> {
        let n = path
            .resolve(self.doc())
            .ok_or_else(|| CoreError::Protocol(format!("no node at {path}")))?;
        if self.status_of(n) != Some(Status::Owned) {
            return Err(CoreError::Protocol(format!(
                "schema changes require ownership of {path}"
            )));
        }
        Ok(n)
    }

    /// Adds (or replaces) a plain attribute on an owned node — e.g. giving
    /// neighborhoods a `numberOfFreeSpots` attribute on the fly (§2).
    pub fn schema_add_attribute(
        &mut self,
        path: &IdPath,
        name: &str,
        value: &str,
        now: f64,
    ) -> CoreResult<()> {
        if name == "id" || name == STATUS_ATTR || name == self.service().timestamp_field {
            return Err(CoreError::Protocol(format!(
                "attribute `{name}` is reserved"
            )));
        }
        let n = self.owned_node(path)?;
        let ts_field = self.service().timestamp_field.clone();
        self.doc_mut().set_attr(n, name.to_string(), value.to_string());
        self.doc_mut().set_attr(n, ts_field, format_ts(now));
        Ok(())
    }

    /// Removes a plain attribute from an owned node.
    pub fn schema_remove_attribute(&mut self, path: &IdPath, name: &str) -> CoreResult<()> {
        if name == "id" || name == STATUS_ATTR {
            return Err(CoreError::Protocol(format!(
                "attribute `{name}` is reserved"
            )));
        }
        let n = self.owned_node(path)?;
        self.doc_mut().remove_attr(n, name);
        Ok(())
    }

    /// Adds a non-IDable child element (with optional text) to an owned
    /// node — e.g. an on-the-fly `available-spaces` aggregate field (§1).
    pub fn schema_add_field(
        &mut self,
        path: &IdPath,
        tag: &str,
        text: Option<&str>,
        now: f64,
    ) -> CoreResult<()> {
        if self.service().schema.is_idable(tag) {
            return Err(CoreError::Protocol(format!(
                "`{tag}` is IDable; use schema_add_idable_child"
            )));
        }
        let n = self.owned_node(path)?;
        let ts_field = self.service().timestamp_field.clone();
        let doc = self.doc_mut();
        let c = doc.create_element(tag.to_string());
        doc.append_child(n, c);
        if let Some(t) = text {
            doc.set_text_content(c, t.to_string());
        }
        doc.set_attr(n, ts_field, format_ts(now));
        Ok(())
    }

    /// Removes every non-IDable child named `tag` from an owned node.
    pub fn schema_remove_field(&mut self, path: &IdPath, tag: &str) -> CoreResult<usize> {
        if self.service().schema.is_idable(tag) {
            return Err(CoreError::Protocol(format!(
                "`{tag}` is IDable; use schema_remove_idable_child"
            )));
        }
        let n = self.owned_node(path)?;
        let doc = self.doc_mut();
        let victims: Vec<NodeId> = doc
            .child_elements(n)
            .filter(|&c| doc.name(c) == tag)
            .collect();
        let count = victims.len();
        for v in victims {
            doc.detach(v);
        }
        Ok(count)
    }

    /// Adds a new IDable child under an owned node (a new parking space
    /// appears on a block). The parent's owner performs this, keeping its
    /// local information — the authoritative child-ID list — correct. The
    /// new node is owned here with empty local information.
    pub fn schema_add_idable_child(
        &mut self,
        parent: &IdPath,
        tag: &str,
        id: &str,
        now: f64,
    ) -> CoreResult<IdPath> {
        if !self.service().schema.is_idable(tag) {
            return Err(CoreError::Protocol(format!("`{tag}` is not an IDable tag")));
        }
        let (ptag, _) = parent
            .last()
            .ok_or_else(|| CoreError::Protocol("cannot add below the document node".into()))?;
        if !self
            .service()
            .schema
            .idable_children(ptag)
            .iter()
            .any(|t| t == tag)
        {
            return Err(CoreError::Protocol(format!(
                "`{tag}` is not a child tag of `{ptag}` in this service"
            )));
        }
        let n = self.owned_node(parent)?;
        let ts_field = self.service().timestamp_field.clone();
        let doc = self.doc_mut();
        if doc.child_by_name_id(n, tag, id).is_some() {
            return Err(CoreError::Protocol(format!(
                "{parent} already has a {tag} with id `{id}`"
            )));
        }
        let c = doc.create_element(tag.to_string());
        doc.set_attr(c, "id", id.to_string());
        doc.set_attr(c, STATUS_ATTR, Status::Owned.as_str());
        doc.set_attr(c, ts_field.clone(), format_ts(now));
        doc.append_child(n, c);
        // The parent's local information (its child-ID list) changed too.
        doc.set_attr(n, ts_field, format_ts(now));
        Ok(parent.child(tag.to_string(), id.to_string()))
    }

    /// Deletes an IDable child (and its whole subtree) under an owned node.
    /// Stamps the parent's timestamp: its local information (the child-ID
    /// list) changed, which is how the deletion propagates to caches.
    pub fn schema_remove_idable_child(
        &mut self,
        parent: &IdPath,
        tag: &str,
        id: &str,
        now: f64,
    ) -> CoreResult<()> {
        let n = self.owned_node(parent)?;
        let ts_field = self.service().timestamp_field.clone();
        let doc = self.doc_mut();
        let victim = doc.child_by_name_id(n, tag, id).ok_or_else(|| {
            CoreError::Protocol(format!("{parent} has no {tag} with id `{id}`"))
        })?;
        doc.detach(victim);
        doc.set_attr(n, ts_field, format_ts(now));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use sensorxml::parse;

    fn setup() -> (SiteDatabase, IdPath, sensorxml::Document) {
        let master = parse(
            r#"<usRegion id="NE"><state id="PA"><county id="A"><city id="P">
                 <neighborhood id="n1">
                   <block id="1">
                     <parkingSpace id="1"><available>no</available></parkingSpace>
                   </block>
                 </neighborhood>
               </city></county></state></usRegion>"#,
        )
        .unwrap();
        let mut db = SiteDatabase::new(Service::parking());
        let root = IdPath::from_pairs([("usRegion", "NE")]);
        db.bootstrap_owned(&master, &root, true).unwrap();
        let nbhd = root
            .child("state", "PA")
            .child("county", "A")
            .child("city", "P")
            .child("neighborhood", "n1");
        (db, nbhd, master)
    }

    #[test]
    fn add_and_remove_attribute() {
        let (mut db, nbhd, _m) = setup();
        db.schema_add_attribute(&nbhd, "numberOfFreeSpots", "8", 5.0).unwrap();
        let n = nbhd.resolve(db.doc()).unwrap();
        assert_eq!(db.doc().attr(n, "numberOfFreeSpots"), Some("8"));
        assert_eq!(db.timestamp_at(&nbhd), 5.0);
        // Queries see it immediately.
        let e = sensorxpath::parse("//neighborhood[@numberOfFreeSpots > 5]").unwrap();
        let v = sensorxpath::evaluate_at(&e, db.doc(), sensorxpath::XNode::Document).unwrap();
        assert_eq!(v.as_nodes().unwrap().len(), 1);
        db.schema_remove_attribute(&nbhd, "numberOfFreeSpots").unwrap();
        let n = nbhd.resolve(db.doc()).unwrap();
        assert_eq!(db.doc().attr(n, "numberOfFreeSpots"), None);
    }

    #[test]
    fn reserved_attributes_rejected() {
        let (mut db, nbhd, _m) = setup();
        assert!(db.schema_add_attribute(&nbhd, "id", "X", 0.0).is_err());
        assert!(db.schema_add_attribute(&nbhd, "status", "owned", 0.0).is_err());
        assert!(db.schema_add_attribute(&nbhd, "timestamp", "1", 0.0).is_err());
        assert!(db.schema_remove_attribute(&nbhd, "id").is_err());
    }

    #[test]
    fn add_and_remove_non_idable_field() {
        let (mut db, nbhd, m) = setup();
        db.schema_add_field(&nbhd, "available-spaces", Some("8"), 1.0).unwrap();
        let n = nbhd.resolve(db.doc()).unwrap();
        let f = db.doc().child_by_name(n, "available-spaces").unwrap();
        assert_eq!(db.doc().text_content(f), "8");
        // Invariants hold (non-IDable content is not checked against the
        // master's ID skeleton).
        db.check_invariants(&m).unwrap();
        assert_eq!(db.schema_remove_field(&nbhd, "available-spaces").unwrap(), 1);
        assert!(db.doc().child_by_name(nbhd.resolve(db.doc()).unwrap(), "available-spaces").is_none());
        // IDable tags are rejected by the field APIs.
        assert!(db.schema_add_field(&nbhd, "block", None, 0.0).is_err());
        assert!(db.schema_remove_field(&nbhd, "block").is_err());
    }

    #[test]
    fn add_and_remove_idable_child() {
        let (mut db, nbhd, _m) = setup();
        let block = nbhd.child("block", "1");
        let p = db.schema_add_idable_child(&block, "parkingSpace", "2", 2.0).unwrap();
        assert_eq!(db.status_at(&p), Some(Status::Owned));
        // The new space is addressable and updatable.
        db.apply_update(&p, &[("available".into(), "yes".into())], 3.0).unwrap();
        let e = sensorxpath::parse("count(//parkingSpace)").unwrap();
        let v = sensorxpath::evaluate_at(&e, db.doc(), sensorxpath::XNode::Document).unwrap();
        assert_eq!(v, sensorxpath::Value::Num(2.0));
        // Duplicate ids are rejected.
        assert!(db.schema_add_idable_child(&block, "parkingSpace", "2", 2.0).is_err());
        // Wrong level rejected (a parkingSpace under a neighborhood).
        assert!(db.schema_add_idable_child(&nbhd, "parkingSpace", "9", 2.0).is_err());
        // Removal drops the subtree and stamps the parent.
        db.schema_remove_idable_child(&block, "parkingSpace", "2", 4.0).unwrap();
        let v = sensorxpath::evaluate_at(&e, db.doc(), sensorxpath::XNode::Document).unwrap();
        assert_eq!(v, sensorxpath::Value::Num(1.0));
        assert_eq!(db.timestamp_at(&block), 4.0);
        assert!(db.schema_remove_idable_child(&block, "parkingSpace", "2", 5.0).is_err());
    }

    #[test]
    fn schema_changes_require_ownership() {
        let (db, nbhd, _m) = setup();
        let mut cache = SiteDatabase::new(Service::parking());
        let frag = db.export_subtrees(std::slice::from_ref(&nbhd)).unwrap();
        cache.merge_fragment(&frag).unwrap();
        assert!(cache.schema_add_attribute(&nbhd, "x", "1", 0.0).is_err());
        assert!(cache.schema_add_field(&nbhd, "notes", None, 0.0).is_err());
        assert!(cache
            .schema_add_idable_child(&nbhd.child("block", "1"), "parkingSpace", "7", 0.0)
            .is_err());
    }
}
