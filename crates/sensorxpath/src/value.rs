//! XPath 1.0 values and the type conversion / comparison rules.

use std::borrow::Cow;

use sensorxml::{Document, NodeId};

/// A node reference inside a node-set: either a tree node (element or text)
/// or an attribute of an element (attributes are not arena nodes, so they
/// are addressed as `(owner element, attribute index)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum XNode {
    /// The document node — the invisible parent of the root element.
    /// Absolute paths start here, so that `/usRegion` (a child step) and
    /// `//usRegion` (a descendant sweep) both reach the root element with
    /// standard axis semantics.
    Document,
    /// An element or text node.
    Node(NodeId),
    /// The `idx`-th attribute of element `NodeId`.
    Attr(NodeId, u32),
}

impl XNode {
    /// The XPath string-value of the node.
    pub fn string_value(&self, doc: &Document) -> String {
        self.string_value_cow(doc).into_owned()
    }

    /// The string-value without allocating in the common cases: attribute
    /// values and leaf elements with zero or one text child borrow from the
    /// document (via [`Document::text_content_fast`]); only mixed-content
    /// concatenation allocates. Comparison predicates — the hot path of
    /// every query — go through this.
    pub fn string_value_cow<'d>(&self, doc: &'d Document) -> Cow<'d, str> {
        let node = match *self {
            XNode::Document => match doc.root() {
                Some(r) => r,
                None => return Cow::Borrowed(""),
            },
            XNode::Node(id) => id,
            XNode::Attr(id, idx) => {
                return doc
                    .attrs(id)
                    .get(idx as usize)
                    .map(|a| Cow::Borrowed(a.value.as_str()))
                    .unwrap_or_default();
            }
        };
        match doc.text_content_fast(node) {
            Some(s) => Cow::Borrowed(s),
            None => Cow::Owned(doc.text_content(node)),
        }
    }

    /// The element node, if this is one.
    pub fn as_element(&self, doc: &Document) -> Option<NodeId> {
        match *self {
            XNode::Node(id) if doc.is_element(id) => Some(id),
            _ => None,
        }
    }

    /// The node's name: tag for elements, attribute name for attributes,
    /// empty for text and the document node.
    pub fn node_name<'d>(&self, doc: &'d Document) -> &'d str {
        match *self {
            XNode::Document => "",
            XNode::Node(id) => doc.name(id),
            XNode::Attr(id, idx) => doc
                .attrs(id)
                .get(idx as usize)
                .map(|a| a.name.as_str())
                .unwrap_or(""),
        }
    }
}

/// An XPath 1.0 value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A set of nodes (kept sorted + deduplicated; order is arbitrary but
    /// deterministic under the unordered document model).
    Nodes(Vec<XNode>),
    Bool(bool),
    Num(f64),
    Str(String),
}

impl Value {
    /// An empty node-set.
    pub fn empty() -> Value {
        Value::Nodes(Vec::new())
    }

    /// boolean() conversion (XPath 1.0 §4.3).
    pub fn boolean(&self) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
        }
    }

    /// number() conversion (XPath 1.0 §4.4).
    pub fn number(&self, doc: &Document) -> f64 {
        match self {
            Value::Nodes(_) => string_to_number(&self.string(doc)),
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::Num(n) => *n,
            Value::Str(s) => string_to_number(s),
        }
    }

    /// string() conversion (XPath 1.0 §4.2). A node-set converts to the
    /// string-value of its first node (empty string if empty).
    pub fn string(&self, doc: &Document) -> String {
        match self {
            Value::Nodes(ns) => ns
                .first()
                .map(|n| n.string_value(doc))
                .unwrap_or_default(),
            Value::Bool(b) => if *b { "true" } else { "false" }.to_string(),
            Value::Num(n) => number_to_string(*n),
            Value::Str(s) => s.clone(),
        }
    }

    /// The node-set, if this value is one.
    pub fn as_nodes(&self) -> Option<&[XNode]> {
        match self {
            Value::Nodes(ns) => Some(ns),
            _ => None,
        }
    }
}

/// XPath number → string (XPath 1.0 §4.2): integers print without a decimal
/// point, NaN prints `NaN`, infinities print `Infinity`/`-Infinity`.
pub fn number_to_string(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n.is_infinite() {
        if n > 0.0 { "Infinity" } else { "-Infinity" }.to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// XPath string → number: leading/trailing whitespace allowed, otherwise any
/// failure yields NaN.
pub fn string_to_number(s: &str) -> f64 {
    let t = s.trim();
    if t.is_empty() {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// Comparison operators used by [`compare`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn num(self, a: f64, b: f64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    fn str(self, a: &str, b: &str) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            // Relational comparisons always go through numbers in XPath 1.0.
            _ => self.num(string_to_number(a), string_to_number(b)),
        }
    }

    fn is_equality(self) -> bool {
        matches!(self, CmpOp::Eq | CmpOp::Ne)
    }
}

/// Implements the XPath 1.0 comparison semantics (§3.4), including the
/// existential semantics of node-set comparisons.
pub fn compare(op: CmpOp, a: &Value, b: &Value, doc: &Document) -> bool {
    use Value::*;
    match (a, b) {
        (Nodes(na), Nodes(nb)) => na.iter().any(|x| {
            let sx = x.string_value_cow(doc);
            nb.iter().any(|y| op.str(&sx, &y.string_value_cow(doc)))
        }),
        (Nodes(ns), Num(n)) => ns
            .iter()
            .any(|x| op.num(string_to_number(&x.string_value_cow(doc)), *n)),
        (Num(n), Nodes(ns)) => ns
            .iter()
            .any(|x| op.num(*n, string_to_number(&x.string_value_cow(doc)))),
        (Nodes(ns), Str(s)) => ns.iter().any(|x| op.str(&x.string_value_cow(doc), s)),
        (Str(s), Nodes(ns)) => ns.iter().any(|x| op.str(s, &x.string_value_cow(doc))),
        (Nodes(_), Bool(bv)) => op_bool(op, a.boolean(), *bv, doc, a, b),
        (Bool(bv), Nodes(_)) => op_bool(op, *bv, b.boolean(), doc, a, b),
        _ => {
            if op.is_equality() {
                if matches!(a, Bool(_)) || matches!(b, Bool(_)) {
                    op.num(a.boolean() as i8 as f64, b.boolean() as i8 as f64)
                } else if matches!(a, Num(_)) || matches!(b, Num(_)) {
                    op.num(a.number(doc), b.number(doc))
                } else {
                    op.str(&a.string(doc), &b.string(doc))
                }
            } else {
                op.num(a.number(doc), b.number(doc))
            }
        }
    }
}

fn op_bool(op: CmpOp, a: bool, b: bool, doc: &Document, va: &Value, vb: &Value) -> bool {
    if op.is_equality() {
        op.num(a as i8 as f64, b as i8 as f64)
    } else {
        op.num(va.number(doc), vb.number(doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sensorxml::parse;

    #[test]
    fn boolean_conversions() {
        let doc = parse("<a/>").unwrap();
        assert!(!Value::empty().boolean());
        assert!(Value::Nodes(vec![XNode::Node(doc.root().unwrap())]).boolean());
        assert!(!Value::Num(0.0).boolean());
        assert!(!Value::Num(f64::NAN).boolean());
        assert!(Value::Num(-1.5).boolean());
        assert!(!Value::Str(String::new()).boolean());
        assert!(Value::Str("x".into()).boolean());
    }

    #[test]
    fn number_to_string_shapes() {
        assert_eq!(number_to_string(5.0), "5");
        assert_eq!(number_to_string(-3.0), "-3");
        assert_eq!(number_to_string(1.5), "1.5");
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
        assert_eq!(number_to_string(f64::NEG_INFINITY), "-Infinity");
        assert_eq!(number_to_string(0.0), "0");
    }

    #[test]
    fn string_to_number_rules() {
        assert_eq!(string_to_number(" 42 "), 42.0);
        assert_eq!(string_to_number("-1.5"), -1.5);
        assert!(string_to_number("abc").is_nan());
        assert!(string_to_number("").is_nan());
    }

    #[test]
    fn string_value_of_nodes() {
        let doc = parse("<a p='v'><b>hi</b></a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(XNode::Node(root).string_value(&doc), "hi");
        assert_eq!(XNode::Attr(root, 0).string_value(&doc), "v");
        assert_eq!(XNode::Attr(root, 0).node_name(&doc), "p");
    }

    #[test]
    fn nodeset_string_is_first_node() {
        let doc = parse("<a><b>one</b><b>two</b></a>").unwrap();
        let root = doc.root().unwrap();
        let kids: Vec<XNode> = doc.children(root).iter().map(|&c| XNode::Node(c)).collect();
        assert_eq!(Value::Nodes(kids).string(&doc), "one");
    }

    #[test]
    fn existential_nodeset_comparison() {
        let doc = parse("<a><p>10</p><p>25</p></a>").unwrap();
        let root = doc.root().unwrap();
        let ns: Vec<XNode> = doc.children(root).iter().map(|&c| XNode::Node(c)).collect();
        let v = Value::Nodes(ns);
        // Exists a p equal to 25.
        assert!(compare(CmpOp::Eq, &v, &Value::Num(25.0), &doc));
        // Exists a p less than 11.
        assert!(compare(CmpOp::Lt, &v, &Value::Num(11.0), &doc));
        // No p greater than 30.
        assert!(!compare(CmpOp::Gt, &v, &Value::Num(30.0), &doc));
        // String comparison.
        assert!(compare(CmpOp::Eq, &v, &Value::Str("10".into()), &doc));
        assert!(!compare(CmpOp::Eq, &v, &Value::Str("11".into()), &doc));
    }

    #[test]
    fn nodeset_vs_bool_uses_effective_boolean() {
        let doc = parse("<a><p>x</p></a>").unwrap();
        let root = doc.root().unwrap();
        let ns: Vec<XNode> = doc.children(root).iter().map(|&c| XNode::Node(c)).collect();
        assert!(compare(CmpOp::Eq, &Value::Nodes(ns), &Value::Bool(true), &doc));
        assert!(compare(CmpOp::Eq, &Value::empty(), &Value::Bool(false), &doc));
    }

    #[test]
    fn mixed_scalar_comparisons() {
        let doc = Document::new();
        // bool vs number: through booleans for equality.
        assert!(compare(CmpOp::Eq, &Value::Bool(true), &Value::Num(5.0), &doc));
        // string vs number equality goes through numbers.
        assert!(compare(CmpOp::Eq, &Value::Str("5".into()), &Value::Num(5.0), &doc));
        // relational always numeric.
        assert!(compare(CmpOp::Lt, &Value::Str("4".into()), &Value::Str("10".into()), &doc));
        // NaN compares false with everything.
        assert!(!compare(CmpOp::Le, &Value::Str("x".into()), &Value::Num(1.0), &doc));
    }
}
