//! The XPath tokenizer, including the XPath 1.0 lexical disambiguation rule
//! (whether `*` is a wildcard or multiplication, and whether `and`/`or`/
//! `div`/`mod` are operators, depends on the preceding token).

use crate::error::{XPathError, XPathResult};

/// A lexical token with its byte offset in the source.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Slash,
    DoubleSlash,
    LBracket,
    RBracket,
    LParen,
    RParen,
    At,
    Dot,
    DotDot,
    Comma,
    Pipe,
    Plus,
    Minus,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `*` in operand position (name test wildcard).
    Star,
    /// `*` in operator position (multiplication).
    Multiply,
    /// `and` | `or` | `div` | `mod` in operator position.
    OperatorName(String),
    /// `axisname::`
    AxisName(String),
    /// A name that is immediately followed by `(` — function call or node
    /// test like `text()`.
    FunctionName(String),
    /// Any other name (element/attribute test).
    Name(String),
    Literal(String),
    Number(f64),
    /// `$name`
    Variable(String),
}

impl TokenKind {
    /// True if a `*` or operator-name following this token should be read as
    /// an *operator* (XPath 1.0 §3.7 disambiguation).
    fn ends_operand(&self) -> bool {
        !matches!(
            self,
            TokenKind::At
                | TokenKind::AxisName(_)
                | TokenKind::LParen
                | TokenKind::LBracket
                | TokenKind::Comma
                | TokenKind::Slash
                | TokenKind::DoubleSlash
                | TokenKind::Pipe
                | TokenKind::Plus
                | TokenKind::Minus
                | TokenKind::Eq
                | TokenKind::Ne
                | TokenKind::Lt
                | TokenKind::Le
                | TokenKind::Gt
                | TokenKind::Ge
                | TokenKind::Multiply
                | TokenKind::OperatorName(_)
        )
    }
}

/// Tokenizes an XPath expression.
pub fn tokenize(input: &str) -> XPathResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let mut tokens: Vec<Token> = Vec::new();

    while pos < bytes.len() {
        let b = bytes[pos];
        if b.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let start = pos;
        let kind = match b {
            b'/' => {
                if bytes.get(pos + 1) == Some(&b'/') {
                    pos += 2;
                    TokenKind::DoubleSlash
                } else {
                    pos += 1;
                    TokenKind::Slash
                }
            }
            b'[' => { pos += 1; TokenKind::LBracket }
            b']' => { pos += 1; TokenKind::RBracket }
            b'(' => { pos += 1; TokenKind::LParen }
            b')' => { pos += 1; TokenKind::RParen }
            b'@' => { pos += 1; TokenKind::At }
            b',' => { pos += 1; TokenKind::Comma }
            b'|' => { pos += 1; TokenKind::Pipe }
            b'+' => { pos += 1; TokenKind::Plus }
            b'-' => { pos += 1; TokenKind::Minus }
            b'=' => { pos += 1; TokenKind::Eq }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    TokenKind::Ne
                } else {
                    return Err(XPathError::lex(pos, "expected `!=`"));
                }
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') { pos += 2; TokenKind::Le }
                else { pos += 1; TokenKind::Lt }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') { pos += 2; TokenKind::Ge }
                else { pos += 1; TokenKind::Gt }
            }
            b'.' => {
                if bytes.get(pos + 1) == Some(&b'.') {
                    pos += 2;
                    TokenKind::DotDot
                } else if bytes.get(pos + 1).is_some_and(|c| c.is_ascii_digit()) {
                    let (n, np) = lex_number(input, pos)?;
                    pos = np;
                    TokenKind::Number(n)
                } else {
                    pos += 1;
                    TokenKind::Dot
                }
            }
            b'*' => {
                pos += 1;
                if tokens.last().is_some_and(|t| t.kind.ends_operand()) {
                    TokenKind::Multiply
                } else {
                    TokenKind::Star
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                let mut end = pos + 1;
                while end < bytes.len() && bytes[end] != quote {
                    end += 1;
                }
                if end >= bytes.len() {
                    return Err(XPathError::lex(pos, "unterminated string literal"));
                }
                let lit = input[pos + 1..end].to_string();
                pos = end + 1;
                TokenKind::Literal(lit)
            }
            b'$' => {
                pos += 1;
                let (name, np) = lex_name(input, pos)
                    .ok_or_else(|| XPathError::lex(pos, "expected variable name after `$`"))?;
                pos = np;
                TokenKind::Variable(name)
            }
            b'0'..=b'9' => {
                let (n, np) = lex_number(input, pos)?;
                pos = np;
                TokenKind::Number(n)
            }
            _ => {
                let (name, np) = lex_name(input, pos)
                    .ok_or_else(|| XPathError::lex(pos, format!("unexpected byte `{}`", b as char)))?;
                pos = np;
                // Operator-name disambiguation.
                let is_op_pos = tokens.last().is_some_and(|t| t.kind.ends_operand());
                if is_op_pos && matches!(name.as_str(), "and" | "or" | "div" | "mod") {
                    TokenKind::OperatorName(name)
                } else {
                    // Peek past whitespace for `::` (axis) or `(` (function).
                    let mut look = pos;
                    while look < bytes.len() && bytes[look].is_ascii_whitespace() {
                        look += 1;
                    }
                    if bytes[look..].starts_with(b"::") {
                        pos = look + 2;
                        TokenKind::AxisName(name)
                    } else if bytes.get(look) == Some(&b'(') {
                        TokenKind::FunctionName(name)
                    } else {
                        TokenKind::Name(name)
                    }
                }
            }
        };
        tokens.push(Token { kind, offset: start });
    }
    Ok(tokens)
}

fn lex_name(input: &str, start: usize) -> Option<(String, usize)> {
    let bytes = input.as_bytes();
    let mut pos = start;
    while pos < bytes.len() {
        let b = bytes[pos];
        let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.') || b >= 0x80;
        // A leading character must not be a digit, '-' or '.'.
        if pos == start && (b.is_ascii_digit() || b == b'-' || b == b'.') {
            return None;
        }
        if ok {
            pos += 1;
        } else {
            break;
        }
    }
    if pos == start {
        None
    } else {
        Some((input[start..pos].to_string(), pos))
    }
}

fn lex_number(input: &str, start: usize) -> XPathResult<(f64, usize)> {
    let bytes = input.as_bytes();
    let mut pos = start;
    while pos < bytes.len() && bytes[pos].is_ascii_digit() {
        pos += 1;
    }
    if pos < bytes.len() && bytes[pos] == b'.' {
        pos += 1;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
    }
    input[start..pos]
        .parse::<f64>()
        .map(|n| (n, pos))
        .map_err(|_| XPathError::lex(start, "malformed number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<TokenKind> {
        tokenize(s).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_path_tokens() {
        assert_eq!(
            kinds("/a//b[@id='x']"),
            vec![
                TokenKind::Slash,
                TokenKind::Name("a".into()),
                TokenKind::DoubleSlash,
                TokenKind::Name("b".into()),
                TokenKind::LBracket,
                TokenKind::At,
                TokenKind::Name("id".into()),
                TokenKind::Eq,
                TokenKind::Literal("x".into()),
                TokenKind::RBracket,
            ]
        );
    }

    #[test]
    fn star_disambiguation() {
        // Wildcard after slash; multiply after an operand.
        assert_eq!(
            kinds("a/* "),
            vec![TokenKind::Name("a".into()), TokenKind::Slash, TokenKind::Star]
        );
        assert_eq!(
            kinds("2*3"),
            vec![TokenKind::Number(2.0), TokenKind::Multiply, TokenKind::Number(3.0)]
        );
        assert_eq!(
            kinds("@x * 2"),
            vec![
                TokenKind::At,
                TokenKind::Name("x".into()),
                TokenKind::Multiply,
                TokenKind::Number(2.0)
            ]
        );
    }

    #[test]
    fn operator_name_disambiguation() {
        // `and` after an operand is an operator; `div` after `/` is a name.
        assert_eq!(
            kinds("a and b"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::OperatorName("and".into()),
                TokenKind::Name("b".into())
            ]
        );
        assert_eq!(
            kinds("/div"),
            vec![TokenKind::Slash, TokenKind::Name("div".into())]
        );
        assert_eq!(
            kinds("a div b"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::OperatorName("div".into()),
                TokenKind::Name("b".into())
            ]
        );
    }

    #[test]
    fn axis_function_and_variable() {
        assert_eq!(
            kinds("child::a"),
            vec![TokenKind::AxisName("child".into()), TokenKind::Name("a".into())]
        );
        assert_eq!(
            kinds("count(x)"),
            vec![
                TokenKind::FunctionName("count".into()),
                TokenKind::LParen,
                TokenKind::Name("x".into()),
                TokenKind::RParen
            ]
        );
        assert_eq!(kinds("$v"), vec![TokenKind::Variable("v".into())]);
    }

    #[test]
    fn numbers_including_leading_dot() {
        assert_eq!(kinds("1.5"), vec![TokenKind::Number(1.5)]);
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
        assert_eq!(kinds("42"), vec![TokenKind::Number(42.0)]);
    }

    #[test]
    fn dot_and_dotdot() {
        assert_eq!(
            kinds("./.."),
            vec![TokenKind::Dot, TokenKind::Slash, TokenKind::DotDot]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a <= b != c >= d"),
            vec![
                TokenKind::Name("a".into()),
                TokenKind::Le,
                TokenKind::Name("b".into()),
                TokenKind::Ne,
                TokenKind::Name("c".into()),
                TokenKind::Ge,
                TokenKind::Name("d".into()),
            ]
        );
    }

    #[test]
    fn double_quoted_literal() {
        assert_eq!(kinds(r#""hi there""#), vec![TokenKind::Literal("hi there".into())]);
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("$ ").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("  /a").unwrap();
        assert_eq!(toks[0].offset, 2);
        assert_eq!(toks[1].offset, 3);
    }
}
