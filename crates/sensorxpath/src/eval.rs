//! The XPath evaluator.

use std::collections::HashMap;

use sensorxml::Document;

use crate::ast::{Axis, BinOp, Expr, LocationPath, NodeTest, Step};
use crate::error::{XPathError, XPathResult};
use crate::functions;
use crate::value::{compare, CmpOp, Value, XNode};

/// Variable bindings (`$name`), used by the XSLT layer.
pub type Vars = HashMap<String, Value>;

/// Evaluation context: the document, the context node, variable bindings and
/// the query time exposed through the `now()` extension function.
///
/// The paper's consistency predicates (`[timestamp > now - 30]`, §4) need
/// the time the query was posed; we expose it as the zero-argument function
/// `now()` and thread it through the context so the engine itself stays
/// deterministic and clock-free.
#[derive(Clone)]
pub struct EvalContext<'a> {
    pub doc: &'a Document,
    pub node: XNode,
    pub vars: &'a Vars,
    /// Value returned by `now()`. Defaults to NaN, which makes any
    /// freshness comparison false — i.e. "no tolerance information".
    pub now: f64,
}

impl<'a> EvalContext<'a> {
    /// A context positioned at `node` with no variables.
    pub fn new(doc: &'a Document, node: XNode, vars: &'a Vars) -> Self {
        EvalContext {
            doc,
            node,
            vars,
            now: f64::NAN,
        }
    }

    fn at(&self, node: XNode) -> EvalContext<'a> {
        EvalContext { node, ..self.clone() }
    }
}

/// Evaluates `expr` in `ctx`.
pub fn evaluate(expr: &Expr, ctx: &EvalContext<'_>) -> XPathResult<Value> {
    match expr {
        Expr::Literal(s) => Ok(Value::Str(s.clone())),
        Expr::Number(n) => Ok(Value::Num(*n)),
        Expr::Var(name) => ctx
            .vars
            .get(name)
            .cloned()
            .ok_or_else(|| XPathError::UnboundVariable(name.clone())),
        Expr::Negate(e) => {
            let v = evaluate(e, ctx)?;
            Ok(Value::Num(-v.number(ctx.doc)))
        }
        Expr::Binary(op, l, r) => eval_binary(*op, l, r, ctx),
        Expr::Union(l, r) => {
            let lv = evaluate(l, ctx)?;
            let rv = evaluate(r, ctx)?;
            match (lv, rv) {
                // An empty side contributes nothing; the other side is
                // already sorted and deduplicated, so return it as-is.
                (Value::Nodes(a), Value::Nodes(b)) if a.is_empty() => Ok(Value::Nodes(b)),
                (Value::Nodes(a), Value::Nodes(b)) if b.is_empty() => Ok(Value::Nodes(a)),
                (Value::Nodes(mut a), Value::Nodes(b)) => {
                    a.extend(b);
                    Ok(Value::Nodes(dedup(a)))
                }
                _ => Err(XPathError::Type(
                    "operands of `|` must be node-sets".into(),
                )),
            }
        }
        Expr::Path(path) => eval_path(path, ctx).map(Value::Nodes),
        Expr::Filter {
            primary,
            predicates,
            trailing,
        } => {
            let base = evaluate(primary, ctx)?;
            let Value::Nodes(nodes) = base else {
                return Err(XPathError::Type(
                    "predicates and path steps require a node-set".into(),
                ));
            };
            let mut nodes = nodes;
            for p in predicates {
                nodes = filter_nodes(nodes, p, ctx)?;
            }
            let mut cur = nodes;
            for step in trailing {
                cur = apply_step(&cur, step, ctx)?;
            }
            Ok(Value::Nodes(cur))
        }
        Expr::Call(name, args) => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(evaluate(a, ctx)?);
            }
            functions::call(name, vals, ctx)
        }
    }
}

/// Convenience: evaluates `expr` with `node` as the context node and no
/// variable bindings.
pub fn evaluate_at(expr: &Expr, doc: &Document, node: XNode) -> XPathResult<Value> {
    thread_local! {
        static EMPTY: Vars = Vars::new();
    }
    EMPTY.with(|vars| {
        // SAFETY-free workaround for the lifetime: clone an empty map is
        // cheap, but we can simply evaluate inside the closure.
        let ctx = EvalContext::new(doc, node, vars);
        evaluate(expr, &ctx)
    })
}

fn eval_binary(op: BinOp, l: &Expr, r: &Expr, ctx: &EvalContext<'_>) -> XPathResult<Value> {
    match op {
        BinOp::Or => {
            if evaluate(l, ctx)?.boolean() {
                return Ok(Value::Bool(true));
            }
            Ok(Value::Bool(evaluate(r, ctx)?.boolean()))
        }
        BinOp::And => {
            if !evaluate(l, ctx)?.boolean() {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(evaluate(r, ctx)?.boolean()))
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let lv = evaluate(l, ctx)?;
            let rv = evaluate(r, ctx)?;
            let cmp = match op {
                BinOp::Eq => CmpOp::Eq,
                BinOp::Ne => CmpOp::Ne,
                BinOp::Lt => CmpOp::Lt,
                BinOp::Le => CmpOp::Le,
                BinOp::Gt => CmpOp::Gt,
                _ => CmpOp::Ge,
            };
            Ok(Value::Bool(compare(cmp, &lv, &rv, ctx.doc)))
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            let a = evaluate(l, ctx)?.number(ctx.doc);
            let b = evaluate(r, ctx)?.number(ctx.doc);
            let n = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                _ => a % b,
            };
            Ok(Value::Num(n))
        }
    }
}

/// Evaluates a location path, returning the resulting node-set.
pub fn eval_path(path: &LocationPath, ctx: &EvalContext<'_>) -> XPathResult<Vec<XNode>> {
    let mut cur: Vec<XNode> = if path.absolute {
        vec![XNode::Document]
    } else {
        vec![ctx.node]
    };
    for step in &path.steps {
        cur = apply_step(&cur, step, ctx)?;
    }
    Ok(cur)
}

/// Applies one step to every node of `input`, unioning the results.
pub fn apply_step(
    input: &[XNode],
    step: &Step,
    ctx: &EvalContext<'_>,
) -> XPathResult<Vec<XNode>> {
    if let Some(out) = apply_indexed_step(input, step, ctx)? {
        return Ok(out);
    }
    let mut out: Vec<XNode> = Vec::new();
    for &n in input {
        axis_nodes(ctx.doc, n, step.axis, &step.test, &mut out);
    }
    let out = dedup(out);
    filter_all(out, &step.predicates, ctx)
}

/// Fast path for steps carrying the optimizer's `indexed_id` hint
/// (`child::tag[@id = 'lit']...`): answers the child scan *and* the id
/// predicate from the document's sibling index instead of walking every
/// child and re-evaluating the predicate per node. Returns `None` when the
/// hint is absent or does not match the step's shape (then the caller runs
/// the general path, so a stale hint can cost time but never correctness).
fn apply_indexed_step(
    input: &[XNode],
    step: &Step,
    ctx: &EvalContext<'_>,
) -> XPathResult<Option<Vec<XNode>>> {
    let Some(idval) = step.indexed_id.as_deref() else {
        return Ok(None);
    };
    if step.axis != Axis::Child {
        return Ok(None);
    }
    let NodeTest::Name(tag) = &step.test else {
        return Ok(None);
    };
    // The hint promises the first predicate is exactly `@id = idval`; verify
    // before skipping it, since the AST fields are public.
    if step.predicates.first().and_then(|p| p.as_id_equals()) != Some(idval) {
        return Ok(None);
    }
    let mut out: Vec<XNode> = Vec::new();
    for &n in input {
        match n {
            XNode::Node(id) => {
                out.extend(
                    ctx.doc
                        .children_by_name_id(id, tag, idval)
                        .into_iter()
                        .map(XNode::Node),
                );
            }
            XNode::Document => {
                if let Some(r) = ctx.doc.root() {
                    if ctx.doc.name(r) == tag && ctx.doc.attr(r, "id") == Some(idval) {
                        out.push(XNode::Node(r));
                    }
                }
            }
            XNode::Attr(..) => {}
        }
    }
    let out = dedup(out);
    filter_all(out, &step.predicates[1..], ctx).map(Some)
}

fn filter_all(
    mut nodes: Vec<XNode>,
    predicates: &[Expr],
    ctx: &EvalContext<'_>,
) -> XPathResult<Vec<XNode>> {
    for p in predicates {
        nodes = filter_nodes(nodes, p, ctx)?;
    }
    Ok(nodes)
}

fn filter_nodes(nodes: Vec<XNode>, pred: &Expr, ctx: &EvalContext<'_>) -> XPathResult<Vec<XNode>> {
    let mut out = Vec::with_capacity(nodes.len());
    for n in nodes {
        let v = evaluate(pred, &ctx.at(n))?;
        if let Value::Num(_) = v {
            return Err(XPathError::Ordered(
                "numeric predicate (positional)".into(),
            ));
        }
        if v.boolean() {
            out.push(n);
        }
    }
    Ok(out)
}

fn axis_nodes(doc: &Document, n: XNode, axis: Axis, test: &NodeTest, out: &mut Vec<XNode>) {
    match axis {
        Axis::Child => match n {
            XNode::Node(id) => {
                for &c in doc.children(id) {
                    push_if_match(doc, XNode::Node(c), test, axis, out);
                }
            }
            XNode::Document => {
                if let Some(r) = doc.root() {
                    push_if_match(doc, XNode::Node(r), test, axis, out);
                }
            }
            XNode::Attr(..) => {}
        },
        Axis::Descendant => {
            for d in descendant_ids(doc, n) {
                push_if_match(doc, XNode::Node(d), test, axis, out);
            }
        }
        Axis::DescendantOrSelf => {
            push_if_match(doc, n, test, axis, out);
            for d in descendant_ids(doc, n) {
                push_if_match(doc, XNode::Node(d), test, axis, out);
            }
        }
        Axis::SelfAxis => push_if_match(doc, n, test, axis, out),
        Axis::Parent => {
            if let Some(p) = parent_of(doc, n) {
                push_if_match(doc, p, test, axis, out);
            }
        }
        Axis::Ancestor => {
            let mut cur = parent_of(doc, n);
            while let Some(p) = cur {
                push_if_match(doc, p, test, axis, out);
                cur = parent_of(doc, p);
            }
        }
        Axis::AncestorOrSelf => {
            push_if_match(doc, n, test, axis, out);
            let mut cur = parent_of(doc, n);
            while let Some(p) = cur {
                push_if_match(doc, p, test, axis, out);
                cur = parent_of(doc, p);
            }
        }
        Axis::Attribute => {
            if let XNode::Node(id) = n {
                for (i, a) in doc.attrs(id).iter().enumerate() {
                    let keep = match test {
                        NodeTest::Name(want) => &a.name == want,
                        NodeTest::Any | NodeTest::Node => true,
                        NodeTest::Text => false,
                    };
                    if keep {
                        out.push(XNode::Attr(id, i as u32));
                    }
                }
            }
        }
    }
}

/// Descendant element/text ids of `n` in preorder (empty for attributes).
fn descendant_ids(doc: &Document, n: XNode) -> Vec<sensorxml::NodeId> {
    match n {
        XNode::Node(id) => doc.descendants(id).collect(),
        XNode::Document => match doc.root() {
            Some(r) => std::iter::once(r).chain(doc.descendants(r)).collect(),
            None => Vec::new(),
        },
        XNode::Attr(..) => Vec::new(),
    }
}

fn parent_of(doc: &Document, n: XNode) -> Option<XNode> {
    match n {
        XNode::Node(id) => match doc.parent(id) {
            Some(p) => Some(XNode::Node(p)),
            // The root element's parent is the document node; a *detached*
            // node has no parent at all.
            None if doc.root() == Some(id) => Some(XNode::Document),
            None => None,
        },
        XNode::Attr(id, _) => Some(XNode::Node(id)),
        XNode::Document => None,
    }
}

fn push_if_match(doc: &Document, n: XNode, test: &NodeTest, axis: Axis, out: &mut Vec<XNode>) {
    if node_test_matches(doc, n, test, axis) {
        out.push(n);
    }
}

fn node_test_matches(doc: &Document, n: XNode, test: &NodeTest, axis: Axis) -> bool {
    match n {
        XNode::Document => matches!(test, NodeTest::Node),
        XNode::Attr(..) => {
            // Attribute nodes only appear on the attribute axis (handled
            // separately) and on self/ancestor-ish axes, where only
            // `node()` matches.
            matches!(test, NodeTest::Node) && !matches!(axis, Axis::Attribute)
        }
        XNode::Node(id) => match test {
            NodeTest::Name(want) => doc.is_element(id) && doc.name(id) == want,
            NodeTest::Any => doc.is_element(id),
            NodeTest::Text => doc.is_text(id),
            NodeTest::Node => true,
        },
    }
}

fn dedup(mut ns: Vec<XNode>) -> Vec<XNode> {
    // Sets of 0 or 1 nodes are trivially sorted and unique; skip the sort.
    // This is the common case for id-pinned steps, which produce one node
    // per input node.
    if ns.len() <= 1 {
        return ns;
    }
    ns.sort_unstable();
    ns.dedup();
    ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use sensorxml::parse as parse_xml;

    fn doc() -> Document {
        parse_xml(
            r#"<usRegion id="NE">
  <state id="PA">
    <county id="Allegheny">
      <city id="Pittsburgh">
        <neighborhood id="Oakland" zipcode="15213">
          <available-spaces>8</available-spaces>
          <block id="1">
            <parkingSpace id="1"><available>yes</available><price>25</price></parkingSpace>
            <parkingSpace id="2"><available>no</available><price>0</price></parkingSpace>
            <parkingSpace id="3"><available>yes</available><price>0</price></parkingSpace>
          </block>
          <block id="2">
            <parkingSpace id="1"><available>yes</available><price>50</price></parkingSpace>
          </block>
        </neighborhood>
        <neighborhood id="Shadyside">
          <block id="1">
            <parkingSpace id="1"><available>no</available><price>25</price></parkingSpace>
          </block>
        </neighborhood>
      </city>
    </county>
  </state>
</usRegion>"#,
        )
        .unwrap()
    }

    fn eval(d: &Document, q: &str) -> Value {
        let e = parse(q).unwrap();
        evaluate_at(&e, d, XNode::Node(d.root().unwrap())).unwrap()
    }

    fn count_of(d: &Document, q: &str) -> usize {
        match eval(d, q) {
            Value::Nodes(ns) => ns.len(),
            v => panic!("expected node-set, got {v:?}"),
        }
    }

    #[test]
    fn absolute_paths() {
        let d = doc();
        assert_eq!(count_of(&d, "/usRegion"), 1);
        assert_eq!(count_of(&d, "/usRegion[@id='NE']"), 1);
        assert_eq!(count_of(&d, "/usRegion[@id='SW']"), 0);
        assert_eq!(count_of(&d, "/wrong"), 0);
        assert_eq!(
            count_of(&d, "/usRegion/state/county/city/neighborhood"),
            2
        );
    }

    #[test]
    fn paper_query_returns_available_spaces() {
        let d = doc();
        let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
                 /city[@id='Pittsburgh']\
                 /neighborhood[@id='Oakland' or @id='Shadyside']\
                 /block[@id='1']/parkingSpace[available='yes']";
        assert_eq!(count_of(&d, q), 2); // Oakland block 1 spaces 1 and 3
    }

    #[test]
    fn min_price_query_via_not() {
        let d = doc();
        let q = "/usRegion/state/county/city/neighborhood[@id='Oakland']/block[@id='1']\
                 /parkingSpace[not(price > ../parkingSpace/price)]";
        // Cheapest spaces in block 1 are the two with price 0.
        assert_eq!(count_of(&d, q), 2);
    }

    #[test]
    fn descendant_axis() {
        let d = doc();
        assert_eq!(count_of(&d, "//parkingSpace"), 5);
        assert_eq!(count_of(&d, "//block[@id='1']"), 2);
        assert_eq!(count_of(&d, "//parkingSpace[available='yes']"), 3);
        assert_eq!(count_of(&d, "/usRegion//price"), 5);
        assert_eq!(count_of(&d, "//usRegion"), 1); // root itself in sweep
    }

    #[test]
    fn attribute_selection() {
        let d = doc();
        let v = eval(&d, "//neighborhood[@id='Oakland']/@zipcode");
        assert_eq!(v.string(&d), "15213");
        assert_eq!(count_of(&d, "//block/@id"), 3);
        assert_eq!(count_of(&d, "//block/@*"), 3);
    }

    #[test]
    fn parent_and_ancestor() {
        let d = doc();
        assert_eq!(count_of(&d, "//parkingSpace/../.."), 2); // both neighborhoods
        assert_eq!(count_of(&d, "//price/ancestor::block"), 3);
        assert_eq!(count_of(&d, "//price/ancestor-or-self::price"), 5);
    }

    #[test]
    fn text_nodes() {
        let d = doc();
        assert_eq!(count_of(&d, "//available/text()"), 5);
        let v = eval(&d, "//neighborhood[@id='Oakland']/available-spaces/text()");
        assert_eq!(v.string(&d), "8");
    }

    #[test]
    fn arithmetic_and_comparison() {
        let d = doc();
        assert_eq!(eval(&d, "1 + 2 * 3"), Value::Num(7.0));
        assert_eq!(eval(&d, "(1 + 2) * 3"), Value::Num(9.0));
        assert_eq!(eval(&d, "10 div 4"), Value::Num(2.5));
        assert_eq!(eval(&d, "10 mod 3"), Value::Num(1.0));
        assert_eq!(eval(&d, "-(5)"), Value::Num(-5.0));
        assert_eq!(eval(&d, "2 > 1"), Value::Bool(true));
        assert_eq!(eval(&d, "2 > 1 and 1 > 2"), Value::Bool(false));
        assert_eq!(eval(&d, "2 > 1 or 1 > 2"), Value::Bool(true));
    }

    #[test]
    fn numeric_predicates_on_attributes() {
        let d = doc();
        assert_eq!(count_of(&d, "//parkingSpace[price = 0]"), 2);
        assert_eq!(count_of(&d, "//parkingSpace[price > 20]"), 3);
        assert_eq!(
            count_of(&d, "//neighborhood[available-spaces > 0]"),
            1
        );
    }

    #[test]
    fn union_of_paths() {
        let d = doc();
        assert_eq!(
            count_of(&d, "//neighborhood[@id='Oakland'] | //neighborhood[@id='Shadyside']"),
            2
        );
        // Overlap deduplicates.
        assert_eq!(count_of(&d, "//block | //block[@id='1']"), 3);
    }

    #[test]
    fn union_type_error() {
        let d = doc();
        let e = parse("1 | 2").unwrap();
        assert!(matches!(
            evaluate_at(&e, &d, XNode::Node(d.root().unwrap())),
            Err(XPathError::Type(_))
        ));
    }

    #[test]
    fn variables() {
        let d = doc();
        let mut vars = Vars::new();
        vars.insert("want".into(), Value::Str("Oakland".into()));
        let e = parse("//neighborhood[@id = $want]").unwrap();
        let ctx = EvalContext::new(&d, XNode::Node(d.root().unwrap()), &vars);
        let v = evaluate(&e, &ctx).unwrap();
        assert_eq!(v.as_nodes().unwrap().len(), 1);
        // Unbound variable errors.
        let e2 = parse("$missing").unwrap();
        assert!(matches!(
            evaluate(&e2, &ctx),
            Err(XPathError::UnboundVariable(_))
        ));
    }

    #[test]
    fn relative_path_from_context_node() {
        let d = doc();
        let root = d.root().unwrap();
        let state = d.child_by_name_id(root, "state", "PA").unwrap();
        let e = parse("county/city").unwrap();
        let v = evaluate_at(&e, &d, XNode::Node(state)).unwrap();
        assert_eq!(v.as_nodes().unwrap().len(), 1);
    }

    #[test]
    fn wildcard_steps() {
        let d = doc();
        assert_eq!(count_of(&d, "/usRegion/*"), 1);
        assert_eq!(count_of(&d, "//neighborhood/*"), 4); // 3 blocks + available-spaces
        assert_eq!(count_of(&d, "//city/*/block"), 3);
    }

    #[test]
    fn filter_expr_with_trailing() {
        let d = doc();
        assert_eq!(
            count_of(&d, "(//block[@id='1'] | //block[@id='2'])/parkingSpace"),
            5
        );
    }

    #[test]
    fn empty_document_yields_empty_sets() {
        let d = Document::new();
        let e = parse("/a/b").unwrap();
        let vars = Vars::new();
        // No root: context node is irrelevant; fabricate via a fresh doc.
        let (d2, r2) = Document::with_root("x");
        let ctx = EvalContext::new(&d, XNode::Node(r2), &vars);
        let _ = d2;
        let v = evaluate(&e, &ctx).unwrap();
        assert_eq!(v, Value::Nodes(vec![]));
    }
}
