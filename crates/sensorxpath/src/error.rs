//! Error types for XPath lexing, parsing and evaluation.

use std::fmt;

/// Result alias used throughout the crate.
pub type XPathResult<T> = Result<T, XPathError>;

/// An error raised while lexing, parsing, or evaluating an XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathError {
    /// Lexical error with byte offset into the expression.
    Lex { offset: usize, message: String },
    /// Syntax error with byte offset into the expression.
    Syntax { offset: usize, message: String },
    /// An order-dependent construct was used; the unordered fragment
    /// excludes `position()`, `last()`, positional predicates, and the
    /// sibling/preceding/following axes (paper §3.1).
    Ordered(String),
    /// A call to an unknown function.
    UnknownFunction(String),
    /// A function was called with the wrong number of arguments.
    Arity { function: String, expected: String, got: usize },
    /// An unbound variable reference.
    UnboundVariable(String),
    /// A value had the wrong type for the operation (e.g. taking a location
    /// step from a number).
    Type(String),
}

impl XPathError {
    pub(crate) fn lex(offset: usize, message: impl Into<String>) -> Self {
        XPathError::Lex { offset, message: message.into() }
    }

    pub(crate) fn syntax(offset: usize, message: impl Into<String>) -> Self {
        XPathError::Syntax { offset, message: message.into() }
    }
}

impl fmt::Display for XPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XPathError::Lex { offset, message } => {
                write!(f, "XPath lexical error at byte {offset}: {message}")
            }
            XPathError::Syntax { offset, message } => {
                write!(f, "XPath syntax error at byte {offset}: {message}")
            }
            XPathError::Ordered(what) => write!(
                f,
                "`{what}` is order-dependent and unsupported in the unordered XPath fragment"
            ),
            XPathError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            XPathError::Arity { function, expected, got } => write!(
                f,
                "function `{function}` expects {expected} argument(s), got {got}"
            ),
            XPathError::UnboundVariable(name) => write!(f, "unbound variable `${name}`"),
            XPathError::Type(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for XPathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(XPathError::Ordered("position()".into())
            .to_string()
            .contains("order-dependent"));
        assert_eq!(
            XPathError::UnknownFunction("min".into()).to_string(),
            "unknown function `min`"
        );
        assert!(XPathError::Arity {
            function: "not".into(),
            expected: "1".into(),
            got: 2
        }
        .to_string()
        .contains("expects 1"));
    }
}
