//! The XPath 1.0 core function library (unordered fragment), plus the
//! `now()` extension used by query-based consistency predicates (paper §4).
//!
//! `position()` and `last()` are rejected at parse time; `id()` is omitted
//! because sensor-document ids are only sibling-unique (Definition 3.1), not
//! document-unique, so the XPath `id()` function has no meaning here.

use crate::error::{XPathError, XPathResult};
use crate::eval::EvalContext;
use crate::value::Value;

/// Dispatches a function call on already-evaluated arguments.
pub fn call(name: &str, args: Vec<Value>, ctx: &EvalContext<'_>) -> XPathResult<Value> {
    match name {
        "true" => nullary(name, &args).map(|_| Value::Bool(true)),
        "false" => nullary(name, &args).map(|_| Value::Bool(false)),
        "not" => {
            let [a] = take::<1>(name, args)?;
            Ok(Value::Bool(!a.boolean()))
        }
        "boolean" => {
            let [a] = take::<1>(name, args)?;
            Ok(Value::Bool(a.boolean()))
        }
        "number" => match args.len() {
            0 => Ok(Value::Num(ctx_value(ctx).number(ctx.doc))),
            1 => Ok(Value::Num(args[0].number(ctx.doc))),
            n => arity(name, "0 or 1", n),
        },
        "string" => match args.len() {
            0 => Ok(Value::Str(ctx_value(ctx).string(ctx.doc))),
            1 => Ok(Value::Str(args[0].string(ctx.doc))),
            n => arity(name, "0 or 1", n),
        },
        "count" => {
            let [a] = take::<1>(name, args)?;
            match a {
                Value::Nodes(ns) => Ok(Value::Num(ns.len() as f64)),
                _ => Err(XPathError::Type("count() requires a node-set".into())),
            }
        }
        "sum" => {
            let [a] = take::<1>(name, args)?;
            match a {
                Value::Nodes(ns) => Ok(Value::Num(
                    ns.iter()
                        .map(|n| crate::value::string_to_number(&n.string_value(ctx.doc)))
                        .sum(),
                )),
                _ => Err(XPathError::Type("sum() requires a node-set".into())),
            }
        }
        "concat" => {
            if args.len() < 2 {
                return arity(name, "2 or more", args.len());
            }
            let mut out = String::new();
            for a in &args {
                out.push_str(&a.string(ctx.doc));
            }
            Ok(Value::Str(out))
        }
        "contains" => {
            let [a, b] = take::<2>(name, args)?;
            Ok(Value::Bool(
                a.string(ctx.doc).contains(&b.string(ctx.doc)),
            ))
        }
        "starts-with" => {
            let [a, b] = take::<2>(name, args)?;
            Ok(Value::Bool(
                a.string(ctx.doc).starts_with(&b.string(ctx.doc)),
            ))
        }
        "substring-before" => {
            let [a, b] = take::<2>(name, args)?;
            let s = a.string(ctx.doc);
            let sep = b.string(ctx.doc);
            Ok(Value::Str(
                s.split_once(&sep).map(|(pre, _)| pre.to_string()).unwrap_or_default(),
            ))
        }
        "substring-after" => {
            let [a, b] = take::<2>(name, args)?;
            let s = a.string(ctx.doc);
            let sep = b.string(ctx.doc);
            Ok(Value::Str(
                s.split_once(&sep).map(|(_, post)| post.to_string()).unwrap_or_default(),
            ))
        }
        "substring" => substring(name, args, ctx),
        "string-length" => match args.len() {
            0 => Ok(Value::Num(ctx_value(ctx).string(ctx.doc).chars().count() as f64)),
            1 => Ok(Value::Num(args[0].string(ctx.doc).chars().count() as f64)),
            n => arity(name, "0 or 1", n),
        },
        "normalize-space" => {
            let s = match args.len() {
                0 => ctx_value(ctx).string(ctx.doc),
                1 => args[0].string(ctx.doc),
                n => return arity(name, "0 or 1", n),
            };
            Ok(Value::Str(s.split_whitespace().collect::<Vec<_>>().join(" ")))
        }
        "translate" => {
            let [a, b, c] = take::<3>(name, args)?;
            let s = a.string(ctx.doc);
            let from: Vec<char> = b.string(ctx.doc).chars().collect();
            let to: Vec<char> = c.string(ctx.doc).chars().collect();
            let mut out = String::with_capacity(s.len());
            for ch in s.chars() {
                match from.iter().position(|&f| f == ch) {
                    Some(i) => {
                        if let Some(&r) = to.get(i) {
                            out.push(r);
                        } // else: dropped
                    }
                    None => out.push(ch),
                }
            }
            Ok(Value::Str(out))
        }
        "floor" => {
            let [a] = take::<1>(name, args)?;
            Ok(Value::Num(a.number(ctx.doc).floor()))
        }
        "ceiling" => {
            let [a] = take::<1>(name, args)?;
            Ok(Value::Num(a.number(ctx.doc).ceil()))
        }
        "round" => {
            let [a] = take::<1>(name, args)?;
            let n = a.number(ctx.doc);
            // XPath round: round half towards positive infinity.
            Ok(Value::Num((n + 0.5).floor()))
        }
        "name" | "local-name" => {
            let node = match args.len() {
                0 => Some(ctx.node),
                1 => match &args[0] {
                    Value::Nodes(ns) => ns.first().copied(),
                    _ => return Err(XPathError::Type(format!("{name}() requires a node-set"))),
                },
                n => return arity(name, "0 or 1", n),
            };
            Ok(Value::Str(
                node.map(|n| n.node_name(ctx.doc).to_string()).unwrap_or_default(),
            ))
        }
        "now" => {
            nullary(name, &args)?;
            Ok(Value::Num(ctx.now))
        }
        other => Err(XPathError::UnknownFunction(other.to_string())),
    }
}

fn substring(name: &str, args: Vec<Value>, ctx: &EvalContext<'_>) -> XPathResult<Value> {
    if args.len() != 2 && args.len() != 3 {
        return arity(name, "2 or 3", args.len());
    }
    let s = args[0].string(ctx.doc);
    let chars: Vec<char> = s.chars().collect();
    // XPath 1.0 §4.2: positions are 1-based, arguments are rounded.
    let start = round_xpath(args[1].number(ctx.doc));
    let len = if args.len() == 3 {
        round_xpath(args[2].number(ctx.doc))
    } else {
        f64::INFINITY
    };
    if start.is_nan() || len.is_nan() {
        return Ok(Value::Str(String::new()));
    }
    let end = start + len;
    let out: String = chars
        .iter()
        .enumerate()
        .filter(|(i, _)| {
            let pos = (*i + 1) as f64;
            pos >= start && pos < end
        })
        .map(|(_, c)| *c)
        .collect();
    Ok(Value::Str(out))
}

fn round_xpath(n: f64) -> f64 {
    if n.is_nan() || n.is_infinite() {
        n
    } else {
        (n + 0.5).floor()
    }
}

fn ctx_value(ctx: &EvalContext<'_>) -> Value {
    Value::Nodes(vec![ctx.node])
}

fn nullary(name: &str, args: &[Value]) -> XPathResult<()> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(XPathError::Arity {
            function: name.to_string(),
            expected: "0".to_string(),
            got: args.len(),
        })
    }
}

fn take<const N: usize>(name: &str, args: Vec<Value>) -> XPathResult<[Value; N]> {
    args.try_into().map_err(|v: Vec<Value>| XPathError::Arity {
        function: name.to_string(),
        expected: N.to_string(),
        got: v.len(),
    })
}

fn arity<T>(name: &str, expected: &str, got: usize) -> XPathResult<T> {
    Err(XPathError::Arity {
        function: name.to_string(),
        expected: expected.to_string(),
        got,
    })
}

#[cfg(test)]
mod tests {
    use crate::ast::Expr;
    use crate::error::XPathError;
    use crate::eval::{evaluate, EvalContext, Vars};
    use crate::parser::parse;
    use crate::value::{Value, XNode};
    use sensorxml::parse as parse_xml;

    fn eval(q: &str) -> Value {
        let d = parse_xml(
            "<root label='R'><p>10</p><p>25</p><s>  hello   world </s><e/></root>",
        )
        .unwrap();
        let e = parse(q).unwrap();
        let vars = Vars::new();
        let mut ctx = EvalContext::new(&d, XNode::Node(d.root().unwrap()), &vars);
        ctx.now = 1000.0;
        evaluate(&e, &ctx).unwrap()
    }

    fn eval_err(q: &str) -> XPathError {
        let d = parse_xml("<root/>").unwrap();
        let e = parse(q).unwrap();
        let vars = Vars::new();
        let ctx = EvalContext::new(&d, XNode::Node(d.root().unwrap()), &vars);
        evaluate(&e, &ctx).unwrap_err()
    }

    #[test]
    fn booleans_and_not() {
        assert_eq!(eval("true()"), Value::Bool(true));
        assert_eq!(eval("false()"), Value::Bool(false));
        assert_eq!(eval("not(false())"), Value::Bool(true));
        assert_eq!(eval("boolean(p)"), Value::Bool(true));
        assert_eq!(eval("boolean(missing)"), Value::Bool(false));
        assert_eq!(eval("boolean('')"), Value::Bool(false));
    }

    #[test]
    fn count_and_sum() {
        assert_eq!(eval("count(p)"), Value::Num(2.0));
        assert_eq!(eval("count(missing)"), Value::Num(0.0));
        assert_eq!(eval("sum(p)"), Value::Num(35.0));
        assert!(matches!(eval_err("count(5)"), XPathError::Type(_)));
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval("concat('a', 'b', 'c')"), Value::Str("abc".into()));
        assert_eq!(eval("contains('parking', 'king')"), Value::Bool(true));
        assert_eq!(eval("starts-with('parking', 'park')"), Value::Bool(true));
        assert_eq!(eval("starts-with('parking', 'king')"), Value::Bool(false));
        assert_eq!(
            eval("substring-before('a=b', '=')"),
            Value::Str("a".into())
        );
        assert_eq!(eval("substring-after('a=b', '=')"), Value::Str("b".into()));
        assert_eq!(eval("substring-before('ab', 'x')"), Value::Str("".into()));
        assert_eq!(eval("string-length('abcd')"), Value::Num(4.0));
        assert_eq!(
            eval("normalize-space(s)"),
            Value::Str("hello world".into())
        );
        assert_eq!(
            eval("translate('bar', 'abc', 'ABC')"),
            Value::Str("BAr".into())
        );
        assert_eq!(eval("translate('bar', 'ar', 'x')"), Value::Str("bx".into()));
    }

    #[test]
    fn substring_xpath_semantics() {
        // Classic XPath 1.0 spec examples.
        assert_eq!(eval("substring('12345', 2, 3)"), Value::Str("234".into()));
        assert_eq!(eval("substring('12345', 2)"), Value::Str("2345".into()));
        assert_eq!(
            eval("substring('12345', 1.5, 2.6)"),
            Value::Str("234".into())
        );
        assert_eq!(eval("substring('12345', 0, 3)"), Value::Str("12".into()));
        assert_eq!(eval("substring('12345', 7)"), Value::Str("".into()));
    }

    #[test]
    fn numeric_functions() {
        assert_eq!(eval("floor(2.6)"), Value::Num(2.0));
        assert_eq!(eval("ceiling(2.2)"), Value::Num(3.0));
        assert_eq!(eval("round(2.5)"), Value::Num(3.0));
        assert_eq!(eval("round(-2.5)"), Value::Num(-2.0)); // half toward +inf
        assert_eq!(eval("number('42')"), Value::Num(42.0));
        assert_eq!(eval("string(1.5)"), Value::Str("1.5".into()));
        assert_eq!(eval("string(7)"), Value::Str("7".into()));
    }

    #[test]
    fn name_functions() {
        assert_eq!(eval("name()"), Value::Str("root".into()));
        assert_eq!(eval("name(p)"), Value::Str("p".into()));
        assert_eq!(eval("local-name(@label)"), Value::Str("label".into()));
        assert_eq!(eval("name(missing)"), Value::Str("".into()));
    }

    #[test]
    fn now_extension() {
        assert_eq!(eval("now()"), Value::Num(1000.0));
        assert_eq!(eval("now() - 30 < now()"), Value::Bool(true));
    }

    #[test]
    fn arity_and_unknown_errors() {
        assert!(matches!(eval_err("not()"), XPathError::Arity { .. }));
        assert!(matches!(eval_err("true(1)"), XPathError::Arity { .. }));
        assert!(matches!(eval_err("concat('a')"), XPathError::Arity { .. }));
        assert!(matches!(
            eval_err("minimum(1, 2)"),
            XPathError::UnknownFunction(_)
        ));
    }

    #[test]
    fn zero_arg_defaults_use_context_node() {
        // string() of the context node concatenates descendant text.
        let v = eval("string-length()");
        let Value::Num(n) = v else { panic!() };
        assert!(n > 0.0);
    }

    #[allow(unused)]
    fn silence(_: Expr) {}
}
