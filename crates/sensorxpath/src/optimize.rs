//! Static expression optimization.
//!
//! Two transformations that matter for QEG programs (which evaluate the
//! same predicates against thousands of nodes):
//!
//! * **constant folding** — arithmetic/boolean/comparison subexpressions
//!   with no data references collapse to literals (`2 * 30` → `60`,
//!   `true() and @x = '1'` → `@x = '1'`);
//! * **predicate reordering** — within a step's predicate list, cheap
//!   id-attribute tests run before arbitrary predicates, so non-matching
//!   siblings are rejected before any subtree-touching work.
//!
//! Semantics note: reordering is sound because the unordered fragment has
//! no positional predicates (rejected at parse time) and predicate
//! evaluation here is side-effect-free.

use crate::ast::{Axis, BinOp, Expr, LocationPath, NodeTest, Step};
use crate::value::number_to_string;

/// Optimizes an expression tree (see module docs).
pub fn optimize(expr: &Expr) -> Expr {
    fold(expr)
}

fn fold(e: &Expr) -> Expr {
    match e {
        Expr::Binary(op, l, r) => {
            let l = fold(l);
            let r = fold(r);
            fold_binary(*op, l, r)
        }
        Expr::Negate(inner) => {
            let inner = fold(inner);
            if let Some(n) = as_const_num(&inner) {
                Expr::Number(-n)
            } else {
                Expr::Negate(Box::new(inner))
            }
        }
        Expr::Union(l, r) => Expr::Union(Box::new(fold(l)), Box::new(fold(r))),
        Expr::Path(p) => Expr::Path(fold_path(p)),
        Expr::Filter { primary, predicates, trailing } => Expr::Filter {
            primary: Box::new(fold(primary)),
            predicates: predicates.iter().map(fold).collect(),
            trailing: trailing.iter().map(fold_step).collect(),
        },
        Expr::Call(name, args) => {
            let args: Vec<Expr> = args.iter().map(fold).collect();
            fold_call(name, args)
        }
        other => other.clone(),
    }
}

fn fold_path(p: &LocationPath) -> LocationPath {
    LocationPath {
        absolute: p.absolute,
        steps: p.steps.iter().map(fold_step).collect(),
    }
}

fn fold_step(s: &Step) -> Step {
    let mut predicates: Vec<Expr> = s.predicates.iter().map(fold).collect();
    // Drop predicates folded to `true()`; a `false()` predicate empties
    // the step, which downstream evaluation handles naturally.
    predicates.retain(|p| !is_true_call(p));
    // Id-attribute-only predicates first (cheap rejection).
    predicates.sort_by_key(|p| usize::from(p.as_id_equals().is_none()));
    let mut step = Step {
        axis: s.axis,
        test: s.test.clone(),
        predicates,
        indexed_id: None,
    };
    // With the id test sorted first, `child::tag[@id = 'lit']...` steps can
    // be answered from the document's sibling index; mark them for the
    // evaluator's fast path.
    step.indexed_id = step.compute_indexed_id();
    step
}

fn fold_binary(op: BinOp, l: Expr, r: Expr) -> Expr {
    use BinOp::*;
    // Boolean short-circuits with constant operands. Eliminating the
    // constant operand must not change the expression's *type*: `x and
    // true()` yields a boolean even when `x` is a node-set, so the
    // surviving operand is wrapped in `boolean()` unless it already
    // always evaluates to one (`count(x and true())` must keep erroring
    // after optimization). Discarding the left operand is always safe
    // (evaluation short-circuits before reaching the right), but
    // discarding the *right* operand also discards any error it would
    // have raised, so that fold requires an infallible left side.
    match op {
        And => {
            if is_false_call(&l) {
                return Expr::Call("false".into(), vec![]);
            }
            if is_true_call(&l) {
                return as_boolean(r);
            }
            if is_true_call(&r) {
                return as_boolean(l);
            }
            if is_false_call(&r) && is_infallible(&l) {
                return Expr::Call("false".into(), vec![]);
            }
        }
        Or => {
            if is_true_call(&l) {
                return Expr::Call("true".into(), vec![]);
            }
            if is_false_call(&l) {
                return as_boolean(r);
            }
            if is_false_call(&r) {
                return as_boolean(l);
            }
            if is_true_call(&r) && is_infallible(&l) {
                return Expr::Call("true".into(), vec![]);
            }
        }
        _ => {}
    }
    // Numeric constant folding.
    if let (Some(a), Some(b)) = (as_const_num(&l), as_const_num(&r)) {
        let out = match op {
            Add => Some(a + b),
            Sub => Some(a - b),
            Mul => Some(a * b),
            Div => Some(a / b),
            Mod => Some(a % b),
            Eq => return bool_call(a == b),
            Ne => return bool_call(a != b),
            Lt => return bool_call(a < b),
            Le => return bool_call(a <= b),
            Gt => return bool_call(a > b),
            Ge => return bool_call(a >= b),
            And | Or => None,
        };
        if let Some(n) = out {
            if n.is_finite() {
                return Expr::Number(n);
            }
        }
    }
    // String constant comparisons.
    if let (Expr::Literal(a), Expr::Literal(b)) = (&l, &r) {
        match op {
            Eq => return bool_call(a == b),
            Ne => return bool_call(a != b),
            _ => {}
        }
    }
    Expr::Binary(op, Box::new(l), Box::new(r))
}

fn fold_call(name: &str, args: Vec<Expr>) -> Expr {
    match (name, args.as_slice()) {
        ("not", [a]) if is_true_call(a) => Expr::Call("false".into(), vec![]),
        ("not", [a]) if is_false_call(a) => Expr::Call("true".into(), vec![]),
        ("number", [Expr::Number(n)]) => Expr::Number(*n),
        ("string", [Expr::Number(n)]) => Expr::Literal(number_to_string(*n)),
        ("string", [Expr::Literal(s)]) => Expr::Literal(s.clone()),
        ("concat", parts)
            if parts.len() >= 2 && parts.iter().all(|p| matches!(p, Expr::Literal(_))) =>
        {
            let joined: String = parts
                .iter()
                .map(|p| match p {
                    Expr::Literal(s) => s.as_str(),
                    _ => unreachable!("checked above"),
                })
                .collect();
            Expr::Literal(joined)
        }
        _ => Expr::Call(name.to_string(), args),
    }
}

fn as_const_num(e: &Expr) -> Option<f64> {
    match e {
        Expr::Number(n) => Some(*n),
        _ => None,
    }
}

fn is_true_call(e: &Expr) -> bool {
    matches!(e, Expr::Call(n, args) if n == "true" && args.is_empty())
}

fn is_false_call(e: &Expr) -> bool {
    matches!(e, Expr::Call(n, args) if n == "false" && args.is_empty())
}

fn bool_call(b: bool) -> Expr {
    Expr::Call(if b { "true" } else { "false" }.to_string(), vec![])
}

/// True if the expression always evaluates to a boolean value.
fn is_boolean_typed(e: &Expr) -> bool {
    use BinOp::*;
    match e {
        Expr::Binary(op, ..) => matches!(op, And | Or | Eq | Ne | Lt | Le | Gt | Ge),
        Expr::Call(name, _) => {
            matches!(name.as_str(), "true" | "false" | "not" | "boolean" | "contains" | "starts-with")
        }
        _ => false,
    }
}

/// `e` if it is already boolean-typed, else `boolean(e)` — the coercion
/// an `and`/`or` operand position would have applied.
fn as_boolean(e: Expr) -> Expr {
    if is_boolean_typed(&e) {
        e
    } else {
        Expr::Call("boolean".into(), vec![e])
    }
}

/// True if evaluating the expression can never raise an error (used to
/// justify discarding it entirely). Deliberately conservative: constants
/// and the nullary boolean calls.
fn is_infallible(e: &Expr) -> bool {
    matches!(e, Expr::Number(_) | Expr::Literal(_)) || is_true_call(e) || is_false_call(e)
}

/// Applies `f` to every step in the expression tree, recursing into
/// predicates and nested paths.
fn for_each_step(e: &mut Expr, f: &mut dyn FnMut(&mut Step)) {
    fn walk_steps(steps: &mut [Step], f: &mut dyn FnMut(&mut Step)) {
        for s in steps {
            f(s);
            s.predicates.iter_mut().for_each(|p| for_each_step(p, f));
        }
    }
    match e {
        Expr::Path(p) => walk_steps(&mut p.steps, f),
        Expr::Binary(_, l, r) | Expr::Union(l, r) => {
            for_each_step(l, f);
            for_each_step(r, f);
        }
        Expr::Negate(i) => for_each_step(i, f),
        Expr::Call(_, args) => args.iter_mut().for_each(|a| for_each_step(a, f)),
        Expr::Filter { primary, predicates, trailing } => {
            for_each_step(primary, f);
            predicates.iter_mut().for_each(|p| for_each_step(p, f));
            walk_steps(trailing, f);
        }
        Expr::Literal(_) | Expr::Number(_) | Expr::Var(_) => {}
    }
}

/// Clears every step's `indexed_id` evaluation hint, forcing the evaluator
/// back onto the scan-then-filter path. The expression's semantics are
/// untouched (the hint never carries meaning). This is the benchmark
/// baseline for the sibling-index fast path.
pub fn strip_index_hints(e: &mut Expr) {
    for_each_step(e, &mut |s| s.indexed_id = None);
}

/// Recomputes every step's `indexed_id` hint in place. Use after building an
/// expression outside [`optimize`] — e.g. re-parsing a printed subquery,
/// whose hints `Display` deliberately drops — to restore the indexed-lookup
/// fast path.
pub fn mark_index_hints(e: &mut Expr) {
    for_each_step(e, &mut |s| s.indexed_id = s.compute_indexed_id());
}

/// True if the expression references no document data (safe to hoist).
pub fn is_constant(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) | Expr::Number(_) => true,
        Expr::Binary(_, l, r) | Expr::Union(l, r) => is_constant(l) && is_constant(r),
        Expr::Negate(i) => is_constant(i),
        Expr::Call(name, args) => name != "now" && args.iter().all(is_constant),
        Expr::Path(_) | Expr::Filter { .. } | Expr::Var(_) => false,
    }
}

/// Cost hint for a step predicate: 0 = id equality, 1 = attribute-only,
/// 2 = anything touching child content.
pub fn predicate_cost(e: &Expr) -> u8 {
    if e.as_id_equals().is_some() {
        return 0;
    }
    fn touches_children(e: &Expr) -> bool {
        match e {
            Expr::Path(p) => p.steps.iter().any(|s| {
                !(s.axis == Axis::Attribute
                    || (s.axis == Axis::SelfAxis && s.test == NodeTest::Node))
            }),
            Expr::Binary(_, l, r) | Expr::Union(l, r) => {
                touches_children(l) || touches_children(r)
            }
            Expr::Negate(i) => touches_children(i),
            Expr::Call(_, args) => args.iter().any(touches_children),
            Expr::Filter { .. } => true,
            _ => false,
        }
    }
    if touches_children(e) {
        2
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn opt(s: &str) -> String {
        optimize(&parse(s).unwrap()).to_string()
    }

    #[test]
    fn index_hints_marked_and_stripped() {
        let e = optimize(&parse("/a[@id='1']/b[@id='2'][price > 3]").unwrap());
        let steps = match &e {
            Expr::Path(p) => &p.steps,
            other => panic!("expected path, got {other}"),
        };
        assert_eq!(steps[0].indexed_id.as_deref(), Some("1"));
        assert_eq!(steps[1].indexed_id.as_deref(), Some("2"));

        let mut stripped = e.clone();
        strip_index_hints(&mut stripped);
        let ssteps = match &stripped {
            Expr::Path(p) => &p.steps,
            other => panic!("expected path, got {other}"),
        };
        assert!(ssteps.iter().all(|s| s.indexed_id.is_none()));
        // The hint is an execution detail: equality and display ignore it.
        assert_eq!(stripped, e);
        assert_eq!(stripped.to_string(), e.to_string());
    }

    #[test]
    fn non_id_steps_get_no_hint() {
        let e = optimize(&parse("/a[@id='1']/b[price > 3]/c").unwrap());
        let steps = match &e {
            Expr::Path(p) => &p.steps,
            other => panic!("expected path, got {other}"),
        };
        assert_eq!(steps[0].indexed_id.as_deref(), Some("1"));
        assert_eq!(steps[1].indexed_id, None);
        assert_eq!(steps[2].indexed_id, None);
    }

    #[test]
    fn arithmetic_folds() {
        assert_eq!(opt("2 * 30"), "60");
        assert_eq!(opt("1 + 2 + 3"), "6");
        assert_eq!(opt("10 div 4"), "2.5");
        assert_eq!(opt("-(3 + 4)"), "-7");
        assert_eq!(opt("17 mod 5"), "2");
        // Division by zero stays unfolded (NaN/Infinity semantics must be
        // preserved at runtime).
        assert_eq!(opt("1 div 0"), "1 div 0");
    }

    #[test]
    fn comparisons_fold_to_boolean_calls() {
        assert_eq!(opt("2 > 1"), "true()");
        assert_eq!(opt("2 < 1"), "false()");
        assert_eq!(opt("'a' = 'a'"), "true()");
        assert_eq!(opt("'a' = 'b'"), "false()");
    }

    #[test]
    fn boolean_identities() {
        assert_eq!(opt("true() and @x = '1'"), "@x = '1'");
        assert_eq!(opt("@x = '1' and true()"), "@x = '1'");
        assert_eq!(opt("false() or @x = '1'"), "@x = '1'");
        assert_eq!(opt("false() and @x = '1'"), "false()");
        assert_eq!(opt("true() or @x = '1'"), "true()");
        assert_eq!(opt("not(true())"), "false()");
        assert_eq!(opt("not(1 > 2)"), "true()");
    }

    #[test]
    fn consistency_windows_fold() {
        // The common generated shape `now() - 30` keeps now() (dynamic)
        // but folds constant tolerances around it.
        assert_eq!(opt("@timestamp > now() - (15 + 15)"), "@timestamp > now() - 30");
    }

    #[test]
    fn string_functions_fold() {
        assert_eq!(opt("concat('a', 'b', 'c')"), "'abc'");
        assert_eq!(opt("string(7)"), "'7'");
        assert_eq!(opt("number(42)"), "42");
    }

    #[test]
    fn predicates_reorder_id_first_and_drop_true() {
        assert_eq!(
            opt("block[available='yes'][@id='3'][true()]"),
            "block[@id = '3'][available = 'yes']"
        );
        // Semantics unchanged: conjunction is commutative here.
    }

    #[test]
    fn folding_preserves_evaluation() {
        let doc = sensorxml::parse(
            r#"<a id="1"><b id="2"><price>10</price></b><b id="3"><price>30</price></b></a>"#,
        )
        .unwrap();
        let root = doc.root().unwrap();
        for q in [
            "/a[@id='1']/b[price > 5 * 4][@id='3']",
            "//b[2 > 1]",
            "count(//b) = 1 + 1",
            "//b[price = 10 + 20]",
        ] {
            let orig = parse(q).unwrap();
            let opt = optimize(&orig);
            let v1 = crate::eval::evaluate_at(&orig, &doc, crate::value::XNode::Node(root)).unwrap();
            let v2 = crate::eval::evaluate_at(&opt, &doc, crate::value::XNode::Node(root)).unwrap();
            assert_eq!(v1, v2, "optimization changed `{q}` -> `{opt}`");
        }
    }

    #[test]
    fn constness_analysis() {
        assert!(is_constant(&parse("1 + 2").unwrap()));
        assert!(is_constant(&parse("concat('a', 'b')").unwrap()));
        assert!(!is_constant(&parse("now()").unwrap()));
        assert!(!is_constant(&parse("@id").unwrap()));
        assert!(!is_constant(&parse("$v").unwrap()));
    }

    #[test]
    fn predicate_costs() {
        assert_eq!(predicate_cost(&parse("@id = 'x'").unwrap()), 0);
        assert_eq!(predicate_cost(&parse("@price > 5").unwrap()), 1);
        assert_eq!(predicate_cost(&parse("price > 5").unwrap()), 2);
        assert_eq!(predicate_cost(&parse("count(b) > 1").unwrap()), 2);
    }
}
