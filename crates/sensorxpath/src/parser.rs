//! Recursive-descent parser for the unordered fragment of XPath 1.0.

use crate::ast::{Axis, BinOp, Expr, LocationPath, NodeTest, Step};
use crate::error::{XPathError, XPathResult};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses an XPath expression.
pub fn parse(input: &str) -> XPathResult<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let expr = p.parse_or()?;
    if p.pos < p.tokens.len() {
        return Err(XPathError::syntax(
            p.tokens[p.pos].offset,
            "unexpected trailing tokens",
        ));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos + 1).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.offset)
            .unwrap_or_else(|| self.tokens.last().map(|t| t.offset + 1).unwrap_or(0))
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> XPathResult<()> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(XPathError::syntax(self.offset(), format!("expected {what}")))
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> XPathResult<T> {
        Err(XPathError::syntax(self.offset(), msg))
    }

    // Expr ::= OrExpr
    fn parse_or(&mut self) -> XPathResult<Expr> {
        let mut left = self.parse_and()?;
        while matches!(self.peek(), Some(TokenKind::OperatorName(n)) if n == "or") {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> XPathResult<Expr> {
        let mut left = self.parse_equality()?;
        while matches!(self.peek(), Some(TokenKind::OperatorName(n)) if n == "and") {
            self.bump();
            let right = self.parse_equality()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_equality(&mut self) -> XPathResult<Expr> {
        let mut left = self.parse_relational()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Eq) => BinOp::Eq,
                Some(TokenKind::Ne) => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let right = self.parse_relational()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_relational(&mut self) -> XPathResult<Expr> {
        let mut left = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Lt) => BinOp::Lt,
                Some(TokenKind::Le) => BinOp::Le,
                Some(TokenKind::Gt) => BinOp::Gt,
                Some(TokenKind::Ge) => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let right = self.parse_additive()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> XPathResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> XPathResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Multiply) => BinOp::Mul,
                Some(TokenKind::OperatorName(n)) if n == "div" => BinOp::Div,
                Some(TokenKind::OperatorName(n)) if n == "mod" => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> XPathResult<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            Ok(Expr::Negate(Box::new(inner)))
        } else {
            self.parse_union()
        }
    }

    fn parse_union(&mut self) -> XPathResult<Expr> {
        let mut left = self.parse_path_expr()?;
        while self.eat(&TokenKind::Pipe) {
            let right = self.parse_path_expr()?;
            left = Expr::Union(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    /// PathExpr ::= LocationPath | FilterExpr (('/'|'//') RelativeLocationPath)?
    fn parse_path_expr(&mut self) -> XPathResult<Expr> {
        if self.starts_filter_expr() {
            let primary = self.parse_primary()?;
            let mut predicates = Vec::new();
            while self.peek() == Some(&TokenKind::LBracket) {
                predicates.push(self.parse_predicate()?);
            }
            let mut trailing = Vec::new();
            if self.eat(&TokenKind::DoubleSlash) {
                trailing.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::Node,
                    predicates: Vec::new(),
                    indexed_id: None,
                });
                self.parse_relative_path_into(&mut trailing)?;
            } else if self.eat(&TokenKind::Slash) {
                self.parse_relative_path_into(&mut trailing)?;
            }
            if predicates.is_empty() && trailing.is_empty() {
                Ok(primary)
            } else {
                Ok(Expr::Filter {
                    primary: Box::new(primary),
                    predicates,
                    trailing,
                })
            }
        } else {
            Ok(Expr::Path(self.parse_location_path()?))
        }
    }

    /// A primary expression starts a FilterExpr; everything else is a
    /// location path. Node-test-like names (`text(`/`node(`) start paths.
    fn starts_filter_expr(&self) -> bool {
        match self.peek() {
            Some(TokenKind::Variable(_))
            | Some(TokenKind::LParen)
            | Some(TokenKind::Literal(_))
            | Some(TokenKind::Number(_)) => true,
            Some(TokenKind::FunctionName(n)) => n != "text" && n != "node",
            _ => false,
        }
    }

    fn parse_primary(&mut self) -> XPathResult<Expr> {
        match self.bump() {
            Some(TokenKind::Variable(name)) => Ok(Expr::Var(name)),
            Some(TokenKind::Literal(s)) => Ok(Expr::Literal(s)),
            Some(TokenKind::Number(n)) => Ok(Expr::Number(n)),
            Some(TokenKind::LParen) => {
                let e = self.parse_or()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            Some(TokenKind::FunctionName(name)) => {
                if matches!(name.as_str(), "position" | "last") {
                    return Err(XPathError::Ordered(format!("{name}()")));
                }
                self.expect(TokenKind::LParen, "`(`")?;
                let mut args = Vec::new();
                if self.peek() != Some(&TokenKind::RParen) {
                    loop {
                        args.push(self.parse_or()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(Expr::Call(name, args))
            }
            _ => self.err("expected a primary expression"),
        }
    }

    fn parse_location_path(&mut self) -> XPathResult<LocationPath> {
        let mut steps = Vec::new();
        let absolute;
        if self.eat(&TokenKind::DoubleSlash) {
            absolute = true;
            steps.push(Step {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::Node,
                predicates: Vec::new(),
                indexed_id: None,
            });
            self.parse_relative_path_into(&mut steps)?;
        } else if self.eat(&TokenKind::Slash) {
            absolute = true;
            // `/` alone selects the root.
            if self.starts_step() {
                self.parse_relative_path_into(&mut steps)?;
            }
        } else {
            absolute = false;
            self.parse_relative_path_into(&mut steps)?;
        }
        Ok(LocationPath { absolute, steps })
    }

    fn starts_step(&self) -> bool {
        matches!(
            self.peek(),
            Some(
                TokenKind::Name(_)
                    | TokenKind::Star
                    | TokenKind::At
                    | TokenKind::Dot
                    | TokenKind::DotDot
                    | TokenKind::AxisName(_)
            )
        ) || matches!(self.peek(), Some(TokenKind::FunctionName(n)) if n == "text" || n == "node")
    }

    fn parse_relative_path_into(&mut self, steps: &mut Vec<Step>) -> XPathResult<()> {
        steps.push(self.parse_step()?);
        loop {
            if self.eat(&TokenKind::DoubleSlash) {
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::Node,
                    predicates: Vec::new(),
                    indexed_id: None,
                });
                steps.push(self.parse_step()?);
            } else if self.eat(&TokenKind::Slash) {
                steps.push(self.parse_step()?);
            } else {
                return Ok(());
            }
        }
    }

    fn parse_step(&mut self) -> XPathResult<Step> {
        // Abbreviations first.
        if self.eat(&TokenKind::Dot) {
            return Ok(Step {
                axis: Axis::SelfAxis,
                test: NodeTest::Node,
                predicates: Vec::new(),
                indexed_id: None,
            });
        }
        if self.eat(&TokenKind::DotDot) {
            return Ok(Step {
                axis: Axis::Parent,
                test: NodeTest::Node,
                predicates: Vec::new(),
                indexed_id: None,
            });
        }
        let axis = if self.eat(&TokenKind::At) {
            Axis::Attribute
        } else if let Some(TokenKind::AxisName(_)) = self.peek() {
            let Some(TokenKind::AxisName(name)) = self.bump() else {
                unreachable!()
            };
            match name.as_str() {
                "child" => Axis::Child,
                "descendant" => Axis::Descendant,
                "descendant-or-self" => Axis::DescendantOrSelf,
                "self" => Axis::SelfAxis,
                "parent" => Axis::Parent,
                "ancestor" => Axis::Ancestor,
                "ancestor-or-self" => Axis::AncestorOrSelf,
                "attribute" => Axis::Attribute,
                "following" | "following-sibling" | "preceding" | "preceding-sibling" => {
                    return Err(XPathError::Ordered(format!("{name}::")));
                }
                other => {
                    return self.err(format!("unknown axis `{other}::`"));
                }
            }
        } else {
            Axis::Child
        };
        let test = match self.bump() {
            Some(TokenKind::Name(n)) => NodeTest::Name(n),
            Some(TokenKind::Star) => NodeTest::Any,
            Some(TokenKind::FunctionName(n)) if n == "text" => {
                self.expect(TokenKind::LParen, "`(`")?;
                self.expect(TokenKind::RParen, "`)`")?;
                NodeTest::Text
            }
            Some(TokenKind::FunctionName(n)) if n == "node" => {
                self.expect(TokenKind::LParen, "`(`")?;
                self.expect(TokenKind::RParen, "`)`")?;
                NodeTest::Node
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return self.err("expected a node test");
            }
        };
        let mut predicates = Vec::new();
        while self.peek() == Some(&TokenKind::LBracket) {
            predicates.push(self.parse_predicate()?);
        }
        Ok(Step { axis, test, predicates, indexed_id: None })
    }

    fn parse_predicate(&mut self) -> XPathResult<Expr> {
        self.expect(TokenKind::LBracket, "`[`")?;
        // A bare number predicate is positional — order-dependent.
        if let (Some(TokenKind::Number(n)), Some(TokenKind::RBracket)) =
            (self.peek(), self.peek2())
        {
            return Err(XPathError::Ordered(format!("positional predicate [{n}]")));
        }
        let e = self.parse_or()?;
        self.expect(TokenKind::RBracket, "`]`")?;
        Ok(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) {
        let e1 = parse(s).unwrap_or_else(|err| panic!("parse `{s}`: {err}"));
        let printed = e1.to_string();
        let e2 = parse(&printed)
            .unwrap_or_else(|err| panic!("reparse `{printed}` (from `{s}`): {err}"));
        assert_eq!(e1, e2, "roundtrip mismatch for `{s}` -> `{printed}`");
    }

    #[test]
    fn parses_paper_query() {
        let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
                 /city[@id='Pittsburgh']\
                 /neighborhood[@id='Oakland' or @id='Shadyside']\
                 /block[@id='1']/parkingSpace[available='yes']";
        let e = parse(q).unwrap();
        let Expr::Path(p) = &e else { panic!("expected path") };
        assert!(p.absolute);
        assert_eq!(p.steps.len(), 7);
        assert_eq!(p.steps[0].predicates[0].as_id_equals(), Some("NE"));
        assert_eq!(p.steps[4].predicates.len(), 1);
        assert!(p.steps[4].predicates[0].as_id_equals().is_none()); // OR of ids
        roundtrip(q);
    }

    #[test]
    fn parses_min_price_query() {
        let q = "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
                 /city[@id='Pittsburgh']/neighborhood[@id='Oakland']/block[@id='1']\
                 /parkingSpace[not(price > ../parkingSpace/price)]";
        let e = parse(q).unwrap();
        roundtrip(q);
        let Expr::Path(p) = &e else { panic!() };
        let pred = &p.steps.last().unwrap().predicates[0];
        let Expr::Call(name, args) = pred else { panic!("expected not(...)") };
        assert_eq!(name, "not");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn parses_axes_and_abbreviations() {
        roundtrip("//a");
        roundtrip("/a//b");
        roundtrip(".//b");
        roundtrip("../c");
        roundtrip("./@x");
        roundtrip("ancestor::a/b");
        roundtrip("descendant::x[@id='1']");
        roundtrip("self::node()");
        roundtrip("a/text()");
        roundtrip("a/*/b");
    }

    #[test]
    fn slash_alone_is_root() {
        let e = parse("/").unwrap();
        let Expr::Path(p) = &e else { panic!() };
        assert!(p.absolute);
        assert!(p.steps.is_empty());
        roundtrip("/");
    }

    #[test]
    fn parses_expressions() {
        roundtrip("1 + 2 * 3");
        roundtrip("(1 + 2) * 3");
        roundtrip("-x");
        roundtrip("a | b | c");
        roundtrip("a and b or c");
        roundtrip("@price = '0' and available = 'yes'");
        roundtrip("count(./b/c) = 5");
        roundtrip("concat('a', 'b', string(2))");
        roundtrip("10 mod 3 div 2");
        roundtrip("boolean(//city/neighborhood[@id='Oakland'])");
        roundtrip("not(@x) and not(b)");
        roundtrip("2 > 1");
        roundtrip("'lit'");
        roundtrip("$var/a[@id='2']");
    }

    #[test]
    fn filter_expr_with_trailing_path() {
        let e = parse("(a | b)/c").unwrap();
        let Expr::Filter { trailing, .. } = &e else { panic!("expected filter") };
        assert_eq!(trailing.len(), 1);
        roundtrip("(a | b)/c");
        roundtrip("$v//x");
    }

    #[test]
    fn left_associativity_preserved() {
        // 8 - 4 - 2 must stay (8-4)-2 = 2, not 8-(4-2).
        let e = parse("8 - 4 - 2").unwrap();
        let printed = e.to_string();
        let e2 = parse(&printed).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn ordered_constructs_rejected() {
        assert!(matches!(parse("a[position() = 1]"), Err(XPathError::Ordered(_))));
        assert!(matches!(parse("a[last()]"), Err(XPathError::Ordered(_))));
        assert!(matches!(parse("a[1]"), Err(XPathError::Ordered(_))));
        assert!(matches!(
            parse("following-sibling::a"),
            Err(XPathError::Ordered(_))
        ));
        assert!(matches!(parse("preceding::a"), Err(XPathError::Ordered(_))));
    }

    #[test]
    fn syntax_errors() {
        assert!(parse("").is_err());
        assert!(parse("/a[").is_err());
        assert!(parse("/a]").is_err());
        assert!(parse("f(a,").is_err());
        assert!(parse("a/").is_err());
        assert!(parse("unknown-axis::a").is_err());
        assert!(parse("a b").is_err());
    }

    #[test]
    fn or_inside_predicate() {
        let e = parse("n[@id='a' or @id='b']").unwrap();
        let Expr::Path(p) = &e else { panic!() };
        let Expr::Binary(BinOp::Or, l, r) = &p.steps[0].predicates[0] else {
            panic!("expected or")
        };
        assert_eq!(l.as_id_equals(), Some("a"));
        assert_eq!(r.as_id_equals(), Some("b"));
    }

    #[test]
    fn multiple_predicates_conjunction() {
        let e = parse("parkingSpace[available='yes'][@price='0']").unwrap();
        let Expr::Path(p) = &e else { panic!() };
        assert_eq!(p.steps[0].predicates.len(), 2);
        roundtrip("parkingSpace[available='yes'][@price='0']");
    }

    #[test]
    fn consistency_predicate_shape() {
        roundtrip("block[timestamp > now() - 30]");
    }
}
