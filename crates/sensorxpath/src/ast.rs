//! The XPath abstract syntax tree.
//!
//! `Display` implementations regenerate parseable XPath text; the
//! distributed query layer uses this to print subqueries shipped to other
//! sites, so `parse(expr.to_string())` must round-trip (checked by property
//! tests in the parser module).

use std::fmt;

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// Precedence level (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq | BinOp::Ne => 3,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 4,
            BinOp::Add | BinOp::Sub => 5,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 6,
        }
    }

    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "or",
            BinOp::And => "and",
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
        }
    }
}

/// Axes of the unordered fragment. The ordered axes
/// (`following-sibling::` etc.) are rejected at parse time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    Child,
    Descendant,
    DescendantOrSelf,
    SelfAxis,
    Parent,
    Ancestor,
    AncestorOrSelf,
    Attribute,
}

impl Axis {
    /// The axis name as written in the verbose syntax.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::SelfAxis => "self",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Attribute => "attribute",
        }
    }
}

/// Node tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A name test (`block`, or attribute name after `@`).
    Name(String),
    /// The `*` wildcard.
    Any,
    /// `text()`
    Text,
    /// `node()`
    Node,
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::Name(n) => write!(f, "{n}"),
            NodeTest::Any => write!(f, "*"),
            NodeTest::Text => write!(f, "text()"),
            NodeTest::Node => write!(f, "node()"),
        }
    }
}

/// One location step: axis, node test, and a (possibly empty) list of
/// predicates forming a conjunction.
#[derive(Debug, Clone)]
pub struct Step {
    pub axis: Axis,
    pub test: NodeTest,
    pub predicates: Vec<Expr>,
    /// Evaluator hint: set iff this is a `child::name` step whose *first*
    /// predicate is exactly `@id = <this literal>`, which lets the
    /// evaluator answer the step from the document's sibling index instead
    /// of scanning every child and re-testing the predicate. Purely an
    /// execution hint — it never changes semantics, is invisible to
    /// `Display` (the predicate list still prints in full, so shipped
    /// subqueries round-trip), and is ignored by `PartialEq`. Set by the
    /// optimizer and by the id-path constructors; recompute with
    /// [`Step::compute_indexed_id`] after editing `predicates`.
    pub indexed_id: Option<String>,
}

/// Equality ignores the `indexed_id` execution hint: an optimized step and
/// its unoptimized (or reparsed) twin compare equal.
impl PartialEq for Step {
    fn eq(&self, other: &Self) -> bool {
        self.axis == other.axis
            && self.test == other.test
            && self.predicates == other.predicates
    }
}

impl Step {
    /// A plain `child::name` step with no predicates.
    pub fn child(name: impl Into<String>) -> Self {
        Step {
            axis: Axis::Child,
            test: NodeTest::Name(name.into()),
            predicates: Vec::new(),
            indexed_id: None,
        }
    }

    /// A `child::name[@id='id']` step, pre-marked for indexed evaluation.
    pub fn child_with_id(name: impl Into<String>, id: impl Into<String>) -> Self {
        let id = id.into();
        Step {
            axis: Axis::Child,
            test: NodeTest::Name(name.into()),
            predicates: vec![Expr::id_equals(id.clone())],
            indexed_id: Some(id),
        }
    }

    /// The `indexed_id` hint this step's shape supports: `Some(literal)`
    /// iff the axis is `child`, the test is a name test, and the first
    /// predicate is exactly `@id = 'literal'`.
    pub fn compute_indexed_id(&self) -> Option<String> {
        if self.axis != Axis::Child || !matches!(self.test, NodeTest::Name(_)) {
            return None;
        }
        self.predicates
            .first()
            .and_then(|p| p.as_id_equals())
            .map(str::to_string)
    }

    /// True for the `descendant-or-self::node()` step that encodes `//`.
    pub fn is_abbrev_descendant(&self) -> bool {
        self.axis == Axis::DescendantOrSelf
            && self.test == NodeTest::Node
            && self.predicates.is_empty()
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.axis, &self.test, self.predicates.is_empty()) {
            (Axis::SelfAxis, NodeTest::Node, true) => return write!(f, "."),
            (Axis::Parent, NodeTest::Node, true) => return write!(f, ".."),
            _ => {}
        }
        match self.axis {
            Axis::Child => write!(f, "{}", self.test)?,
            Axis::Attribute => write!(f, "@{}", self.test)?,
            axis => write!(f, "{}::{}", axis.name(), self.test)?,
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

/// A location path: optionally absolute, then a sequence of steps.
/// `//` is represented by an interior `descendant-or-self::node()` step.
#[derive(Debug, Clone, PartialEq)]
pub struct LocationPath {
    pub absolute: bool,
    pub steps: Vec<Step>,
}

impl LocationPath {
    /// Builds an absolute path of id-pinned child steps — the shape of the
    /// paper's root-to-node ID paths.
    pub fn absolute_id_path<'a>(segments: impl IntoIterator<Item = (&'a str, &'a str)>) -> Self {
        LocationPath {
            absolute: true,
            steps: segments
                .into_iter()
                .map(|(name, id)| Step::child_with_id(name, id))
                .collect(),
        }
    }
}

impl fmt::Display for LocationPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute && self.steps.is_empty() {
            return write!(f, "/");
        }
        let mut first = true;
        let mut pending_descendant = false;
        for step in &self.steps {
            if step.is_abbrev_descendant() {
                pending_descendant = true;
                continue;
            }
            if first {
                if self.absolute {
                    write!(f, "/")?;
                }
                if pending_descendant {
                    write!(f, "/")?;
                }
            } else {
                write!(f, "/")?;
                if pending_descendant {
                    write!(f, "/")?;
                }
            }
            pending_descendant = false;
            write!(f, "{step}")?;
            first = false;
        }
        if pending_descendant {
            // A trailing `//` cannot arise from the parser; print the
            // verbose form to stay parseable.
            if !first || self.absolute {
                write!(f, "/")?;
            }
            write!(f, "descendant-or-self::node()")?;
        }
        Ok(())
    }
}

/// An XPath expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Unary minus.
    Negate(Box<Expr>),
    /// Node-set union `a | b`.
    Union(Box<Expr>, Box<Expr>),
    /// A location path.
    Path(LocationPath),
    /// A filter expression: a primary expression with predicates and an
    /// optional trailing relative path, e.g. `$v[...]/a/b` or `(...)/c`.
    Filter {
        primary: Box<Expr>,
        predicates: Vec<Expr>,
        /// Steps applied to the filtered node-set (empty if none).
        trailing: Vec<Step>,
    },
    /// String literal.
    Literal(String),
    /// Numeric literal.
    Number(f64),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Variable reference `$name`.
    Var(String),
}

impl Expr {
    /// Builds the ubiquitous `@id='value'` predicate.
    pub fn id_equals(id: impl Into<String>) -> Expr {
        Expr::Binary(
            BinOp::Eq,
            Box::new(Expr::Path(LocationPath {
                absolute: false,
                steps: vec![Step {
                    axis: Axis::Attribute,
                    test: NodeTest::Name("id".into()),
                    predicates: Vec::new(),
                    indexed_id: None,
                }],
            })),
            Box::new(Expr::Literal(id.into())),
        )
    }

    /// If this expression is exactly `@id = 'literal'` (either operand
    /// order), returns the literal.
    pub fn as_id_equals(&self) -> Option<&str> {
        let Expr::Binary(BinOp::Eq, l, r) = self else {
            return None;
        };
        let is_id_attr = |e: &Expr| {
            matches!(e, Expr::Path(LocationPath { absolute: false, steps })
                if steps.len() == 1
                    && steps[0].axis == Axis::Attribute
                    && steps[0].test == NodeTest::Name("id".into())
                    && steps[0].predicates.is_empty())
        };
        match (&**l, &**r) {
            (e, Expr::Literal(v)) if is_id_attr(e) => Some(v),
            (Expr::Literal(v), e) if is_id_attr(e) => Some(v),
            _ => None,
        }
    }

    /// Conjunction of a list of predicates (`true()` for an empty list).
    pub fn conjunction(mut preds: Vec<Expr>) -> Expr {
        match preds.len() {
            0 => Expr::Call("true".into(), Vec::new()),
            1 => preds.pop().expect("len checked"),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, |acc, p| {
                    Expr::Binary(BinOp::And, Box::new(acc), Box::new(p))
                })
            }
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Binary(op, ..) => op.precedence(),
            Expr::Negate(_) => 7,
            Expr::Union(..) => 8,
            _ => 9,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Binary(op, l, r) => {
                let p = op.precedence();
                write_paren(f, l, l.precedence() < p)?;
                write!(f, " {} ", op.symbol())?;
                // Right operand needs parens at equal precedence to keep
                // left-associativity on reparse.
                write_paren(f, r, r.precedence() <= p)
            }
            Expr::Negate(e) => {
                write!(f, "-")?;
                write_paren(f, e, e.precedence() < 7)
            }
            Expr::Union(l, r) => {
                write_paren(f, l, l.precedence() < 8)?;
                write!(f, " | ")?;
                write_paren(f, r, r.precedence() <= 8)
            }
            Expr::Path(p) => write!(f, "{p}"),
            Expr::Filter { primary, predicates, trailing } => {
                let needs = !matches!(
                    **primary,
                    Expr::Call(..) | Expr::Literal(_) | Expr::Number(_) | Expr::Var(_)
                );
                write_paren(f, primary, needs)?;
                for p in predicates {
                    write!(f, "[{p}]")?;
                }
                let mut pending_descendant = false;
                for s in trailing {
                    if s.is_abbrev_descendant() {
                        pending_descendant = true;
                        continue;
                    }
                    write!(f, "/")?;
                    if pending_descendant {
                        write!(f, "/")?;
                        pending_descendant = false;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
            Expr::Literal(s) => {
                if s.contains('\'') {
                    write!(f, "\"{s}\"")
                } else {
                    write!(f, "'{s}'")
                }
            }
            Expr::Number(n) => write!(f, "{}", crate::value::number_to_string(*n)),
            Expr::Call(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Var(name) => write!(f, "${name}"),
        }
    }
}

fn write_paren(f: &mut fmt::Formatter<'_>, e: &Expr, parens: bool) -> fmt::Result {
    if parens {
        write!(f, "({e})")
    } else {
        write!(f, "{e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_id_path() {
        let p = LocationPath::absolute_id_path([("usRegion", "NE"), ("state", "PA")]);
        assert_eq!(p.to_string(), "/usRegion[@id = 'NE']/state[@id = 'PA']");
    }

    #[test]
    fn as_id_equals_both_orders() {
        let e = Expr::id_equals("Oakland");
        assert_eq!(e.as_id_equals(), Some("Oakland"));
        let Expr::Binary(op, l, r) = e else { panic!() };
        let flipped = Expr::Binary(op, r, l);
        assert_eq!(flipped.as_id_equals(), Some("Oakland"));
    }

    #[test]
    fn as_id_equals_rejects_other_attrs() {
        let e = Expr::Binary(
            BinOp::Eq,
            Box::new(Expr::Path(LocationPath {
                absolute: false,
                steps: vec![Step {
                    axis: Axis::Attribute,
                    test: NodeTest::Name("price".into()),
                    predicates: vec![],
                    indexed_id: None,
                }],
            })),
            Box::new(Expr::Literal("0".into())),
        );
        assert_eq!(e.as_id_equals(), None);
    }

    #[test]
    fn conjunction_shapes() {
        assert_eq!(Expr::conjunction(vec![]).to_string(), "true()");
        assert_eq!(
            Expr::conjunction(vec![Expr::id_equals("a")]).to_string(),
            "@id = 'a'"
        );
        assert_eq!(
            Expr::conjunction(vec![Expr::id_equals("a"), Expr::id_equals("b")]).to_string(),
            "@id = 'a' and @id = 'b'"
        );
    }

    #[test]
    fn display_literal_with_apostrophe_uses_double_quotes() {
        assert_eq!(Expr::Literal("o'hara".into()).to_string(), "\"o'hara\"");
    }

    #[test]
    fn display_special_steps() {
        let dot = Step {
            axis: Axis::SelfAxis,
            test: NodeTest::Node,
            predicates: vec![],
            indexed_id: None,
        };
        let dotdot = Step {
            axis: Axis::Parent,
            test: NodeTest::Node,
            predicates: vec![],
            indexed_id: None,
        };
        assert_eq!(dot.to_string(), ".");
        assert_eq!(dotdot.to_string(), "..");
    }
}
