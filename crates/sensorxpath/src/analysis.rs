//! Query analysis for distributed processing (paper §3.4, §3.5, Def. 3.3).
//!
//! Three analyses drive the IrisNet query processor:
//!
//! 1. **Id-pinned prefix** ([`id_prefix`]): the maximal leading run of
//!    `/name[@id='value']` child steps. Its last step is the lowest common
//!    ancestor (LCA) of the query result; the DNS-style site name is built
//!    from these ids alone, with no global information (§3.4).
//! 2. **Nesting depth** ([`nesting_depth`], Definition 3.3): the maximum
//!    predicate-nesting level at which a location path traversing IDable
//!    nodes occurs. Depth-0 queries evaluate predicates from local
//!    information only; deeper queries require pre-fetching (§4).
//! 3. **Predicate splitting** ([`split_step_predicates`]): dividing a step's
//!    conjunction `P` into `P_id` (id-attribute-only), `P_consistency`
//!    (freshness tolerances on the timestamp field) and `P_rest`, flagging
//!    when the division is not clean (§3.5, §4).

use crate::ast::{Axis, Expr, LocationPath, NodeTest, Step};

/// Returns the maximal leading sequence of id-pinned child steps of a
/// top-level path query, as `(element name, id)` pairs.
///
/// A step qualifies if it is `child::name` and *some* conjunct of its
/// predicate list is exactly `@id = 'literal'`. The scan stops at the first
/// step that does not qualify (a wildcard, a `//`, an OR of ids, a missing
/// id, ...). Returns an empty vector for non-path queries.
pub fn id_prefix(expr: &Expr) -> Vec<(String, String)> {
    let Expr::Path(path) = expr else {
        return Vec::new();
    };
    if !path.absolute {
        return Vec::new();
    }
    id_prefix_of_steps(&path.steps)
}

/// [`id_prefix`] over a step slice (used for subqueries whose path is
/// already in hand).
pub fn id_prefix_of_steps(steps: &[Step]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for step in steps {
        if step.axis != Axis::Child {
            break;
        }
        let NodeTest::Name(name) = &step.test else {
            break;
        };
        let id = step
            .predicates
            .iter()
            .flat_map(flatten_conjuncts)
            .find_map(|c| c.as_id_equals());
        match id {
            Some(id) => out.push((name.clone(), id.to_string())),
            None => break,
        }
    }
    out
}

/// Flattens a predicate expression's top-level `and` chain into conjuncts.
pub fn flatten_conjuncts(pred: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary(crate::ast::BinOp::And, l, r) = e {
            walk(l, out);
            walk(r, out);
        } else {
            out.push(e);
        }
    }
    walk(pred, &mut out);
    out
}

/// Computes the nesting depth of a query (Definition 3.3).
///
/// `is_idable` reports whether a tag name denotes IDable nodes in the
/// service schema. A location path "traverses over IDable nodes" when any
/// of its name tests is an IDable tag; per Definition 3.1 IDable-ness is
/// closed upward, so this matches the paper's examples exactly.
pub fn nesting_depth(expr: &Expr, is_idable: &dyn Fn(&str) -> bool) -> u32 {
    top_level_paths(expr)
        .into_iter()
        .map(|p| path_depth(p, is_idable))
        .max()
        .unwrap_or(0)
}

fn path_depth(path: &LocationPath, is_idable: &dyn Fn(&str) -> bool) -> u32 {
    steps_depth(&path.steps, is_idable)
}

fn steps_depth(steps: &[Step], is_idable: &dyn Fn(&str) -> bool) -> u32 {
    steps
        .iter()
        .flat_map(|s| s.predicates.iter())
        .map(|p| pred_depth(p, is_idable))
        .max()
        .unwrap_or(0)
}

fn pred_depth(pred: &Expr, is_idable: &dyn Fn(&str) -> bool) -> u32 {
    top_level_paths(pred)
        .into_iter()
        .map(|q| {
            let inner = path_depth(q, is_idable);
            if inner > 0 || traverses_idable(q, is_idable) {
                1 + inner
            } else {
                0
            }
        })
        .max()
        .unwrap_or(0)
}

fn traverses_idable(path: &LocationPath, is_idable: &dyn Fn(&str) -> bool) -> bool {
    path.steps.iter().any(|s| {
        s.axis != Axis::Attribute
            && matches!(&s.test, NodeTest::Name(n) if is_idable(n))
    })
}

/// Collects the location paths of an expression *without* descending into
/// the predicates of their steps (predicate nesting is accounted for by
/// [`nesting_depth`]'s recursion).
fn top_level_paths(expr: &Expr) -> Vec<&LocationPath> {
    let mut out = Vec::new();
    fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e LocationPath>) {
        match e {
            Expr::Path(p) => out.push(p),
            Expr::Binary(_, l, r) | Expr::Union(l, r) => {
                walk(l, out);
                walk(r, out);
            }
            Expr::Negate(inner) => walk(inner, out),
            Expr::Call(_, args) => {
                for a in args {
                    walk(a, out);
                }
            }
            Expr::Filter { primary, predicates, .. } => {
                walk(primary, out);
                for p in predicates {
                    walk(p, out);
                }
            }
            Expr::Literal(_) | Expr::Number(_) | Expr::Var(_) => {}
        }
    }
    walk(expr, &mut out);
    out
}

/// What a predicate conjunct refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Refs {
    id_attr: bool,
    timestamp: bool,
    other: bool,
}

impl Refs {
    fn union(self, o: Refs) -> Refs {
        Refs {
            id_attr: self.id_attr || o.id_attr,
            timestamp: self.timestamp || o.timestamp,
            other: self.other || o.other,
        }
    }
}

fn refs_of(e: &Expr, ts_field: &str) -> Refs {
    match e {
        Expr::Path(p) => refs_of_path(p, ts_field),
        Expr::Binary(_, l, r) | Expr::Union(l, r) => {
            refs_of(l, ts_field).union(refs_of(r, ts_field))
        }
        Expr::Negate(inner) => refs_of(inner, ts_field),
        Expr::Call(name, args) => {
            // now() is a pure query-time constant, not a data reference.
            let mut r = Refs::default();
            if name != "now" {
                for a in args {
                    r = r.union(refs_of(a, ts_field));
                }
            }
            r
        }
        Expr::Filter { primary, predicates, trailing } => {
            let mut r = refs_of(primary, ts_field);
            for p in predicates {
                r = r.union(refs_of(p, ts_field));
            }
            if !trailing.is_empty() {
                r.other = true;
            }
            r
        }
        Expr::Literal(_) | Expr::Number(_) => Refs::default(),
        Expr::Var(_) => Refs { other: true, ..Refs::default() },
    }
}

fn refs_of_path(p: &LocationPath, ts_field: &str) -> Refs {
    let mut r = Refs::default();
    if p.absolute {
        r.other = true;
        return r;
    }
    // `@id` alone, possibly behind self steps.
    let effective: Vec<&Step> = p
        .steps
        .iter()
        .filter(|s| !(s.axis == Axis::SelfAxis && s.test == NodeTest::Node))
        .collect();
    match effective.as_slice() {
        [s] if s.axis == Axis::Attribute && s.predicates.is_empty() => match &s.test {
            NodeTest::Name(n) if n == "id" => r.id_attr = true,
            NodeTest::Name(n) if n == ts_field => r.timestamp = true,
            _ => r.other = true,
        },
        [s] if s.axis == Axis::Child && s.predicates.is_empty() => match &s.test {
            NodeTest::Name(n) if n == ts_field => r.timestamp = true,
            _ => r.other = true,
        },
        _ => r.other = true,
    }
    // Predicates inside the path's own steps reference data too.
    for s in &p.steps {
        for pred in &s.predicates {
            r = r.union(refs_of(pred, ts_field));
        }
    }
    r
}

/// The result of splitting a step's predicates. See
/// [`split_step_predicates`].
#[derive(Debug, Clone, Default)]
pub struct SplitPredicates {
    /// Conjuncts referencing only the `id` attribute (`P_id`).
    pub id: Vec<Expr>,
    /// Conjuncts referencing only the timestamp/freshness field
    /// (`P_consistency`).
    pub consistency: Vec<Expr>,
    /// Everything else (`P_rest`).
    pub rest: Vec<Expr>,
    /// False when some single conjunct mixes id references with other data
    /// references, so `P != P_id && P_rest` for any clean division; the
    /// query processor must then conservatively ask a subquery (§3.5).
    pub clean: bool,
}

/// Splits a step's predicate conjunction into `P_id`, `P_consistency` and
/// `P_rest`. `timestamp_field` names the freshness field ("timestamp" in
/// the paper).
pub fn split_step_predicates(step: &Step, timestamp_field: &str) -> SplitPredicates {
    let mut out = SplitPredicates {
        clean: true,
        ..SplitPredicates::default()
    };
    for pred in &step.predicates {
        for conjunct in flatten_conjuncts(pred) {
            let r = refs_of(conjunct, timestamp_field);
            match (r.id_attr, r.timestamp, r.other) {
                (true, false, false) => out.id.push(conjunct.clone()),
                (false, true, false) => out.consistency.push(conjunct.clone()),
                (false, _, _) => out.rest.push(conjunct.clone()),
                (true, ..) => {
                    // Mixed conjunct: unsplittable.
                    out.rest.push(conjunct.clone());
                    out.clean = false;
                }
            }
        }
    }
    out
}

/// Builds the relative path consisting of `path.steps[from..]` — the
/// "remaining query" shipped in a subquery once the first `from` steps have
/// been resolved.
pub fn suffix_path(path: &LocationPath, from: usize) -> LocationPath {
    LocationPath {
        absolute: false,
        steps: path.steps[from.min(path.steps.len())..].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn idable(tag: &str) -> bool {
        matches!(
            tag,
            "usRegion" | "state" | "county" | "city" | "neighborhood" | "block" | "parkingSpace"
        )
    }

    #[test]
    fn id_prefix_of_paper_query() {
        let q = parse(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
             /city[@id='Pittsburgh']\
             /neighborhood[@id='Oakland' or @id='Shadyside']\
             /block[@id='1']/parkingSpace[available='yes']",
        )
        .unwrap();
        let prefix = id_prefix(&q);
        assert_eq!(
            prefix,
            vec![
                ("usRegion".to_string(), "NE".to_string()),
                ("state".to_string(), "PA".to_string()),
                ("county".to_string(), "Allegheny".to_string()),
                ("city".to_string(), "Pittsburgh".to_string()),
            ]
        );
    }

    #[test]
    fn id_prefix_stops_at_descendant_and_wildcard() {
        let q = parse("/a[@id='1']//b[@id='2']").unwrap();
        assert_eq!(id_prefix(&q), vec![("a".to_string(), "1".to_string())]);
        let q2 = parse("/a[@id='1']/*[@id='2']/c[@id='3']").unwrap();
        assert_eq!(id_prefix(&q2), vec![("a".to_string(), "1".to_string())]);
    }

    #[test]
    fn id_prefix_sees_through_extra_predicates() {
        let q = parse("/a[@id='1'][x > 0]/b[@id='2' and price='0']/c").unwrap();
        assert_eq!(
            id_prefix(&q),
            vec![
                ("a".to_string(), "1".to_string()),
                ("b".to_string(), "2".to_string())
            ]
        );
    }

    #[test]
    fn id_prefix_empty_for_relative_or_non_path() {
        assert!(id_prefix(&parse("a[@id='1']").unwrap()).is_empty());
        assert!(id_prefix(&parse("count(/a[@id='1'])").unwrap()).is_empty());
    }

    #[test]
    fn nesting_depth_paper_examples() {
        // /a[@id=x]/b[@id=y]/c -> 0
        let q = parse("/a[@id='x']/b[@id='y']/c").unwrap();
        assert_eq!(nesting_depth(&q, &|_| true), 0);

        // /a[@id=x]//c -> 0
        let q = parse("/a[@id='x']//c").unwrap();
        assert_eq!(nesting_depth(&q, &|_| true), 0);

        // /a[./b/c]/b -> 1 if b idable else 0
        let q = parse("/a[./b/c]/b").unwrap();
        assert_eq!(nesting_depth(&q, &|t| t == "b"), 1);
        assert_eq!(nesting_depth(&q, &|_| false), 0);

        // /a[count(./b/c) = 5]/b -> 1 if b idable else 0
        let q = parse("/a[count(./b/c) = 5]/b").unwrap();
        assert_eq!(nesting_depth(&q, &|t| t == "b"), 1);
        assert_eq!(nesting_depth(&q, &|_| false), 0);

        // /a[count(./b[./c[@id='1']])] -> 2 if c idable, 1 if only b, else 0
        let q = parse("/a[count(./b[./c[@id='1']]) > 0]").unwrap();
        assert_eq!(nesting_depth(&q, &|t| t == "b" || t == "c"), 2);
        assert_eq!(nesting_depth(&q, &|t| t == "b"), 1);
        assert_eq!(nesting_depth(&q, &|_| false), 0);
    }

    #[test]
    fn nesting_depth_least_pricey_query() {
        let q = parse(
            "/usRegion[@id='NE']/state[@id='PA']/county[@id='Allegheny']\
             /city[@id='Pittsburgh']/neighborhood[@id='Oakland']/block[@id='1']\
             /parkingSpace[not(price > ../parkingSpace/price)]",
        )
        .unwrap();
        // `../parkingSpace/price` traverses the IDable parkingSpace tag.
        assert_eq!(nesting_depth(&q, &idable), 1);
    }

    #[test]
    fn split_plain_id_predicate() {
        let q = parse("block[@id='1']").unwrap();
        let Expr::Path(p) = &q else { panic!() };
        let s = split_step_predicates(&p.steps[0], "timestamp");
        assert!(s.clean);
        assert_eq!(s.id.len(), 1);
        assert!(s.rest.is_empty());
        assert!(s.consistency.is_empty());
    }

    #[test]
    fn split_mixed_conjunction() {
        let q = parse("parkingSpace[@id='1' and available='yes']").unwrap();
        let Expr::Path(p) = &q else { panic!() };
        let s = split_step_predicates(&p.steps[0], "timestamp");
        assert!(s.clean);
        assert_eq!(s.id.len(), 1);
        assert_eq!(s.rest.len(), 1);
    }

    #[test]
    fn split_or_of_ids_is_id_only() {
        let q = parse("neighborhood[@id='Oakland' or @id='Shadyside']").unwrap();
        let Expr::Path(p) = &q else { panic!() };
        let s = split_step_predicates(&p.steps[0], "timestamp");
        assert!(s.clean);
        assert_eq!(s.id.len(), 1);
        assert!(s.rest.is_empty());
    }

    #[test]
    fn split_consistency_predicate() {
        let q = parse("block[@id='1'][timestamp > now() - 30]").unwrap();
        let Expr::Path(p) = &q else { panic!() };
        let s = split_step_predicates(&p.steps[0], "timestamp");
        assert!(s.clean);
        assert_eq!(s.id.len(), 1);
        assert_eq!(s.consistency.len(), 1);
        assert!(s.rest.is_empty());
        // Attribute-style timestamps work too.
        let q2 = parse("block[@timestamp > now() - 30]").unwrap();
        let Expr::Path(p2) = &q2 else { panic!() };
        let s2 = split_step_predicates(&p2.steps[0], "timestamp");
        assert_eq!(s2.consistency.len(), 1);
    }

    #[test]
    fn split_unclean_mixed_conjunct() {
        let q = parse("b[@id='1' or price='0']").unwrap();
        let Expr::Path(p) = &q else { panic!() };
        let s = split_step_predicates(&p.steps[0], "timestamp");
        assert!(!s.clean);
        assert!(s.id.is_empty());
        assert_eq!(s.rest.len(), 1);
    }

    #[test]
    fn suffix_path_builds_remaining_query() {
        let q = parse("/a[@id='1']/b[@id='2']/c[x='y']").unwrap();
        let Expr::Path(p) = &q else { panic!() };
        let suffix = suffix_path(p, 2);
        assert_eq!(suffix.to_string(), "c[x = 'y']");
        assert!(!suffix.absolute);
        // Out-of-range clamps to empty.
        assert!(suffix_path(p, 9).steps.is_empty());
    }
}
