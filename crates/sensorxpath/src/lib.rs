//! # sensorxpath
//!
//! An XPath 1.0 engine over [`sensorxml`] documents, implementing the
//! **unordered fragment** of the language used by wide area sensor databases
//! (SIGMOD 2003, "Cache-and-Query for Wide Area Sensor Databases", §3.1):
//! the full expression language, axes, node tests, predicates and the core
//! function library, *minus* the order-dependent pieces (`position()`,
//! `last()`, positional number predicates, and the sibling axes), which are
//! meaningless when sibling order carries no information.
//!
//! Beyond plain evaluation this crate provides the query analysis the
//! IrisNet query processor is built on ([`analysis`]):
//!
//! * extraction of the *id-pinned prefix* of a query, from which the
//!   DNS-style name of the lowest-common-ancestor site is formed
//!   (self-starting distributed queries, §3.4);
//! * the *nesting depth* of a query (Definition 3.3);
//! * splitting a step's predicate conjunction into `P_id ∧ P_rest`, and
//!   separating consistency (freshness) predicates (§3.5, §4).
//!
//! The AST implements `Display` and round-trips through the parser, which
//! the distributed layer relies on to re-print subqueries it sends to other
//! sites.

pub mod analysis;
pub mod ast;
pub mod error;
pub mod eval;
pub mod functions;
pub mod lexer;
pub mod optimize;
pub mod parser;
pub mod value;

pub use ast::{Axis, BinOp, Expr, LocationPath, NodeTest, Step};
pub use error::{XPathError, XPathResult};
pub use eval::{evaluate, evaluate_at, EvalContext, Vars};
pub use optimize::{mark_index_hints, optimize, strip_index_hints};
pub use parser::parse;
pub use value::{Value, XNode};
