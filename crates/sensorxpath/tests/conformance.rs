//! Table-driven conformance suite for the unordered XPath 1.0 fragment.
//!
//! Each case evaluates an expression against a fixed reference document
//! and checks the result against XPath 1.0 semantics (node-set sizes,
//! string/number/boolean values).

use sensorxml::Document;
use sensorxpath::{Value, XNode};

fn doc() -> Document {
    sensorxml::parse(
        r#"<library id="main" open="yes">
             <shelf id="A" floor="1">
               <book id="1" lang="en"><title>Dune</title><pages>412</pages><price>9.99</price></book>
               <book id="2" lang="de"><title>Faust</title><pages>288</pages><price>0</price></book>
               <magazine id="m1"><title>ACM</title><pages>80</pages></magazine>
             </shelf>
             <shelf id="B" floor="2">
               <book id="1" lang="en"><title>Ubik</title><pages>224</pages><price>7.50</price></book>
               <empty-slot/>
             </shelf>
             <cafe>open<hours>9-17</hours></cafe>
           </library>"#,
    )
    .unwrap()
}

fn eval(q: &str) -> Value {
    let d = doc();
    let e = sensorxpath::parse(q).unwrap_or_else(|err| panic!("parse `{q}`: {err}"));
    sensorxpath::evaluate_at(&e, &d, XNode::Node(d.root().unwrap()))
        .unwrap_or_else(|err| panic!("eval `{q}`: {err}"))
}

fn count(q: &str) -> usize {
    match eval(q) {
        Value::Nodes(ns) => ns.len(),
        v => panic!("expected node-set for `{q}`, got {v:?}"),
    }
}

fn num(q: &str) -> f64 {
    match eval(q) {
        Value::Num(n) => n,
        v => panic!("expected number for `{q}`, got {v:?}"),
    }
}

fn boolean(q: &str) -> bool {
    match eval(q) {
        Value::Bool(b) => b,
        v => panic!("expected boolean for `{q}`, got {v:?}"),
    }
}

fn string(q: &str) -> String {
    let d = doc();
    eval(q).string(&d)
}

#[test]
fn node_set_sizes() {
    let cases: &[(&str, usize)] = &[
        ("/library", 1),
        ("/library/shelf", 2),
        ("/library/shelf/book", 3),
        ("//book", 3),
        ("//title", 4),
        ("//book/title", 3),
        ("/library//pages", 4),
        ("//shelf[@id='A']/book", 2),
        ("//shelf[@floor='2']/book", 1),
        ("//book[@lang='en']", 2),
        ("//book[price='0']", 1),
        ("//book[pages > 250]", 2),
        ("//book[pages > 250][@lang='en']", 1),
        ("//shelf/*", 5),
        ("//shelf/node()", 5),
        ("//book/@lang", 3),
        ("//@id", 7),
        ("//book/..", 2),
        ("//book/../../cafe", 1),
        ("//book/ancestor::library", 1),
        ("//book/ancestor-or-self::book", 3),
        ("/library/cafe/text()", 1),
        ("//book[title='Dune']", 1),
        ("//book[title='Dune' or title='Ubik']", 2),
        ("//book[title='Dune' and @lang='en']", 1),
        ("//book[not(@lang='en')]", 1),
        ("//shelf[book]", 2),
        ("//shelf[magazine]", 1),
        ("//shelf[count(book) = 2]", 1),
        ("//shelf[empty-slot]", 1),
        ("//book | //magazine", 4),
        ("//book | //book", 3),
        ("/wrong-root", 0),
        ("//missing", 0),
        ("//book[@lang='fr']", 0),
        ("descendant::book", 3),
        ("child::shelf/child::book", 3),
        ("self::library", 1),
        ("//*[@floor]", 2),
        ("//book[../@floor='1']", 2),
    ];
    for &(q, want) in cases {
        assert_eq!(count(q), want, "query `{q}`");
    }
}

#[test]
fn numeric_results() {
    let cases: &[(&str, f64)] = &[
        ("count(//book)", 3.0),
        ("count(//book[@lang='en'])", 2.0),
        ("sum(//book/pages)", 924.0),
        ("sum(//price)", 17.49),
        ("count(//book) + count(//magazine)", 4.0),
        ("count(//book) * 2 - 1", 5.0),
        ("floor(sum(//price))", 17.0),
        ("ceiling(sum(//price))", 18.0),
        ("round(sum(//price))", 17.0),
        ("string-length(//book[@id='1'][../@id='A']/title)", 4.0),
        ("number(//book[title='Dune']/pages)", 412.0),
        ("17 mod 5", 2.0),
        ("-3 + 10", 7.0),
        ("number('12.5')", 12.5),
    ];
    for &(q, want) in cases {
        let got = num(q);
        assert!((got - want).abs() < 1e-9, "query `{q}`: got {got}, want {want}");
    }
}

#[test]
fn boolean_results() {
    let cases: &[(&str, bool)] = &[
        ("boolean(//book)", true),
        ("boolean(//missing)", false),
        ("//book/pages > 400", true),
        ("//book/pages > 500", false),
        ("//book/pages = 288", true),
        ("//book/pages != 288", true), // existential: some page differs
        ("not(//missing)", true),
        ("'abc' = 'abc'", true),
        ("'abc' = 'abd'", false),
        ("2 < 10", true),
        ("'2' < '10'", true), // relational comparisons are numeric
        ("contains(//cafe/hours, '-')", true),
        ("starts-with(//book[@id='2']/title, 'Fau')", true),
        ("count(//book) = 3 and count(//magazine) = 1", true),
        ("//shelf[@id='A']/@floor = 1", true),
        ("//library", false), // not a boolean, via explicit boolean() only
    ];
    for &(q, want) in cases {
        if q == "//library" {
            // Special case: a node-set is truthy only via boolean().
            assert!(boolean("boolean(//library)"));
            continue;
        }
        assert_eq!(boolean(q), want, "query `{q}`");
    }
}

#[test]
fn string_results() {
    let cases: &[(&str, &str)] = &[
        ("string(//book[@id='2']/title)", "Faust"),
        ("//book[title='Dune']/@lang", "en"),
        ("concat(//shelf[@id='A']/@id, '-', //shelf[@id='B']/@floor)", "A-2"),
        ("substring(//book[title='Dune']/title, 2, 2)", "un"),
        ("substring-before(//cafe/hours, '-')", "9"),
        ("substring-after(//cafe/hours, '-')", "17"),
        ("translate('abc', 'abc', 'xyz')", "xyz"),
        ("normalize-space('  a   b ')", "a b"),
        ("name(//magazine)", "magazine"),
        ("local-name(//magazine/@id)", "id"),
        ("string(count(//book))", "3"),
        ("string(//missing)", ""),
        ("string(1 div 0)", "Infinity"),
        ("string(0 div 0)", "NaN"),
    ];
    for &(q, want) in cases {
        assert_eq!(string(q), want, "query `{q}`");
    }
}

#[test]
fn string_value_of_elements_concatenates_descendant_text() {
    // The cafe element has mixed content: "open" + hours text.
    assert_eq!(string("string(/library/cafe)"), "open9-17");
}

#[test]
fn filter_expressions_and_unions() {
    assert_eq!(count("(//book | //magazine)[@id='1']"), 2); // two books id=1... plus none
    assert_eq!(count("(//shelf)[@floor='1']/book"), 2);
    assert_eq!(count("(//book)[price]/title"), 3);
}

#[test]
fn arithmetic_coercions() {
    // Node-set → number conversions in arithmetic.
    assert_eq!(num("//book[title='Dune']/pages + 8"), 420.0);
    assert!(num("//missing + 1").is_nan());
    assert_eq!(num("true() + 1"), 2.0);
    assert_eq!(num("false() + 1"), 1.0);
}

#[test]
fn errors_are_reported_not_panicked() {
    let d = doc();
    for q in ["position() = 1", "//book[1]", "following-sibling::book"] {
        assert!(sensorxpath::parse(q).is_err(), "`{q}` must be rejected");
    }
    let e = sensorxpath::parse("$nope").unwrap();
    assert!(sensorxpath::evaluate_at(&e, &d, XNode::Node(d.root().unwrap())).is_err());
}
