//! # simnet
//!
//! Cluster substrates for the wide area sensor database. Both drive the
//! same [`irisnet_core::OrganizingAgent`] state machine:
//!
//! * [`live`] — a **live cluster**: one thread per site, crossbeam channels
//!   as the network, a shared authoritative DNS, wall-clock time. Used by
//!   the examples and the micro-benchmarks (real engine latencies,
//!   Fig. 11).
//! * [`des`] — a **discrete-event simulator**: virtual clock, per-site FIFO
//!   CPU queues with a calibratable [`des::CostModel`], deterministic
//!   message ordering. Used by the throughput/load-balancing/caching
//!   experiments (Figs. 7–10), where the quantity of interest is queueing
//!   and placement, not raw engine speed.
//! * [`shard`] — the **sharded event-loop runtime**: many sites multiplex
//!   onto N shard threads (N ∝ cores, not sites) with shard-shared read
//!   worker pools; cross-shard messages pass through the length-framed
//!   binary [`wire`] codec exactly as a TCP transport would. This is the
//!   scale substrate (10,000-site hierarchies on one host).
//! * [`metrics`] — throughput windows and latency percentiles shared by
//!   all substrates.

pub mod des;
pub(crate) mod fabric;
pub mod faults;
pub mod live;
pub mod metrics;
pub mod shard;
pub mod trace;
pub mod wire;

pub use des::{ClientLoad, CostModel, DesCluster, ReplyRecord, UnclaimedReply};
pub use faults::{CrashWindow, FaultCounts, FaultPlan, FaultState};
pub use live::{cache_stats_total, LiveClient, LiveCluster, LiveReply};
pub use metrics::{latency_percentiles, throughput_series, Percentiles};
pub use shard::{ShardClient, ShardConfig, ShardedCluster};
pub use trace::{MsgClass, Trace};
pub use wire::{decode_frame, encode_frame, split_frame, WireError, WIRE_VERSION};
