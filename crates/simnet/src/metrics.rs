//! Shared measurement helpers.
//!
//! Percentile math lives in [`irisobs`] now (the old nearest-rank `round()`
//! estimator here was biased — p99 collapsed onto the max below ~50
//! samples); this module re-exports it so existing `simnet::Percentiles`
//! users are unaffected, and keeps the throughput binning.

pub use irisobs::{latency_percentiles, quantile_sorted, Percentiles};

/// Buckets completion timestamps into `window`-second bins, returning
/// `(window start, completions per second)` pairs covering `[0, horizon)`.
pub fn throughput_series(completions: &[f64], window: f64, horizon: f64) -> Vec<(f64, f64)> {
    assert!(window > 0.0, "window must be positive");
    let bins = (horizon / window).ceil() as usize;
    let mut counts = vec![0u64; bins.max(1)];
    for &t in completions {
        if t >= 0.0 && t < horizon {
            counts[(t / window) as usize] += 1;
        }
    }
    counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as f64 * window, c as f64 / window))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_uniform_ramp() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = latency_percentiles(&samples);
        assert_eq!(p.count, 100);
        // Exact interpolated values (R-7), not the old rounded ranks.
        assert!((p.p50 - 50.5).abs() < 1e-12);
        assert!((p.p90 - 90.1).abs() < 1e-12);
        assert!((p.p99 - 99.01).abs() < 1e-12);
        assert!((p.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentiles_empty() {
        let p = latency_percentiles(&[]);
        assert_eq!(p.count, 0);
        assert_eq!(p.mean, 0.0);
    }

    #[test]
    fn throughput_bins() {
        let completions = vec![0.1, 0.2, 1.5, 2.9];
        let series = throughput_series(&completions, 1.0, 3.0);
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (0.0, 2.0));
        assert_eq!(series[1], (1.0, 1.0));
        assert_eq!(series[2], (2.0, 1.0));
    }

    #[test]
    fn throughput_ignores_out_of_horizon() {
        let series = throughput_series(&[5.0, -1.0, 0.5], 1.0, 2.0);
        assert_eq!(series[0].1, 1.0);
        assert_eq!(series[1].1, 0.0);
    }
}
